//! Attribute-range-on-the-ring pub/sub baseline
//! (Triantafillou & Aekaterinidis, DEBS'04 style).
//!
//! "Content space for each attribute is mapped onto the ring.
//! Subscriptions are stored onto the nodes whose identifiers lie in the
//! corresponding range" (§2). A subscription picks its most selective
//! attribute and is *replicated* onto every node whose arc intersects the
//! key range of that attribute interval — the paper's criticism is
//! precisely that this "will involve a large number of nodes and
//! messages". An event probes one node per attribute (the successor of
//! the event value's key on that attribute's ring) and delivers matches
//! through the shared embedded-tree splitter.

use crate::common::{split_targets, to_targets, BaselineNode, BaselineWorld};
use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_chord::{in_open_closed, ChordState};
use hypersub_core::model::{Event, SubId, SubTarget, Subscription};
use hypersub_core::msg::{EVENT_BYTES, HEADER_BYTES, SUBID_BYTES};
use hypersub_lph::{rotation_offset, ContentSpace};
use hypersub_simnet::{Node, NodeRuntime, Payload};
use std::collections::HashMap;

pub use crate::common::TOKEN_PUBLISH_BASE;

/// Attribute-ring messages.
#[derive(Debug, Clone)]
pub enum AttrMsg {
    /// Subscription replication along its attribute arc.
    Register {
        /// Next key on the walk (routing target).
        cursor: u64,
        /// Last key of the subscription's arc.
        end: u64,
        /// Attribute index the subscription is indexed under.
        attr: u8,
        /// Subscriber.
        subid: SubId,
        /// Full subscription rect.
        sub: Subscription,
    },
    /// Event probe on one attribute ring.
    Publish {
        /// The event value's key on the attribute ring.
        key: u64,
        /// The attribute being probed.
        attr: u8,
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
    },
    /// Matched-result fan-out.
    Delivery {
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
        /// SubID list.
        targets: Vec<SubTarget>,
    },
}

impl Payload for AttrMsg {
    fn wire_size(&self) -> usize {
        match self {
            AttrMsg::Register { sub, .. } => HEADER_BYTES + 17 + SUBID_BYTES + 16 * sub.rect.dims(),
            AttrMsg::Publish { .. } => HEADER_BYTES + EVENT_BYTES + SUBID_BYTES,
            AttrMsg::Delivery { targets, .. } => {
                HEADER_BYTES + EVENT_BYTES + SUBID_BYTES * targets.len()
            }
        }
    }

    fn flow(&self) -> Option<u64> {
        match self {
            AttrMsg::Publish { event, .. } | AttrMsg::Delivery { event, .. } => Some(event.id),
            AttrMsg::Register { .. } => None,
        }
    }
}

/// A node of the attribute-ring baseline.
#[derive(Debug, Clone)]
pub struct AttrRingNode {
    /// Chord routing state.
    pub chord: ChordState,
    /// The scheme's content space (shared by all nodes).
    pub space: ContentSpace,
    /// Per-attribute ring offsets.
    pub offsets: Vec<u64>,
    /// Stored replicas: attribute → subid → subscription.
    pub store: HashMap<u8, HashMap<SubId, Subscription>>,
    /// Local subscriptions by internal id.
    pub local: HashMap<u32, Subscription>,
    next_iid: u32,
}

impl AttrRingNode {
    /// Creates a node for the given scheme space.
    pub fn new(chord: ChordState, scheme_name: &str, space: ContentSpace) -> Self {
        let offsets = (0..space.dims())
            .map(|j| rotation_offset(&format!("{scheme_name}/attr{j}")))
            .collect();
        Self {
            chord,
            space,
            offsets,
            store: HashMap::new(),
            local: HashMap::new(),
            next_iid: 1,
        }
    }

    /// Maps an attribute value onto its ring.
    pub fn value_key(&self, attr: usize, v: f64) -> u64 {
        let d = self.space.domain(attr);
        let frac = ((v - d.lo) / d.width()).clamp(0.0, 1.0);
        // Scale into the full 64-bit space, then rotate onto this
        // attribute's ring.
        let scaled = (frac * (u64::MAX as f64)) as u64;
        scaled.wrapping_add(self.offsets[attr])
    }

    /// The attribute a subscription is indexed under: the one with the
    /// narrowest relative range (most selective).
    pub fn choose_attr(&self, sub: &Subscription) -> usize {
        let mut best = 0;
        let mut best_frac = f64::INFINITY;
        for j in 0..self.space.dims() {
            let d = self.space.domain(j);
            let frac = (sub.rect.hi[j] - sub.rect.lo[j]) / d.width();
            if frac < best_frac {
                best = j;
                best_frac = frac;
            }
        }
        best
    }

    /// Installs a subscription from this node.
    pub fn subscribe<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        let iid = self.next_iid;
        self.next_iid += 1;
        self.local.insert(iid, sub.clone());
        let subid = SubId {
            nid: self.chord.id,
            iid,
        };
        ctx.world().oracle.add(0, subid, sub.clone());
        let attr = self.choose_attr(&sub);
        let start = self.value_key(attr, sub.rect.lo[attr]);
        let end = self.value_key(attr, sub.rect.hi[attr]);
        self.route_register(ctx, start, end, attr as u8, subid, sub);
        subid
    }

    /// Walks the subscription's key arc, storing a replica on every
    /// responsible node (the expensive installation §2 criticizes).
    fn route_register<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        cursor: u64,
        end: u64,
        attr: u8,
        subid: SubId,
        sub: Subscription,
    ) {
        if self.chord.responsible_for(cursor) {
            self.store
                .entry(attr)
                .or_default()
                .insert(subid, sub.clone());
            // Continue the walk if the arc extends beyond my segment.
            let covered_to = self.chord.id;
            let arc_done = in_open_closed(cursor.wrapping_sub(1), end, covered_to);
            if !arc_done {
                if let Some(succ) = self.chord.successor() {
                    ctx.send(
                        succ.idx,
                        AttrMsg::Register {
                            cursor: covered_to.wrapping_add(1),
                            end,
                            attr,
                            subid,
                            sub,
                        },
                    );
                }
            }
        } else {
            match next_hop(&self.chord, cursor) {
                NextHop::Forward(p) => ctx.send(
                    p.idx,
                    AttrMsg::Register {
                        cursor,
                        end,
                        attr,
                        subid,
                        sub,
                    },
                ),
                NextHop::Local => {
                    self.store.entry(attr).or_default().insert(subid, sub);
                }
            }
        }
    }

    /// Publishes an event: one probe per attribute ring.
    pub fn publish<R: NodeRuntime<AttrMsg, BaselineWorld>>(&mut self, ctx: &mut R, event: Event) {
        let (me, now) = (ctx.me(), ctx.now());
        let expected = ctx.world().oracle.expected_matches(0, &event.point).len();
        ctx.world()
            .metrics
            .record_publish(event.id, now, me, expected);
        for attr in 0..self.space.dims() {
            let key = self.value_key(attr, event.point.0[attr]);
            self.route_publish(ctx, key, attr as u8, event.clone(), 0);
        }
    }

    fn route_publish<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        key: u64,
        attr: u8,
        event: Event,
        hops: u32,
    ) {
        if self.chord.responsible_for(key) {
            self.match_and_deliver(ctx, attr, event, hops);
        } else {
            match next_hop(&self.chord, key) {
                NextHop::Forward(p) => ctx.send(
                    p.idx,
                    AttrMsg::Publish {
                        key,
                        attr,
                        event,
                        hops: hops + 1,
                    },
                ),
                NextHop::Local => self.match_and_deliver(ctx, attr, event, hops),
            }
        }
    }

    fn match_and_deliver<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        attr: u8,
        event: Event,
        hops: u32,
    ) {
        let Some(shard) = self.store.get(&attr) else {
            return;
        };
        let mut matched: Vec<SubId> = shard
            .iter()
            .filter(|(_, s)| s.matches(&event))
            .map(|(&id, _)| id)
            .collect();
        matched.sort_unstable();
        self.deliver(ctx, event, hops, to_targets(matched));
    }

    fn deliver<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        event: Event,
        hops: u32,
        targets: Vec<SubTarget>,
    ) {
        let (local, by_hop) = split_targets(&self.chord, targets);
        for t in local {
            if let Some(iid) = t.iid {
                if self.local.contains_key(&iid) {
                    let now = ctx.now();
                    ctx.world().metrics.record_delivery(
                        event.id,
                        SubId { nid: t.nid, iid },
                        now,
                        hops,
                    );
                }
            }
        }
        for (idx, targets) in by_hop {
            ctx.send(
                idx,
                AttrMsg::Delivery {
                    event: event.clone(),
                    hops: hops + 1,
                    targets,
                },
            );
        }
    }

    /// Stored replica count (load metric; replicas of one subscription on
    /// many nodes each count once, which is the point of the comparison).
    pub fn load(&self) -> u64 {
        self.store.values().map(|m| m.len() as u64).sum()
    }
}

impl Node<AttrMsg, BaselineWorld> for AttrRingNode {
    fn on_message<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        _from: usize,
        msg: AttrMsg,
    ) {
        match msg {
            AttrMsg::Register {
                cursor,
                end,
                attr,
                subid,
                sub,
            } => self.route_register(ctx, cursor, end, attr, subid, sub),
            AttrMsg::Publish {
                key,
                attr,
                event,
                hops,
            } => self.route_publish(ctx, key, attr, event, hops),
            AttrMsg::Delivery {
                event,
                hops,
                targets,
            } => self.deliver(ctx, event, hops, targets),
        }
    }

    fn on_timer<R: NodeRuntime<AttrMsg, BaselineWorld>>(&mut self, ctx: &mut R, token: u64) {
        if token >= TOKEN_PUBLISH_BASE {
            let idx = (token - TOKEN_PUBLISH_BASE) as usize;
            let ev = ctx.world().script[idx]
                .take()
                .expect("scripted event fired twice");
            self.publish(ctx, ev);
        }
    }
}

impl BaselineNode for AttrRingNode {
    type Msg = AttrMsg;

    fn subscribe<R: NodeRuntime<AttrMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        AttrRingNode::subscribe(self, ctx, sub)
    }

    fn load(&self) -> u64 {
        AttrRingNode::load(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_chord::builder::{build_ring, RingConfig};
    use hypersub_lph::{Point, Rect};
    use hypersub_simnet::{Sim, SimTime, UniformTopology};
    use std::sync::Arc;

    fn make_sim(n: usize) -> Sim<AttrRingNode, AttrMsg, BaselineWorld> {
        let topo = Arc::new(UniformTopology::new(n, SimTime::from_millis(10)));
        let states = build_ring(&RingConfig::default(), topo.as_ref(), 5);
        let space = ContentSpace::uniform(2, 0.0, 100.0);
        let nodes: Vec<AttrRingNode> = states
            .into_iter()
            .map(|st| AttrRingNode::new(st, "bench", space.clone()))
            .collect();
        Sim::new(topo, nodes, BaselineWorld::default(), 1)
    }

    #[test]
    fn chooses_most_selective_attribute() {
        let mut sim = make_sim(4);
        let node = sim.node_mut(0);
        let sub = Subscription::new(Rect::new(vec![10.0, 0.0], vec![12.0, 100.0]));
        assert_eq!(node.choose_attr(&sub), 0);
        let sub = Subscription::new(Rect::new(vec![0.0, 50.0], vec![100.0, 51.0]));
        assert_eq!(node.choose_attr(&sub), 1);
    }

    #[test]
    fn end_to_end_matches_bruteforce() {
        let mut sim = make_sim(12);
        for i in 0..12 {
            let lo = i as f64 * 8.0;
            let sub = Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0]));
            sim.with_node_ctx(i, |n, ctx| n.subscribe(ctx, sub));
        }
        sim.run(10_000_000);
        for (id, point) in [
            (1u64, Point(vec![50.0, 50.0])),
            (2, Point(vec![0.0, 0.0])),
            (3, Point(vec![95.0, 20.0])),
        ] {
            let expected = sim.world().oracle.expected_matches(0, &point).len();
            sim.with_node_ctx((id as usize * 5) % 12, |n, ctx| {
                n.publish(
                    ctx,
                    Event {
                        id,
                        point: point.clone(),
                    },
                )
            });
            sim.run(10_000_000);
            let stats = sim.world().metrics.event_stats(12, sim.net());
            let s = stats.iter().find(|s| s.event == id).unwrap();
            assert_eq!(s.delivered, expected, "event {id}");
            assert_eq!(s.duplicates, 0, "event {id}");
        }
    }

    #[test]
    fn wide_ranges_replicate_on_many_nodes() {
        let mut sim = make_sim(16);
        // Wide on both attributes; the narrower (attr 0, 80%) is chosen
        // and replicated across ~80% of the ring.
        let sub = Subscription::new(Rect::new(vec![10.0, 2.0], vec![90.0, 98.0]));
        sim.with_node_ctx(0, |n, ctx| n.subscribe(ctx, sub));
        sim.run(10_000_000);
        let holders = (0..16).filter(|&i| sim.node(i).load() > 0).count();
        assert!(
            holders >= 8,
            "expected replication across many nodes, got {holders}"
        );
    }
}
