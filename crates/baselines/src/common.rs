//! Shared plumbing for the baseline systems: the delivery-splitting helper
//! and the common world type.

use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_chord::ChordState;
use hypersub_core::metrics::Metrics;
use hypersub_core::model::{SubId, SubTarget};
use hypersub_core::world::Oracle;
use std::collections::BTreeMap;

/// Shared world for baseline simulations.
#[derive(Debug, Default)]
pub struct BaselineWorld {
    /// Delivery metrics (same type as HyperSub's, for comparability).
    pub metrics: Metrics,
    /// Ground truth.
    pub oracle: Oracle,
    /// Scripted events (scheme is implicit — baselines run one scheme).
    pub script: Vec<Option<hypersub_core::model::Event>>,
}

/// Splits a SubID list by next hop: targets this node is responsible for
/// are returned as `local`, the rest grouped per neighbor, deterministic
/// order. The same embedded-tree aggregation HyperSub's Algorithm 5 uses.
pub fn split_targets(
    chord: &ChordState,
    targets: Vec<SubTarget>,
) -> (Vec<SubTarget>, BTreeMap<usize, Vec<SubTarget>>) {
    let mut local = Vec::new();
    let mut by_hop: BTreeMap<usize, Vec<SubTarget>> = BTreeMap::new();
    for t in targets {
        if chord.responsible_for(t.nid) {
            local.push(t);
        } else {
            match next_hop(chord, t.nid) {
                NextHop::Forward(p) => by_hop.entry(p.idx).or_default().push(t),
                NextHop::Local => local.push(t),
            }
        }
    }
    (local, by_hop)
}

/// Converts a matched [`SubId`] list to targets.
pub fn to_targets(matched: Vec<SubId>) -> Vec<SubTarget> {
    matched.into_iter().map(SubTarget::sub).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_chord::builder::{build_ring, RingConfig};
    use hypersub_simnet::{SimTime, UniformTopology};

    #[test]
    fn split_routes_each_target_somewhere() {
        let topo = UniformTopology::new(16, SimTime::from_millis(5));
        let states = build_ring(&RingConfig::default(), &topo, 3);
        let targets: Vec<SubTarget> = states
            .iter()
            .map(|s| SubTarget::sub(SubId { nid: s.id, iid: 1 }))
            .collect();
        let (local, by_hop) = split_targets(&states[0], targets.clone());
        let total: usize = local.len() + by_hop.values().map(|v| v.len()).sum::<usize>();
        assert_eq!(total, targets.len());
        // Node 0 is responsible exactly for its own id among these.
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].nid, states[0].id);
    }
}
