//! Shared plumbing for the baseline systems: the delivery-splitting helper,
//! the common world type, and the [`BaselineNet`] driver that gives every
//! baseline the same builder / typed-error / [`Report`] surface as
//! HyperSub's `Network`.

use hypersub_chord::builder::{build_ring, RingConfig};
use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_chord::ChordState;
use hypersub_core::digest::run_digest;
use hypersub_core::error::{HyperSubError, Result};
use hypersub_core::metrics::{DeliveryRecord, EventStats, Metrics};
use hypersub_core::model::{Event, SubId, SubTarget, Subscription};
use hypersub_core::report::{CounterSummary, EventSummary, HistSummary, NetSummary, Report};
use hypersub_core::world::Oracle;
use hypersub_lph::Point;
use hypersub_simnet::{
    KingLikeTopology, NetStats, Node, NodeRuntime, Payload, Sim, SimTime, Topology, UniformTopology,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Timer token base for scripted publishes — shared by every baseline
/// node type, so one driver can script any of them.
pub const TOKEN_PUBLISH_BASE: u64 = 1 << 32;

/// Shared world for baseline simulations.
#[derive(Debug, Default)]
pub struct BaselineWorld {
    /// Delivery metrics (same type as HyperSub's, for comparability).
    pub metrics: Metrics,
    /// Ground truth.
    pub oracle: Oracle,
    /// Scripted events (scheme is implicit — baselines run one scheme).
    pub script: Vec<Option<hypersub_core::model::Event>>,
}

/// The driver-facing contract every baseline system implements on top of
/// [`Node`]: install a subscription from this node, and report how many
/// entries this node stores (the §5 load metric). [`BaselineNet`] is
/// generic over this trait, which is what lets the shoot-out harness run
/// four rival systems through one code path.
pub trait BaselineNode: Node<Self::Msg, BaselineWorld> + 'static {
    /// The system's message type.
    type Msg: Payload + 'static;

    /// Installs a subscription originating at this node and returns its
    /// id. Implementations must register the subscription with the
    /// world's oracle.
    fn subscribe<R: NodeRuntime<Self::Msg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId;

    /// Entries stored on this node (subscriptions, replicas, or subgroup
    /// members — whatever the system's storage unit is).
    fn load(&self) -> u64;
}

/// Builder for a [`BaselineNet`]: the same knobs as
/// `Network::builder()` (size, seed, topology, ring) with the same typed
/// [`HyperSubError`] validation, and — deliberately — the same seed
/// derivations, so a baseline run and a HyperSub run with equal seeds get
/// bit-identical topologies and rings.
#[derive(Debug, Clone)]
pub struct BaselineNetBuilder {
    nodes: usize,
    seed: u64,
    ring: RingConfig,
    topology: BaselineTopology,
}

#[derive(Debug, Clone, Copy)]
enum BaselineTopology {
    Uniform(SimTime),
    KingLike(SimTime),
}

impl BaselineNetBuilder {
    /// Starts building an `nodes`-node baseline network. Defaults match
    /// `Network::builder()`: uniform 10 ms links, default ring, seed 0.
    /// The node type is fixed by the closure given to
    /// [`Self::build_with`].
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            seed: 0,
            ring: RingConfig::default(),
            topology: BaselineTopology::Uniform(SimTime::from_millis(10)),
        }
    }

    /// Sets the master seed (topology, ring ids, simulator RNG).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uniform one-way latency on every link.
    pub fn latency(mut self, one_way: SimTime) -> Self {
        self.topology = BaselineTopology::Uniform(one_way);
        self
    }

    /// King-dataset-like latency with the given mean RTT.
    pub fn king_like(mut self, mean_rtt: SimTime) -> Self {
        self.topology = BaselineTopology::KingLike(mean_rtt);
        self
    }

    /// Overrides the ring configuration.
    pub fn ring(mut self, ring: RingConfig) -> Self {
        self.ring = ring;
        self
    }

    /// Builds the network, constructing one node per ring position with
    /// `make` (which receives the node's stabilized Chord state).
    ///
    /// # Errors
    /// [`HyperSubError::InvalidConfig`] when the network would be empty.
    pub fn build_with<N, F>(self, make: F) -> Result<BaselineNet<N>>
    where
        N: BaselineNode,
        F: FnMut(ChordState) -> N,
    {
        let mut make = make;
        if self.nodes == 0 {
            return Err(HyperSubError::InvalidConfig(
                "network needs at least one node",
            ));
        }
        // Identical derivations to `Network::build`: seed ^ 0x7090 for the
        // topology, `seed` for the ring, seed ^ 0x51ed for the simulator.
        let topo: Arc<dyn Topology> = match self.topology {
            BaselineTopology::Uniform(l) => Arc::new(UniformTopology::new(self.nodes, l)),
            BaselineTopology::KingLike(rtt) => Arc::new(KingLikeTopology::generate(
                self.nodes,
                rtt,
                self.seed ^ 0x7090,
            )),
        };
        let states = build_ring(&self.ring, topo.as_ref(), self.seed);
        let nodes: Vec<N> = states.into_iter().map(&mut make).collect();
        let sim = Sim::new(topo, nodes, BaselineWorld::default(), self.seed ^ 0x51ed);
        Ok(BaselineNet {
            sim,
            next_event_id: 1,
        })
    }
}

/// A running baseline network: the counterpart of HyperSub's `Network`
/// for [`BaselineNode`] systems. Gives the baselines the builder API,
/// typed errors, and full [`Report`] emission they predated.
pub struct BaselineNet<N: BaselineNode> {
    sim: Sim<N, N::Msg, BaselineWorld>,
    next_event_id: u64,
}

impl<N: BaselineNode> BaselineNet<N> {
    /// Starts building an `nodes`-node baseline network; see
    /// [`BaselineNetBuilder::new`].
    pub fn builder(nodes: usize) -> BaselineNetBuilder {
        BaselineNetBuilder::new(nodes)
    }

    fn check_node(&self, node: usize) -> Result<()> {
        let nodes = self.sim.len();
        if node >= nodes {
            return Err(HyperSubError::NodeOutOfRange { node, nodes });
        }
        Ok(())
    }

    /// Installs a subscription from `node`. Run the network afterwards to
    /// let registration traffic settle.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn subscribe(&mut self, node: usize, sub: Subscription) -> Result<SubId> {
        self.check_node(node)?;
        Ok(self.sim.with_node_ctx(node, |n, ctx| n.subscribe(ctx, sub)))
    }

    /// Schedules an event publication at absolute simulated time `at`,
    /// returning the allocated event id.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn schedule_publish(&mut self, at: SimTime, node: usize, point: Point) -> Result<u64> {
        self.check_node(node)?;
        let id = self.next_event_id;
        self.next_event_id += 1;
        let idx = self.sim.world().script.len();
        self.sim.world_mut().script.push(Some(Event { id, point }));
        self.sim
            .schedule_timer(at, node, TOKEN_PUBLISH_BASE + idx as u64);
        Ok(id)
    }

    /// Runs until no messages or timers remain.
    pub fn run_to_quiescence(&mut self) {
        self.sim.run(u64::MAX / 2);
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.sim.time()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// True for an empty network (never constructible via the builder).
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Simulator events processed.
    pub fn steps(&self) -> u64 {
        self.sim.steps()
    }

    /// Network counters.
    pub fn net(&self) -> &NetStats {
        self.sim.net()
    }

    /// Node `i`'s protocol state.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn node(&self, i: usize) -> Result<&N> {
        self.check_node(i)?;
        Ok(self.sim.node(i))
    }

    /// The shared world (oracle, metrics, script).
    pub fn world(&self) -> &BaselineWorld {
        self.sim.world()
    }

    /// Per-node stored-entry loads.
    pub fn node_loads(&self) -> Vec<u64> {
        self.sim.nodes().iter().map(|n| n.load()).collect()
    }

    /// Raw delivery records, in delivery order.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        self.sim.world().metrics.deliveries()
    }

    /// Per-event aggregates (total subscription count from the oracle).
    pub fn event_stats(&self) -> Vec<EventStats> {
        let w = self.sim.world();
        w.metrics.event_stats(w.oracle.len(), self.sim.net())
    }

    /// The run digest: delivery trace plus network counters — the same
    /// FNV-1a fold `Network::run_digest` uses, so baseline runs are
    /// golden-pinnable with the same machinery.
    pub fn run_digest(&self) -> u64 {
        run_digest(self.deliveries(), self.sim.net())
    }

    /// Ground-truth match set for `point`.
    pub fn expected_matches(&self, point: &Point) -> Vec<SubId> {
        self.sim.world().oracle.expected_matches(0, point)
    }

    /// Snapshots this run into a full [`Report`] — the same document
    /// shape `Network::report()` emits, so `report diff` can compare a
    /// baseline run against a HyperSub run. Counters carry the shared
    /// `ProtoMetrics` registry plus one baseline-specific namespace,
    /// `load.stored_entries` (total and hottest-node stored entries).
    pub fn report(&self) -> Report {
        let stats = self.event_stats();
        let events = EventSummary::from_stats(&stats);
        let net = NetSummary::from_net(self.sim.net());
        let proto = &self.sim.world().metrics.proto;
        let mut counters: Vec<(String, CounterSummary)> = proto
            .counters()
            .iter()
            .map(|&(name, c)| {
                (
                    name.to_string(),
                    CounterSummary {
                        total: c.total(),
                        max_node: c.max(),
                    },
                )
            })
            .collect();
        let loads = self.node_loads();
        counters.push((
            "load.stored_entries".to_string(),
            CounterSummary {
                total: loads.iter().sum(),
                max_node: loads.iter().copied().max().unwrap_or(0),
            },
        ));
        let histograms = proto
            .histograms()
            .iter()
            .map(|&(name, h)| {
                (
                    name.to_string(),
                    HistSummary {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        buckets: h.buckets().to_vec(),
                    },
                )
            })
            .collect();
        Report {
            nodes: self.sim.len() as u64,
            time_us: self.sim.time().as_micros(),
            steps: self.sim.steps(),
            digest: self.run_digest(),
            events,
            net,
            counters,
            histograms,
            trace: None,
        }
    }
}

/// Splits a SubID list by next hop: targets this node is responsible for
/// are returned as `local`, the rest grouped per neighbor, deterministic
/// order. The same embedded-tree aggregation HyperSub's Algorithm 5 uses.
pub fn split_targets(
    chord: &ChordState,
    targets: Vec<SubTarget>,
) -> (Vec<SubTarget>, BTreeMap<usize, Vec<SubTarget>>) {
    let mut local = Vec::new();
    let mut by_hop: BTreeMap<usize, Vec<SubTarget>> = BTreeMap::new();
    for t in targets {
        if chord.responsible_for(t.nid) {
            local.push(t);
        } else {
            match next_hop(chord, t.nid) {
                NextHop::Forward(p) => by_hop.entry(p.idx).or_default().push(t),
                NextHop::Local => local.push(t),
            }
        }
    }
    (local, by_hop)
}

/// Converts a matched [`SubId`] list to targets.
pub fn to_targets(matched: Vec<SubId>) -> Vec<SubTarget> {
    matched.into_iter().map(SubTarget::sub).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rendezvous::RendezvousNode;
    use hypersub_lph::Rect;

    #[test]
    fn split_routes_each_target_somewhere() {
        let topo = UniformTopology::new(16, SimTime::from_millis(5));
        let states = build_ring(&RingConfig::default(), &topo, 3);
        let targets: Vec<SubTarget> = states
            .iter()
            .map(|s| SubTarget::sub(SubId { nid: s.id, iid: 1 }))
            .collect();
        let (local, by_hop) = split_targets(&states[0], targets.clone());
        let total: usize = local.len() + by_hop.values().map(|v| v.len()).sum::<usize>();
        assert_eq!(total, targets.len());
        // Node 0 is responsible exactly for its own id among these.
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].nid, states[0].id);
    }

    #[test]
    fn builder_rejects_empty_network() {
        let err = BaselineNetBuilder::new(0)
            .build_with(|st| RendezvousNode::new(st, "bench"))
            .err()
            .expect("empty network must be rejected");
        assert!(matches!(err, HyperSubError::InvalidConfig(_)));
    }

    #[test]
    fn driver_end_to_end_with_report() {
        let mut net = BaselineNetBuilder::new(12)
            .seed(5)
            .build_with(|st| RendezvousNode::new(st, "bench"))
            .unwrap();
        for i in 0..12 {
            let lo = i as f64 * 8.0;
            let sub = Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0]));
            net.subscribe(i, sub).unwrap();
        }
        assert!(net
            .subscribe(99, Subscription::new(Rect::new(vec![0.0], vec![1.0])))
            .is_err());
        net.run_to_quiescence();
        let point = Point(vec![50.0, 50.0]);
        let expected = net.expected_matches(&point).len();
        assert!(expected >= 1);
        let at = net.time() + SimTime::from_secs(1);
        let id = net.schedule_publish(at, 3, point).unwrap();
        assert_eq!(id, 1);
        net.run_to_quiescence();
        let report = net.report();
        assert_eq!(report.nodes, 12);
        assert_eq!(report.events.published, 1);
        assert_eq!(report.events.delivered, expected as u64);
        assert_eq!(report.events.duplicates, 0);
        assert_eq!(report.digest, net.run_digest());
        assert_eq!(
            report.counter_total("load.stored_entries"),
            net.node_loads().iter().sum::<u64>()
        );
        // The report round-trips through its JSON form.
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }
}
