//! Flood/gossip pub/sub strawman (SmartPubSub-style, after arXiv
//! 2207.06369).
//!
//! Subscriptions never leave the subscriber: installation costs zero
//! messages and zero remote storage. Every published event is instead
//! disseminated to *all* brokers over the Chord broadcast tree (El-Ansary
//! et al.: each node forwards to the fingers inside its assigned arc,
//! sub-dividing the arc so every node is reached exactly once), and each
//! broker matches the event against its own subscriptions locally. This
//! is the unstructured extreme of the design space — O(n) bandwidth per
//! event, perfectly flat storage — and the strawman every structured
//! design in the shoot-out must beat on bandwidth while matching on
//! delivery.

use crate::common::{BaselineNode, BaselineWorld};
use hypersub_chord::{clockwise_distance, ChordState, Peer};
use hypersub_core::model::{Event, SubId, Subscription};
use hypersub_core::msg::{EVENT_BYTES, HEADER_BYTES};
use hypersub_simnet::{Node, NodeRuntime, Payload};
use std::collections::HashMap;

pub use crate::common::TOKEN_PUBLISH_BASE;

/// Gossip-system messages.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// Broadcast-tree dissemination: the receiver owns the ring arc
    /// `(receiver, limit]` and must cover it.
    Flood {
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
        /// Last ring id of the receiver's arc.
        limit: u64,
    },
}

impl Payload for GossipMsg {
    fn wire_size(&self) -> usize {
        let GossipMsg::Flood { .. } = self;
        HEADER_BYTES + EVENT_BYTES + 8
    }

    fn flow(&self) -> Option<u64> {
        let GossipMsg::Flood { event, .. } = self;
        Some(event.id)
    }
}

/// A node of the gossip/flood baseline.
#[derive(Debug, Clone)]
pub struct GossipNode {
    /// Chord routing state (used only for the broadcast tree).
    pub chord: ChordState,
    /// Local subscriptions by internal id — the only storage anywhere.
    pub local: HashMap<u32, Subscription>,
    next_iid: u32,
}

impl GossipNode {
    /// Creates a node.
    pub fn new(chord: ChordState) -> Self {
        Self {
            chord,
            local: HashMap::new(),
            next_iid: 1,
        }
    }

    /// Installs a subscription: purely local, no messages.
    pub fn subscribe<R: NodeRuntime<GossipMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        let iid = self.next_iid;
        self.next_iid += 1;
        self.local.insert(iid, sub.clone());
        let subid = SubId {
            nid: self.chord.id,
            iid,
        };
        ctx.world().oracle.add(0, subid, sub);
        subid
    }

    /// Publishes an event: flood it over the whole ring.
    pub fn publish<R: NodeRuntime<GossipMsg, BaselineWorld>>(&mut self, ctx: &mut R, event: Event) {
        let (me, now) = (ctx.me(), ctx.now());
        let expected = ctx.world().oracle.expected_matches(0, &event.point).len();
        ctx.world()
            .metrics
            .record_publish(event.id, now, me, expected);
        // The publisher owns the whole ring except itself, so it can
        // never be re-reached by its own children.
        let limit = self.chord.id.wrapping_sub(1);
        self.flood(ctx, event, 0, limit);
    }

    /// Delivers locally and covers the arc `(self, limit]` by delegating
    /// disjoint sub-arcs to routing-table neighbors (Chord broadcast).
    fn flood<R: NodeRuntime<GossipMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        event: Event,
        hops: u32,
        limit: u64,
    ) {
        let now = ctx.now();
        let mut matched: Vec<u32> = self
            .local
            .iter()
            .filter(|(_, s)| s.matches(&event))
            .map(|(&iid, _)| iid)
            .collect();
        matched.sort_unstable();
        for iid in matched {
            ctx.world().metrics.record_delivery(
                event.id,
                SubId {
                    nid: self.chord.id,
                    iid,
                },
                now,
                hops,
            );
        }
        let span = clockwise_distance(self.chord.id, limit);
        if span == 0 {
            return; // Arc is empty: leaf of the broadcast tree.
        }
        // Children: every known neighbor inside the arc, nearest first,
        // deduplicated by id. Includes the immediate successor, so no
        // node in the arc can be skipped.
        let mut children: Vec<(u64, Peer)> = self
            .chord
            .fingers
            .iter()
            .flatten()
            .chain(self.chord.successors.iter())
            .map(|p| (clockwise_distance(self.chord.id, p.id), *p))
            .filter(|&(d, _)| d >= 1 && d <= span)
            .collect();
        children.sort_unstable_by_key(|&(d, _)| d);
        children.dedup_by_key(|&mut (d, _)| d);
        for i in 0..children.len() {
            let sub_limit = if i + 1 < children.len() {
                children[i + 1].1.id.wrapping_sub(1)
            } else {
                limit
            };
            ctx.send(
                children[i].1.idx,
                GossipMsg::Flood {
                    event: event.clone(),
                    hops: hops + 1,
                    limit: sub_limit,
                },
            );
        }
    }

    /// Stored-entry count: local subscriptions only (flat by design).
    pub fn load(&self) -> u64 {
        self.local.len() as u64
    }
}

impl Node<GossipMsg, BaselineWorld> for GossipNode {
    fn on_message<R: NodeRuntime<GossipMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        _from: usize,
        msg: GossipMsg,
    ) {
        let GossipMsg::Flood { event, hops, limit } = msg;
        self.flood(ctx, event, hops, limit);
    }

    fn on_timer<R: NodeRuntime<GossipMsg, BaselineWorld>>(&mut self, ctx: &mut R, token: u64) {
        if token >= TOKEN_PUBLISH_BASE {
            let idx = (token - TOKEN_PUBLISH_BASE) as usize;
            let ev = ctx.world().script[idx]
                .take()
                .expect("scripted event fired twice");
            self.publish(ctx, ev);
        }
    }
}

impl BaselineNode for GossipNode {
    type Msg = GossipMsg;

    fn subscribe<R: NodeRuntime<GossipMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        GossipNode::subscribe(self, ctx, sub)
    }

    fn load(&self) -> u64 {
        GossipNode::load(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{BaselineNet, BaselineNetBuilder};
    use hypersub_lph::{Point, Rect};
    use hypersub_simnet::SimTime;

    fn make_net(n: usize) -> BaselineNet<GossipNode> {
        BaselineNetBuilder::new(n)
            .seed(5)
            .build_with(GossipNode::new)
            .unwrap()
    }

    #[test]
    fn subscriptions_cost_zero_messages() {
        let mut net = make_net(16);
        for i in 0..16 {
            let sub = Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]));
            net.subscribe(i, sub).unwrap();
        }
        net.run_to_quiescence();
        assert_eq!(net.net().total_msgs(), 0);
        assert!(net.node_loads().iter().all(|&l| l == 1), "storage is flat");
    }

    #[test]
    fn flood_reaches_every_node_exactly_once() {
        let mut net = make_net(32);
        // Everyone subscribes to everything: delivered == nodes iff the
        // broadcast tree covers the ring without duplicates.
        for i in 0..32 {
            let sub = Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]));
            net.subscribe(i, sub).unwrap();
        }
        net.run_to_quiescence();
        let at = net.time() + SimTime::from_secs(1);
        net.schedule_publish(at, 5, Point(vec![50.0, 50.0]))
            .unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].delivered, 32);
        assert_eq!(stats[0].duplicates, 0);
        // Exactly n - 1 flood messages: one per non-publisher node.
        assert_eq!(net.net().total_msgs(), 31);
    }

    #[test]
    fn flood_matches_bruteforce_on_partial_subs() {
        let mut net = make_net(12);
        for i in 0..12 {
            let lo = i as f64 * 8.0;
            let sub = Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0]));
            net.subscribe(i, sub).unwrap();
        }
        net.run_to_quiescence();
        let mut t = net.time();
        for (node, point) in [
            (3, Point(vec![50.0, 50.0])),
            (7, Point(vec![0.0, 0.0])),
            (1, Point(vec![95.0, 20.0])),
        ] {
            t += SimTime::from_secs(1);
            net.schedule_publish(t, node, point).unwrap();
        }
        net.run_to_quiescence();
        for s in net.event_stats() {
            assert_eq!(s.delivered, s.expected, "event {}", s.event);
            assert_eq!(s.duplicates, 0, "event {}", s.event);
        }
    }
}
