//! Baseline DHT pub/sub systems for comparison with HyperSub.
//!
//! The paper's related-work section (§2) positions HyperSub against two
//! families of DHT-based content-based pub/sub designs; we implement one
//! representative of each — plus two further rivals from the follow-on
//! literature — so the shoot-out harness can demonstrate the trade-offs
//! the paper claims:
//!
//! * [`rendezvous`] — a **Ferry-style single-rendezvous** system (Zhu &
//!   Hu, ICPP'05): one hash point per scheme stores *all* subscriptions
//!   and matches every event. Delivery uses the same embedded-tree SubID
//!   splitting as HyperSub. The paper's criticism: "it used a small set
//!   of peers for storing subscriptions and matching events, which may
//!   cause a serious scalability concern" — visible as extreme load
//!   concentration in the `baseline_compare` bench.
//! * [`attr_ring`] — a **Triantafillou/Aekaterinidis-style attribute
//!   range** system (DEBS'04): each attribute's domain is mapped onto the
//!   ring and a subscription is replicated onto every node whose arc
//!   intersects its range on a chosen attribute. The paper's criticism:
//!   "subscription installation/reinforcement will involve a large number
//!   of nodes and messages" — visible as per-subscription installation
//!   cost.
//! * [`subgroup`] — a **subscription-subgrouping** variant (after arXiv
//!   1611.08743): each attribute's domain is cut into a fixed number of
//!   subgroups and a subscription registers with the subgroups its
//!   dominant attribute range intersects. Installation cost is bounded by
//!   the subgroup count instead of node density, decoupling it from the
//!   advertisement (event) path.
//! * [`gossip`] — a **flood/gossip strawman** (SmartPubSub-style, after
//!   arXiv 2207.06369): subscriptions stay local and every event is
//!   flooded to all brokers over the Chord broadcast tree, matched
//!   locally. Zero installation cost, O(n) bandwidth per event — the
//!   baseline every structured design must beat.
//!
//! All four reuse the Chord substrate ([`hypersub_chord`]) and the metric
//! sinks from [`hypersub_core`], and implement
//! [`common::BaselineNode`] so [`common::BaselineNet`] can drive any of
//! them with the builder / typed-error / `Report` API.

pub mod attr_ring;
pub mod common;
pub mod gossip;
pub mod rendezvous;
pub mod subgroup;
