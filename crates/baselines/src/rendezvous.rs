//! Ferry-style single-rendezvous pub/sub baseline.
//!
//! One hash point per scheme: `key = hash(scheme name)`. Its successor —
//! the *rendezvous node* — stores every subscription and matches every
//! event. Events route to the rendezvous, match there, and fan out to
//! subscribers along the DHT's embedded tree (Ferry's delivery technique,
//! which HyperSub adopted). All matching/storage load concentrates on one
//! node, which is exactly the scalability concern §2 raises about Ferry.

use crate::common::{split_targets, to_targets, BaselineNode, BaselineWorld};
use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_chord::ChordState;
use hypersub_core::model::{Event, SubId, SubTarget, Subscription};
use hypersub_core::msg::{EVENT_BYTES, HEADER_BYTES, SUBID_BYTES};
use hypersub_lph::rotation_offset;
use hypersub_simnet::{Node, NodeRuntime, Payload};
use std::collections::HashMap;

pub use crate::common::TOKEN_PUBLISH_BASE;

/// Rendezvous-system messages.
#[derive(Debug, Clone)]
pub enum RdvMsg {
    /// Route a subscription to the rendezvous node.
    Register {
        /// Rendezvous key.
        key: u64,
        /// Subscriber.
        subid: SubId,
        /// Subscription hypercuboid.
        sub: Subscription,
    },
    /// Route an event to the rendezvous node.
    Publish {
        /// Rendezvous key.
        key: u64,
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
    },
    /// Deliver matched results (embedded-tree fan-out).
    Delivery {
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
        /// SubID list.
        targets: Vec<SubTarget>,
    },
}

impl Payload for RdvMsg {
    fn wire_size(&self) -> usize {
        match self {
            RdvMsg::Register { sub, .. } => HEADER_BYTES + 8 + SUBID_BYTES + 16 * sub.rect.dims(),
            RdvMsg::Publish { .. } => HEADER_BYTES + EVENT_BYTES + SUBID_BYTES,
            RdvMsg::Delivery { targets, .. } => {
                HEADER_BYTES + EVENT_BYTES + SUBID_BYTES * targets.len()
            }
        }
    }

    fn flow(&self) -> Option<u64> {
        match self {
            RdvMsg::Publish { event, .. } | RdvMsg::Delivery { event, .. } => Some(event.id),
            RdvMsg::Register { .. } => None,
        }
    }
}

/// A node of the rendezvous baseline.
#[derive(Debug, Clone)]
pub struct RendezvousNode {
    /// Chord routing state.
    pub chord: ChordState,
    /// The scheme's rendezvous key.
    pub rdv_key: u64,
    /// Subscriptions stored here (non-empty only on the rendezvous node).
    pub store: HashMap<SubId, Subscription>,
    /// This node's local subscriptions (by internal id).
    pub local: HashMap<u32, Subscription>,
    next_iid: u32,
}

impl RendezvousNode {
    /// Creates a node for a scheme identified by `scheme_name`.
    pub fn new(chord: ChordState, scheme_name: &str) -> Self {
        Self {
            chord,
            rdv_key: rotation_offset(scheme_name),
            store: HashMap::new(),
            local: HashMap::new(),
            next_iid: 1,
        }
    }

    /// Installs a subscription from this node.
    pub fn subscribe<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        let iid = self.next_iid;
        self.next_iid += 1;
        self.local.insert(iid, sub.clone());
        let subid = SubId {
            nid: self.chord.id,
            iid,
        };
        ctx.world().oracle.add(0, subid, sub.clone());
        self.route_register(ctx, subid, sub);
        subid
    }

    fn route_register<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        subid: SubId,
        sub: Subscription,
    ) {
        if self.chord.responsible_for(self.rdv_key) {
            self.store.insert(subid, sub);
        } else {
            match next_hop(&self.chord, self.rdv_key) {
                NextHop::Forward(p) => ctx.send(
                    p.idx,
                    RdvMsg::Register {
                        key: self.rdv_key,
                        subid,
                        sub,
                    },
                ),
                NextHop::Local => {
                    self.store.insert(subid, sub);
                }
            }
        }
    }

    /// Publishes an event from this node.
    pub fn publish<R: NodeRuntime<RdvMsg, BaselineWorld>>(&mut self, ctx: &mut R, event: Event) {
        let (me, now) = (ctx.me(), ctx.now());
        let expected = ctx.world().oracle.expected_matches(0, &event.point).len();
        ctx.world()
            .metrics
            .record_publish(event.id, now, me, expected);
        self.route_publish(ctx, event, 0);
    }

    fn route_publish<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        event: Event,
        hops: u32,
    ) {
        if self.chord.responsible_for(self.rdv_key) {
            self.match_and_deliver(ctx, event, hops);
        } else {
            match next_hop(&self.chord, self.rdv_key) {
                NextHop::Forward(p) => ctx.send(
                    p.idx,
                    RdvMsg::Publish {
                        key: self.rdv_key,
                        event,
                        hops: hops + 1,
                    },
                ),
                NextHop::Local => self.match_and_deliver(ctx, event, hops),
            }
        }
    }

    fn match_and_deliver<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        event: Event,
        hops: u32,
    ) {
        let mut matched: Vec<SubId> = self
            .store
            .iter()
            .filter(|(_, s)| s.matches(&event))
            .map(|(&id, _)| id)
            .collect();
        matched.sort_unstable();
        self.deliver(ctx, event, hops, to_targets(matched));
    }

    fn deliver<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        event: Event,
        hops: u32,
        targets: Vec<SubTarget>,
    ) {
        let (local, by_hop) = split_targets(&self.chord, targets);
        for t in local {
            if let Some(iid) = t.iid {
                if self.local.contains_key(&iid) {
                    let now = ctx.now();
                    ctx.world().metrics.record_delivery(
                        event.id,
                        SubId { nid: t.nid, iid },
                        now,
                        hops,
                    );
                }
            }
        }
        for (idx, targets) in by_hop {
            ctx.send(
                idx,
                RdvMsg::Delivery {
                    event: event.clone(),
                    hops: hops + 1,
                    targets,
                },
            );
        }
    }

    /// Stored-subscription count (load metric).
    pub fn load(&self) -> u64 {
        self.store.len() as u64
    }
}

impl Node<RdvMsg, BaselineWorld> for RendezvousNode {
    fn on_message<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        _from: usize,
        msg: RdvMsg,
    ) {
        match msg {
            RdvMsg::Register { subid, sub, .. } => self.route_register(ctx, subid, sub),
            RdvMsg::Publish { event, hops, .. } => self.route_publish(ctx, event, hops),
            RdvMsg::Delivery {
                event,
                hops,
                targets,
            } => self.deliver(ctx, event, hops, targets),
        }
    }

    fn on_timer<R: NodeRuntime<RdvMsg, BaselineWorld>>(&mut self, ctx: &mut R, token: u64) {
        if token >= TOKEN_PUBLISH_BASE {
            let idx = (token - TOKEN_PUBLISH_BASE) as usize;
            let ev = ctx.world().script[idx]
                .take()
                .expect("scripted event fired twice");
            self.publish(ctx, ev);
        }
    }
}

impl BaselineNode for RendezvousNode {
    type Msg = RdvMsg;

    fn subscribe<R: NodeRuntime<RdvMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        RendezvousNode::subscribe(self, ctx, sub)
    }

    fn load(&self) -> u64 {
        RendezvousNode::load(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_chord::builder::{build_ring, RingConfig};
    use hypersub_lph::{Point, Rect};
    use hypersub_simnet::{Sim, SimTime, UniformTopology};
    use std::sync::Arc;

    fn make_sim(n: usize) -> Sim<RendezvousNode, RdvMsg, BaselineWorld> {
        let topo = Arc::new(UniformTopology::new(n, SimTime::from_millis(10)));
        let states = build_ring(&RingConfig::default(), topo.as_ref(), 5);
        let nodes: Vec<RendezvousNode> = states
            .into_iter()
            .map(|st| RendezvousNode::new(st, "bench"))
            .collect();
        Sim::new(topo, nodes, BaselineWorld::default(), 1)
    }

    #[test]
    fn end_to_end_matches_bruteforce() {
        let mut sim = make_sim(12);
        for i in 0..12 {
            let lo = i as f64 * 8.0;
            let sub = Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0]));
            sim.with_node_ctx(i, |n, ctx| n.subscribe(ctx, sub));
        }
        sim.run(1_000_000);
        let point = Point(vec![50.0, 50.0]);
        let expected = sim.world().oracle.expected_matches(0, &point).len();
        assert!(expected >= 1);
        sim.with_node_ctx(3, |n, ctx| {
            n.publish(
                ctx,
                Event {
                    id: 1,
                    point: point.clone(),
                },
            )
        });
        sim.run(1_000_000);
        let stats = sim.world().metrics.event_stats(12, sim.net());
        assert_eq!(stats[0].delivered, expected);
        assert_eq!(stats[0].duplicates, 0);
    }

    #[test]
    fn all_storage_on_one_node() {
        let mut sim = make_sim(16);
        for i in 0..16 {
            let sub = Subscription::new(Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]));
            sim.with_node_ctx(i, |n, ctx| n.subscribe(ctx, sub));
        }
        sim.run(1_000_000);
        let loads: Vec<u64> = (0..16).map(|i| sim.node(i).load()).collect();
        let nonzero: Vec<&u64> = loads.iter().filter(|&&l| l > 0).collect();
        assert_eq!(nonzero.len(), 1, "rendezvous concentrates all storage");
        assert_eq!(*nonzero[0], 16);
    }
}
