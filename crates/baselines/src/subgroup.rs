//! Subscription-subgrouping pub/sub baseline (after arXiv 1611.08743).
//!
//! Instead of replicating a subscription onto every node whose arc
//! intersects its attribute range (the [`crate::attr_ring`] approach §2
//! criticizes), each attribute's domain is pre-cut into a fixed number of
//! *subgroups* ([`SUBGROUPS_PER_ATTR`] equal-width buckets). A
//! subscription clusters into the subgroups its **dominant** (most
//! selective) attribute range intersects, so installation touches at most
//! `SUBGROUPS_PER_ATTR` nodes regardless of how many ring nodes the raw
//! range would cover — installation cost is decoupled from node density
//! and from the advertisement (event) path. An event probes exactly one
//! subgroup per attribute (the bucket containing its value), matches
//! there, and fans out through the shared embedded-tree splitter.
//!
//! Completeness: a matching subscription with dominant attribute `d`
//! covers every bucket its `d`-range intersects, and the event's value on
//! `d` lies inside that range, so the `d`-probe lands in a covered
//! bucket. Duplicate-freedom: a subscription lives only under its
//! dominant attribute and each attribute is probed in exactly one bucket,
//! so at most one shard can match it.

use crate::common::{split_targets, to_targets, BaselineNode, BaselineWorld};
use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_chord::ChordState;
use hypersub_core::model::{Event, SubId, SubTarget, Subscription};
use hypersub_core::msg::{EVENT_BYTES, HEADER_BYTES, SUBID_BYTES};
use hypersub_lph::{rotation_offset, ContentSpace};
use hypersub_simnet::{Node, NodeRuntime, Payload};
use std::collections::HashMap;

pub use crate::common::TOKEN_PUBLISH_BASE;

/// Fixed subgroup (bucket) count per attribute. Bounds installation cost:
/// a subscription registers with at most this many subgroup homes.
pub const SUBGROUPS_PER_ATTR: usize = 16;

/// Subgroup-system messages.
#[derive(Debug, Clone)]
pub enum SgMsg {
    /// Register a subscription with one subgroup home.
    Register {
        /// The subgroup's ring key (routing target).
        key: u64,
        /// Attribute the subscription is clustered under.
        attr: u8,
        /// Subgroup bucket index on that attribute.
        bucket: u16,
        /// Subscriber.
        subid: SubId,
        /// Subscription hypercuboid.
        sub: Subscription,
    },
    /// Probe one subgroup with an event.
    Publish {
        /// The subgroup's ring key.
        key: u64,
        /// Attribute being probed.
        attr: u8,
        /// Subgroup bucket index.
        bucket: u16,
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
    },
    /// Matched-result fan-out.
    Delivery {
        /// The event.
        event: Event,
        /// Hops so far.
        hops: u32,
        /// SubID list.
        targets: Vec<SubTarget>,
    },
}

impl Payload for SgMsg {
    fn wire_size(&self) -> usize {
        match self {
            SgMsg::Register { sub, .. } => HEADER_BYTES + 11 + SUBID_BYTES + 16 * sub.rect.dims(),
            SgMsg::Publish { .. } => HEADER_BYTES + EVENT_BYTES + SUBID_BYTES + 3,
            SgMsg::Delivery { targets, .. } => {
                HEADER_BYTES + EVENT_BYTES + SUBID_BYTES * targets.len()
            }
        }
    }

    fn flow(&self) -> Option<u64> {
        match self {
            SgMsg::Publish { event, .. } | SgMsg::Delivery { event, .. } => Some(event.id),
            SgMsg::Register { .. } => None,
        }
    }
}

/// A node of the subgrouping baseline.
#[derive(Debug, Clone)]
pub struct SubgroupNode {
    /// Chord routing state.
    pub chord: ChordState,
    /// The scheme's content space (shared by all nodes).
    pub space: ContentSpace,
    /// Precomputed subgroup home keys: `keys[attr][bucket]`.
    pub keys: Vec<Vec<u64>>,
    /// Stored members: (attribute, bucket) → subid → subscription.
    pub store: HashMap<(u8, u16), HashMap<SubId, Subscription>>,
    /// Local subscriptions by internal id.
    pub local: HashMap<u32, Subscription>,
    next_iid: u32,
}

impl SubgroupNode {
    /// Creates a node for the given scheme space.
    pub fn new(chord: ChordState, scheme_name: &str, space: ContentSpace) -> Self {
        let keys = (0..space.dims())
            .map(|j| {
                (0..SUBGROUPS_PER_ATTR)
                    .map(|b| rotation_offset(&format!("{scheme_name}/sg{j}.{b}")))
                    .collect()
            })
            .collect();
        Self {
            chord,
            space,
            keys,
            store: HashMap::new(),
            local: HashMap::new(),
            next_iid: 1,
        }
    }

    /// The subgroup bucket containing value `v` on attribute `attr`.
    pub fn bucket(&self, attr: usize, v: f64) -> u16 {
        let d = self.space.domain(attr);
        let frac = ((v - d.lo) / d.width()).clamp(0.0, 1.0);
        ((frac * SUBGROUPS_PER_ATTR as f64) as usize).min(SUBGROUPS_PER_ATTR - 1) as u16
    }

    /// The attribute a subscription clusters under: the one with the
    /// narrowest relative range (most selective), as in the attribute
    /// ring, so the two systems shard the same subscription population
    /// the same way and differ only in installation mechanics.
    pub fn choose_attr(&self, sub: &Subscription) -> usize {
        let mut best = 0;
        let mut best_frac = f64::INFINITY;
        for j in 0..self.space.dims() {
            let d = self.space.domain(j);
            let frac = (sub.rect.hi[j] - sub.rect.lo[j]) / d.width();
            if frac < best_frac {
                best = j;
                best_frac = frac;
            }
        }
        best
    }

    /// Installs a subscription from this node: one registration per
    /// subgroup its dominant attribute range intersects.
    pub fn subscribe<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        let iid = self.next_iid;
        self.next_iid += 1;
        self.local.insert(iid, sub.clone());
        let subid = SubId {
            nid: self.chord.id,
            iid,
        };
        ctx.world().oracle.add(0, subid, sub.clone());
        let attr = self.choose_attr(&sub);
        let lo = self.bucket(attr, sub.rect.lo[attr]);
        let hi = self.bucket(attr, sub.rect.hi[attr]);
        for bucket in lo..=hi {
            let key = self.keys[attr][bucket as usize];
            self.route_register(ctx, key, attr as u8, bucket, subid, sub.clone());
        }
        subid
    }

    fn route_register<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        key: u64,
        attr: u8,
        bucket: u16,
        subid: SubId,
        sub: Subscription,
    ) {
        if self.chord.responsible_for(key) {
            self.store
                .entry((attr, bucket))
                .or_default()
                .insert(subid, sub);
        } else {
            match next_hop(&self.chord, key) {
                NextHop::Forward(p) => ctx.send(
                    p.idx,
                    SgMsg::Register {
                        key,
                        attr,
                        bucket,
                        subid,
                        sub,
                    },
                ),
                NextHop::Local => {
                    self.store
                        .entry((attr, bucket))
                        .or_default()
                        .insert(subid, sub);
                }
            }
        }
    }

    /// Publishes an event: one probe per attribute, to the single
    /// subgroup whose bucket contains the event's value.
    pub fn publish<R: NodeRuntime<SgMsg, BaselineWorld>>(&mut self, ctx: &mut R, event: Event) {
        let (me, now) = (ctx.me(), ctx.now());
        let expected = ctx.world().oracle.expected_matches(0, &event.point).len();
        ctx.world()
            .metrics
            .record_publish(event.id, now, me, expected);
        for attr in 0..self.space.dims() {
            let bucket = self.bucket(attr, event.point.0[attr]);
            let key = self.keys[attr][bucket as usize];
            self.route_publish(ctx, key, attr as u8, bucket, event.clone(), 0);
        }
    }

    fn route_publish<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        key: u64,
        attr: u8,
        bucket: u16,
        event: Event,
        hops: u32,
    ) {
        if self.chord.responsible_for(key) {
            self.match_and_deliver(ctx, attr, bucket, event, hops);
        } else {
            match next_hop(&self.chord, key) {
                NextHop::Forward(p) => ctx.send(
                    p.idx,
                    SgMsg::Publish {
                        key,
                        attr,
                        bucket,
                        event,
                        hops: hops + 1,
                    },
                ),
                NextHop::Local => self.match_and_deliver(ctx, attr, bucket, event, hops),
            }
        }
    }

    fn match_and_deliver<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        attr: u8,
        bucket: u16,
        event: Event,
        hops: u32,
    ) {
        let Some(shard) = self.store.get(&(attr, bucket)) else {
            return;
        };
        let mut matched: Vec<SubId> = shard
            .iter()
            .filter(|(_, s)| s.matches(&event))
            .map(|(&id, _)| id)
            .collect();
        matched.sort_unstable();
        self.deliver(ctx, event, hops, to_targets(matched));
    }

    fn deliver<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        event: Event,
        hops: u32,
        targets: Vec<SubTarget>,
    ) {
        let (local, by_hop) = split_targets(&self.chord, targets);
        for t in local {
            if let Some(iid) = t.iid {
                if self.local.contains_key(&iid) {
                    let now = ctx.now();
                    ctx.world().metrics.record_delivery(
                        event.id,
                        SubId { nid: t.nid, iid },
                        now,
                        hops,
                    );
                }
            }
        }
        for (idx, targets) in by_hop {
            ctx.send(
                idx,
                SgMsg::Delivery {
                    event: event.clone(),
                    hops: hops + 1,
                    targets,
                },
            );
        }
    }

    /// Stored subgroup-member count (load metric).
    pub fn load(&self) -> u64 {
        self.store.values().map(|m| m.len() as u64).sum()
    }
}

impl Node<SgMsg, BaselineWorld> for SubgroupNode {
    fn on_message<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        _from: usize,
        msg: SgMsg,
    ) {
        match msg {
            SgMsg::Register {
                key,
                attr,
                bucket,
                subid,
                sub,
            } => self.route_register(ctx, key, attr, bucket, subid, sub),
            SgMsg::Publish {
                key,
                attr,
                bucket,
                event,
                hops,
            } => self.route_publish(ctx, key, attr, bucket, event, hops),
            SgMsg::Delivery {
                event,
                hops,
                targets,
            } => self.deliver(ctx, event, hops, targets),
        }
    }

    fn on_timer<R: NodeRuntime<SgMsg, BaselineWorld>>(&mut self, ctx: &mut R, token: u64) {
        if token >= TOKEN_PUBLISH_BASE {
            let idx = (token - TOKEN_PUBLISH_BASE) as usize;
            let ev = ctx.world().script[idx]
                .take()
                .expect("scripted event fired twice");
            self.publish(ctx, ev);
        }
    }
}

impl BaselineNode for SubgroupNode {
    type Msg = SgMsg;

    fn subscribe<R: NodeRuntime<SgMsg, BaselineWorld>>(
        &mut self,
        ctx: &mut R,
        sub: Subscription,
    ) -> SubId {
        SubgroupNode::subscribe(self, ctx, sub)
    }

    fn load(&self) -> u64 {
        SubgroupNode::load(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{BaselineNet, BaselineNetBuilder};
    use hypersub_lph::{Point, Rect};
    use hypersub_simnet::SimTime;

    fn make_net(n: usize) -> BaselineNet<SubgroupNode> {
        let space = ContentSpace::uniform(2, 0.0, 100.0);
        BaselineNetBuilder::new(n)
            .seed(5)
            .build_with(|st| SubgroupNode::new(st, "bench", space.clone()))
            .unwrap()
    }

    #[test]
    fn bucket_is_monotone_and_clamped() {
        let net = make_net(4);
        let node = net.node(0).unwrap();
        assert_eq!(node.bucket(0, -5.0), 0);
        assert_eq!(node.bucket(0, 100.0), (SUBGROUPS_PER_ATTR - 1) as u16);
        let mut prev = 0;
        for v in 0..=100 {
            let b = node.bucket(0, v as f64);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn end_to_end_matches_bruteforce() {
        let mut net = make_net(12);
        for i in 0..12 {
            let lo = i as f64 * 8.0;
            let sub = Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0]));
            net.subscribe(i, sub).unwrap();
        }
        net.run_to_quiescence();
        let mut t = net.time();
        for (node, point) in [
            (3, Point(vec![50.0, 50.0])),
            (7, Point(vec![0.0, 0.0])),
            (1, Point(vec![95.0, 20.0])),
        ] {
            t += SimTime::from_secs(1);
            net.schedule_publish(t, node, point).unwrap();
        }
        net.run_to_quiescence();
        for s in net.event_stats() {
            assert_eq!(s.delivered, s.expected, "event {}", s.event);
            assert_eq!(s.duplicates, 0, "event {}", s.event);
        }
    }

    #[test]
    fn installation_is_bounded_by_subgroup_count() {
        // A full-domain subscription in a large ring: the attr_ring
        // design would replicate it onto every node; subgrouping caps it
        // at SUBGROUPS_PER_ATTR homes.
        let mut net = make_net(64);
        let sub = Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]));
        net.subscribe(0, sub).unwrap();
        net.run_to_quiescence();
        let holders = net.node_loads().iter().filter(|&&l| l > 0).count();
        assert!(holders >= 1);
        assert!(
            holders <= SUBGROUPS_PER_ATTR,
            "expected ≤ {SUBGROUPS_PER_ATTR} subgroup homes, got {holders}"
        );
        let total: u64 = net.node_loads().iter().sum();
        assert_eq!(total, SUBGROUPS_PER_ATTR as u64, "one member per bucket");
    }
}
