//! Criterion microbenchmarks for the hot paths of HyperSub: the
//! locality-preserving hash, zone algebra, repository matching, Chord
//! routing, and end-to-end publish/deliver on a small network.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hypersub_chord::builder::{build_ring, RingConfig};
use hypersub_chord::routing::route_path;
use hypersub_core::config::SystemConfig;
use hypersub_core::index::IndexMode;
use hypersub_core::model::{Registry, SubId, Subscription};
use hypersub_core::repo::{StoredSub, ZoneRepo};
use hypersub_core::sim::Network;
use hypersub_lph::{lph_point, lph_rect, ContentSpace, Point, Rect, ZoneCode, ZoneParams};
use hypersub_simnet::{SimTime, UniformTopology};
use hypersub_workload::{WorkloadGen, WorkloadSpec};

fn bench_lph(c: &mut Criterion) {
    let params = ZoneParams::base2_level20();
    let space = ContentSpace::uniform(4, 0.0, 10_000.0);
    let mut gen = WorkloadGen::new(WorkloadSpec::paper_table1(), 1);
    let points: Vec<Point> = (0..1024).map(|_| gen.event_point()).collect();
    let rects: Vec<Rect> = (0..1024).map(|_| gen.subscription().rect).collect();

    let mut i = 0;
    c.bench_function("lph_point (4d, base2/level20)", |b| {
        b.iter(|| {
            i = (i + 1) % points.len();
            black_box(lph_point(&params, &space, &points[i]))
        })
    });
    let mut j = 0;
    c.bench_function("lph_rect (4d, base2/level20)", |b| {
        b.iter(|| {
            j = (j + 1) % rects.len();
            black_box(lph_rect(&params, &space, &rects[j]))
        })
    });
}

fn bench_zone_algebra(c: &mut Criterion) {
    let params = ZoneParams::base2_level20();
    let space = ContentSpace::uniform(4, 0.0, 10_000.0);
    let mut zone = ZoneCode::ROOT;
    for d in [1, 0, 1, 1, 0, 1, 0, 0, 1, 1] {
        zone = zone.child(&params, d);
    }
    c.bench_function("zone key", |b| b.iter(|| black_box(zone.key(&params))));
    c.bench_function("zone extent (level 10)", |b| {
        b.iter(|| black_box(zone.extent(&params, &space)))
    });
}

fn bench_repo_match(c: &mut Criterion) {
    let mut gen = WorkloadGen::new(WorkloadSpec::paper_table1(), 2);
    let mut repo = ZoneRepo::new(1);
    for i in 0..1000u64 {
        let sub = gen.subscription();
        repo.insert(
            SubId { nid: i, iid: 1 },
            StoredSub::Real {
                proj: sub.rect.clone(),
                full: sub.rect,
            },
        );
    }
    let points: Vec<Point> = (0..256).map(|_| gen.event_point()).collect();
    for mode in [IndexMode::Linear, IndexMode::Grid, IndexMode::Hybrid] {
        let mut repo = repo.clone();
        let mut i = 0;
        c.bench_function(
            &format!("repo match_point (1000 entries, {})", mode.name()),
            |b| {
                b.iter(|| {
                    i = (i + 1) % points.len();
                    black_box(repo.match_point(&points[i], &points[i], mode))
                })
            },
        );
    }
}

fn bench_routing(c: &mut Criterion) {
    let topo = UniformTopology::new(1024, SimTime::from_millis(10));
    let states = build_ring(&RingConfig::default(), &topo, 9);
    let mut k = 0u64;
    c.bench_function("chord route_path (1024 nodes)", |b| {
        b.iter(|| {
            k = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
            black_box(route_path(&states, (k % 1024) as usize, k))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let spec = WorkloadSpec::paper_table1();
    let registry = Registry::new(vec![spec.scheme_def(0)]);
    let mut net = Network::builder(64)
        .registry(registry)
        .config(SystemConfig::default())
        .seed(3)
        .build()
        .expect("valid bench configuration");
    let mut gen = WorkloadGen::new(spec, 3);
    for node in 0..64 {
        for _ in 0..4 {
            net.subscribe(node, 0, gen.subscription());
        }
    }
    net.run_to_quiescence();
    let mut n = 0usize;
    c.bench_function("publish + full delivery (64 nodes, 256 subs)", |b| {
        b.iter(|| {
            n = (n + 1) % 64;
            net.publish(n, 0, gen.event_point()).unwrap();
            net.run_to_quiescence();
        })
    });

    let mut m = 0usize;
    c.bench_function("subscribe + install (64 nodes)", |b| {
        b.iter(|| {
            m = (m + 1) % 64;
            let sub: Subscription = gen.subscription();
            net.subscribe(m, 0, sub);
            net.run_to_quiescence();
        })
    });
}

criterion_group!(
    benches,
    bench_lph,
    bench_zone_algebra,
    bench_repo_match,
    bench_routing,
    bench_end_to_end
);
criterion_main!(benches);
