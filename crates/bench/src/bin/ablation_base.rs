//! Ablation A1 — zone base β sweep: base 2 (level 20), base 4 (level 10),
//! base 16 (level 5), all over 20 zone bits. Larger bases shorten the
//! zone tree (fewer climb hops, less delivery latency/bandwidth) but
//! concentrate load — the Figure 2/4 trade-off, extended one step.

use hypersub_bench::{is_quick, print_summary, run_experiment, ExperimentConfig};
use hypersub_core::config::SystemConfig;
use hypersub_lph::ZoneParams;
use hypersub_stats::Table;
use rayon::prelude::*;

fn main() {
    let quick = is_quick();
    let bases: Vec<(u8, &str)> = vec![
        (1, "base 2, level 20"),
        (2, "base 4, level 10"),
        (4, "base 16, level 5"),
    ];
    let configs: Vec<ExperimentConfig> = bases
        .iter()
        .map(|&(bits, label)| {
            let mut c = ExperimentConfig::paper_default().with_label(label);
            c.system = SystemConfig {
                zone: ZoneParams::new(bits, 20),
                ..SystemConfig::default()
            };
            if quick {
                c = c.quick();
            } else {
                c.spec.events = 5000;
            }
            c
        })
        .collect();
    let results: Vec<_> = configs.par_iter().map(run_experiment).collect();
    print_summary(&results);

    let mut t = Table::new(
        "Ablation A1: zone base vs load concentration",
        &["config", "max load", "mean load", "max/mean"],
    );
    for r in &results {
        let max = r.node_loads.iter().copied().max().unwrap_or(0);
        let mean = r.node_loads.iter().sum::<u64>() as f64 / r.node_loads.len().max(1) as f64;
        t.row(&[
            r.label.clone(),
            max.to_string(),
            format!("{mean:.1}"),
            format!("{:.1}", max as f64 / mean.max(1e-9)),
        ]);
    }
    println!("{t}");
    println!("Expected shape: hops/latency/bandwidth fall with larger base; max/mean load rises.");
}
