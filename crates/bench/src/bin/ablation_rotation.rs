//! Ablation A2 — zone-mapping rotation (§4).
//!
//! Four pub/sub schemes share one network. Without rotation, the large
//! (shallow) content zones of *every* scheme hash to the same keys — the
//! root zone of each scheme maps to `β^m − 1`! — piling their load onto
//! the same nodes. With rotation (offset φ = hash(scheme name)), those
//! zones spread across the ring.

use hypersub_bench::is_quick;
use hypersub_core::config::SystemConfig;
use hypersub_core::model::{Registry, SchemeDef};
use hypersub_core::sim::{Network, TopologyKind};
use hypersub_simnet::SimTime;
use hypersub_stats::Table;
use hypersub_workload::{WorkloadGen, WorkloadSpec};
use rayon::prelude::*;

fn build_registry(rotation: bool, n_schemes: usize) -> (Registry, WorkloadSpec) {
    let spec = WorkloadSpec::paper_table1();
    let schemes: Vec<SchemeDef> = (0..n_schemes)
        .map(|i| {
            let mut b = SchemeDef::builder(&format!("scheme-{i}"));
            for a in &spec.attrs {
                b = b.attribute(&a.name, a.min, a.max);
            }
            if !rotation {
                b = b.without_rotation();
            }
            b.build(i as u32)
        })
        .collect();
    (Registry::new(schemes), spec)
}

struct Outcome {
    label: String,
    max_load: u64,
    mean_load: f64,
    gini: f64,
    complete: f64,
}

/// Gini coefficient of the load distribution (0 = perfectly even).
fn gini(loads: &[u64]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let sum: f64 = v.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut weighted = 0.0;
    for (i, x) in v.iter().enumerate() {
        cum += x;
        weighted += cum - x / 2.0;
        let _ = i;
    }
    1.0 - 2.0 * weighted / (n as f64 * sum)
}

fn run(rotation: bool, quick: bool) -> Outcome {
    let n_schemes = 4;
    let (registry, spec) = build_registry(rotation, n_schemes);
    let nodes = if quick { 128 } else { 1000 };
    let events_per_scheme = if quick { 100 } else { 1000 };
    let mut net = Network::builder(nodes)
        .registry(registry)
        .config(SystemConfig::default())
        .topology(TopologyKind::KingLike(SimTime::from_millis(180)))
        .seed(0xa2)
        .build()
        .expect("valid ablation configuration");
    let mut gens: Vec<WorkloadGen> = (0..n_schemes)
        .map(|i| WorkloadGen::new(spec.clone(), 0xbeef + i as u64))
        .collect();
    for node in 0..nodes {
        for (s, g) in gens.iter_mut().enumerate() {
            for _ in 0..3 {
                net.subscribe(node, s as u32, g.subscription());
            }
        }
    }
    net.run_to_quiescence();
    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..events_per_scheme {
        for (s, _) in (0..n_schemes).enumerate() {
            let node = gens[s].random_node(nodes);
            let point = gens[s].event_point();
            net.schedule_publish(t, node, s as u32, point)
                .expect("publisher index in range");
            t += gens[s].interarrival();
        }
    }
    net.run_to_quiescence();
    let events = net.event_stats();
    let loads = net.node_loads();
    Outcome {
        label: format!("rotation {}", if rotation { "on" } else { "off" }),
        max_load: loads.iter().copied().max().unwrap_or(0),
        mean_load: loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64,
        gini: gini(&loads),
        complete: events.iter().filter(|e| e.delivered == e.expected).count() as f64
            / events.len().max(1) as f64,
    }
}

fn main() {
    let quick = is_quick();
    let outcomes: Vec<Outcome> = [true, false]
        .par_iter()
        .map(|&rot| run(rot, quick))
        .collect();
    let mut t = Table::new(
        "Ablation A2: zone-mapping rotation, 4 schemes sharing the ring",
        &[
            "config",
            "max load",
            "mean load",
            "max/mean",
            "Gini",
            "complete %",
        ],
    );
    for o in &outcomes {
        t.row(&[
            o.label.clone(),
            o.max_load.to_string(),
            format!("{:.1}", o.mean_load),
            format!("{:.1}", o.max_load as f64 / o.mean_load.max(1e-9)),
            format!("{:.3}", o.gini),
            format!("{:.1}", 100.0 * o.complete),
        ]);
    }
    println!("{t}");
    println!("Expected shape: rotation lowers max/mean and Gini — without it the shallow\nzones of all 4 schemes land on the same nodes.");
}
