//! Ablation A3 — §3.5 sub-scheme decomposition.
//!
//! Workload: every subscription specifies predicates on only 2 of the 4
//! attributes (half on {0,1}, half on {2,3}), the case §3.5 calls out:
//! unspecified attributes default to the whole domain, so without
//! subschemes these subscriptions map to large (shallow) content zones,
//! undermining locality and piling load onto few nodes. With subschemes
//! {0,1} and {2,3}, each subscription installs into the subscheme it
//! actually constrains.

use hypersub_bench::{is_quick, ExperimentConfig};
use hypersub_core::model::Registry;
use hypersub_core::sim::{Network, TopologyKind};
use hypersub_simnet::SimTime;
use hypersub_stats::Table;
use hypersub_workload::WorkloadGen;
use rayon::prelude::*;

struct Outcome {
    label: String,
    install_msgs: u64,
    max_load: u64,
    mean_load: f64,
    complete: f64,
    avg_hops: f64,
    avg_bw_kb: f64,
}

fn run(label: &str, subschemes: Option<Vec<Vec<usize>>>, quick: bool) -> Outcome {
    let mut cfg = ExperimentConfig::paper_default().with_label(label);
    if quick {
        cfg = cfg.quick();
    } else {
        cfg.nodes = 1000;
        cfg.spec.events = 3000;
    }
    cfg.subschemes = subschemes;
    let scheme = match &cfg.subschemes {
        Some(ss) => {
            let refs: Vec<&[usize]> = ss.iter().map(|v| v.as_slice()).collect();
            cfg.spec.scheme_def_with_subschemes(0, &refs)
        }
        None => cfg.spec.scheme_def(0),
    };
    let registry = Registry::new(vec![scheme]);
    let mut net = Network::builder(cfg.nodes)
        .registry(registry)
        .config(cfg.system.clone())
        .topology(TopologyKind::KingLike(cfg.mean_rtt))
        .seed(cfg.seed)
        .build()
        .expect("valid ablation configuration");
    let mut gen = WorkloadGen::new(cfg.spec.clone(), cfg.seed ^ 0x55);
    // Partial subscriptions: half constrain {0,1}, half {2,3}.
    for node in 0..cfg.nodes {
        for k in 0..cfg.spec.subs_per_node {
            let dims: &[usize] = if (node + k) % 2 == 0 {
                &[0, 1]
            } else {
                &[2, 3]
            };
            net.subscribe(node, 0, gen.subscription_on(dims));
        }
    }
    net.run_to_quiescence();
    let install_msgs = net.net().total_msgs();
    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..cfg.spec.events {
        let node = gen.random_node(cfg.nodes);
        net.schedule_publish(t, node, 0, gen.event_point())
            .expect("publisher index in range");
        t += gen.interarrival();
    }
    net.run_to_quiescence();
    let events = net.event_stats();
    let loads = net.node_loads();
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let mean_load = loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64;
    Outcome {
        label: label.to_string(),
        install_msgs,
        max_load,
        mean_load,
        complete: events.iter().filter(|e| e.delivered == e.expected).count() as f64
            / events.len().max(1) as f64,
        avg_hops: events.iter().map(|e| e.max_hops as f64).sum::<f64>()
            / events.len().max(1) as f64,
        avg_bw_kb: events
            .iter()
            .map(|e| e.bandwidth_bytes as f64 / 1024.0)
            .sum::<f64>()
            / events.len().max(1) as f64,
    }
}

fn main() {
    let quick = is_quick();
    let runs: Vec<(&str, Option<Vec<Vec<usize>>>)> = vec![
        ("single scheme (no subschemes)", None),
        (
            "subschemes {0,1} + {2,3}",
            Some(vec![vec![0, 1], vec![2, 3]]),
        ),
    ];
    let outcomes: Vec<Outcome> = runs
        .par_iter()
        .map(|(label, ss)| run(label, ss.clone(), quick))
        .collect();
    let mut t = Table::new(
        "Ablation A3: sub-scheme decomposition (partial subscriptions on 2 of 4 attrs)",
        &[
            "config",
            "install msgs",
            "max load",
            "mean load",
            "max/mean",
            "avg max hops",
            "avg bw/event (KB)",
            "complete %",
        ],
    );
    for o in &outcomes {
        t.row(&[
            o.label.clone(),
            o.install_msgs.to_string(),
            o.max_load.to_string(),
            format!("{:.1}", o.mean_load),
            format!("{:.1}", o.max_load as f64 / o.mean_load.max(1e-9)),
            format!("{:.1}", o.avg_hops),
            format!("{:.1}", o.avg_bw_kb),
            format!("{:.1}", 100.0 * o.complete),
        ]);
    }
    println!("{t}");
    println!("Expected shape: subschemes cut installation traffic and load concentration\nfor partially-specified subscriptions (§3.5).");
}
