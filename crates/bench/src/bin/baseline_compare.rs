//! Baselines B1/B2 — HyperSub vs Ferry-style rendezvous vs attribute-ring.
//!
//! Same ring, same topology, same workload. Demonstrates the §2 claims:
//! the rendezvous design concentrates all storage/matching on one node;
//! the attribute-ring design pays many nodes and messages per
//! subscription installation; HyperSub spreads load while keeping
//! installation cheap.

use hypersub_baselines::attr_ring::AttrRingNode;
use hypersub_baselines::common::{BaselineNet, BaselineNetBuilder, BaselineNode};
use hypersub_baselines::rendezvous::RendezvousNode;
use hypersub_bench::is_quick;
use hypersub_chord::ChordState;
use hypersub_core::config::SystemConfig;
use hypersub_core::model::Registry;
use hypersub_core::sim::{Network, TopologyKind};
use hypersub_simnet::SimTime;
use hypersub_stats::Table;
use hypersub_workload::{WorkloadGen, WorkloadSpec};

struct Row {
    system: &'static str,
    install_msgs: u64,
    max_load: u64,
    mean_load: f64,
    avg_hops: f64,
    avg_latency_ms: f64,
    avg_bw_kb: f64,
    complete: f64,
}

fn summarize(
    system: &'static str,
    install_msgs: u64,
    loads: Vec<u64>,
    events: Vec<hypersub_core::metrics::EventStats>,
) -> Row {
    let n_ev = events.len().max(1) as f64;
    Row {
        system,
        install_msgs,
        max_load: loads.iter().copied().max().unwrap_or(0),
        mean_load: loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64,
        avg_hops: events.iter().map(|e| e.max_hops as f64).sum::<f64>() / n_ev,
        avg_latency_ms: events
            .iter()
            .map(|e| e.max_latency.as_millis_f64())
            .sum::<f64>()
            / n_ev,
        avg_bw_kb: events
            .iter()
            .map(|e| e.bandwidth_bytes as f64 / 1024.0)
            .sum::<f64>()
            / n_ev,
        complete: events.iter().filter(|e| e.delivered == e.expected).count() as f64 / n_ev,
    }
}

fn scale(quick: bool) -> (usize, usize, usize) {
    if quick {
        (128, 4, 300)
    } else {
        (512, 6, 2000)
    }
}

fn run_hypersub(quick: bool, spec: &WorkloadSpec, seed: u64) -> Row {
    let (nodes, subs_per_node, n_events) = scale(quick);
    let registry = Registry::new(vec![spec.scheme_def(0)]);
    let mut net = Network::builder(nodes)
        .registry(registry)
        .config(SystemConfig::default())
        .topology(TopologyKind::KingLike(SimTime::from_millis(180)))
        .seed(seed)
        .build()
        .expect("valid baseline configuration");
    let mut gen = WorkloadGen::new(spec.clone(), seed);
    for node in 0..nodes {
        for _ in 0..subs_per_node {
            net.subscribe(node, 0, gen.subscription());
        }
    }
    net.run_to_quiescence();
    let install_msgs = net.net().total_msgs();
    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..n_events {
        let node = gen.random_node(nodes);
        net.schedule_publish(t, node, 0, gen.event_point())
            .expect("publisher index in range");
        t += gen.interarrival();
    }
    net.run_to_quiescence();
    summarize(
        "HyperSub",
        install_msgs,
        net.node_loads(),
        net.event_stats(),
    )
}

/// Runs one baseline system through the shared [`BaselineNet`] driver:
/// same builder, same seed derivations, same workload call order as the
/// hand-rolled loops this replaced (and as `run_hypersub` above).
fn run_baseline<N: BaselineNode>(
    system: &'static str,
    quick: bool,
    spec: &WorkloadSpec,
    seed: u64,
    make: impl FnMut(ChordState) -> N,
) -> Row {
    let (nodes, subs_per_node, n_events) = scale(quick);
    let mut net: BaselineNet<N> = BaselineNetBuilder::new(nodes)
        .seed(seed)
        .king_like(SimTime::from_millis(180))
        .build_with(make)
        .expect("valid baseline configuration");
    let mut gen = WorkloadGen::new(spec.clone(), seed);
    for node in 0..nodes {
        for _ in 0..subs_per_node {
            let sub = gen.subscription();
            net.subscribe(node, sub).expect("subscriber index in range");
        }
    }
    net.run_to_quiescence();
    let install_msgs = net.net().total_msgs();
    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..n_events {
        let node = gen.random_node(nodes);
        net.schedule_publish(t, node, gen.event_point())
            .expect("publisher index in range");
        t += gen.interarrival();
    }
    net.run_to_quiescence();
    summarize(system, install_msgs, net.node_loads(), net.event_stats())
}

fn run_rendezvous(quick: bool, spec: &WorkloadSpec, seed: u64) -> Row {
    run_baseline("Ferry-style rendezvous", quick, spec, seed, |st| {
        RendezvousNode::new(st, &spec.scheme_name)
    })
}

fn run_attr_ring(quick: bool, spec: &WorkloadSpec, seed: u64) -> Row {
    let space = spec.scheme_def(0).space.clone();
    run_baseline("Attribute-ring", quick, spec, seed, |st| {
        AttrRingNode::new(st, &spec.scheme_name, space.clone())
    })
}

fn main() {
    let quick = is_quick();
    let spec = WorkloadSpec::paper_table1();
    let seed = 0xb45e;
    let rows = [
        run_hypersub(quick, &spec, seed),
        run_rendezvous(quick, &spec, seed),
        run_attr_ring(quick, &spec, seed),
    ];
    let (nodes, subs_per_node, n_events) = scale(quick);
    println!("network: {nodes} nodes, {subs_per_node} subs/node, {n_events} events\n");
    let mut t = Table::new(
        "Baseline comparison (same ring, same workload)",
        &[
            "system",
            "install msgs",
            "max node load",
            "mean load",
            "max/mean",
            "avg max hops",
            "avg max latency (ms)",
            "avg bw/event (KB)",
            "complete %",
        ],
    );
    for r in &rows {
        t.row(&[
            r.system.to_string(),
            r.install_msgs.to_string(),
            r.max_load.to_string(),
            format!("{:.1}", r.mean_load),
            format!("{:.1}", r.max_load as f64 / r.mean_load.max(1e-9)),
            format!("{:.1}", r.avg_hops),
            format!("{:.0}", r.avg_latency_ms),
            format!("{:.1}", r.avg_bw_kb),
            format!("{:.1}", 100.0 * r.complete),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape (paper §2): rendezvous concentrates all storage/matching on one\n\
         node (huge max/mean); attribute-ring pays many installation messages (wide\n\
         ranges replicate along the ring); HyperSub keeps both moderate."
    );
}
