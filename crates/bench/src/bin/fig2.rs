//! Figure 2 — distribution of events with respect to (a) percentage of
//! matched subscriptions, (b) max hops, (c) max latency and (d) bandwidth
//! cost per event, for the four configurations {base 2 level 20, base 4
//! level 10} × {no LB, LB}.

use hypersub_bench::{cdf_table, fig2_configs, is_quick, print_summary, run_experiment};
use rayon::prelude::*;

fn main() {
    let configs = fig2_configs(is_quick());
    let results: Vec<_> = configs.par_iter().map(run_experiment).collect();

    // (a) matched percentage — workload property, identical across
    // configurations; plotted from the first run as the paper does.
    let matched: Vec<f64> = results[0]
        .events
        .iter()
        .map(|e| 100.0 * e.matched_fraction)
        .collect();
    println!(
        "{}",
        cdf_table(
            &format!(
                "Fig 2(a): CDF of events vs % matched subscriptions (avg {:.3}%)",
                results[0].avg_matched_pct()
            ),
            "matched %",
            &[("all configs".to_string(), matched)],
            25,
        )
    );

    // (b) max hops.
    let hops: Vec<(String, Vec<f64>)> = results
        .iter()
        .map(|r| {
            (
                format!("{} (avg {:.0})", r.label, r.avg_max_hops()),
                r.events.iter().map(|e| e.max_hops as f64).collect(),
            )
        })
        .collect();
    println!(
        "{}",
        cdf_table("Fig 2(b): CDF of events vs max hops", "max hops", &hops, 25)
    );

    // (c) max latency.
    let lat: Vec<(String, Vec<f64>)> = results
        .iter()
        .map(|r| {
            (
                format!("{} (avg {:.0}ms)", r.label, r.avg_max_latency_ms()),
                r.events
                    .iter()
                    .map(|e| e.max_latency.as_millis_f64())
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        cdf_table(
            "Fig 2(c): CDF of events vs max latency (ms)",
            "max latency (ms)",
            &lat,
            25,
        )
    );

    // (d) bandwidth cost per event.
    let bw: Vec<(String, Vec<f64>)> = results
        .iter()
        .map(|r| {
            (
                format!("{} (avg {:.1}KB)", r.label, r.avg_bandwidth_kb()),
                r.events
                    .iter()
                    .map(|e| e.bandwidth_bytes as f64 / 1024.0)
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        cdf_table(
            "Fig 2(d): CDF of events vs bandwidth cost per event (KB)",
            "bandwidth (KB)",
            &bw,
            25,
        )
    );

    print_summary(&results);
}
