//! Figure 3 — distribution of nodes with respect to (a) in-node and
//! (b) out-node bandwidth over the whole simulation, for the four
//! configurations of Figure 2. Load balancing should cut the maxima.

use hypersub_bench::{cdf_table, fig2_configs, is_quick, print_summary, run_experiment};
use hypersub_stats::Table;
use rayon::prelude::*;

fn main() {
    let configs = fig2_configs(is_quick());
    let results: Vec<_> = configs.par_iter().map(run_experiment).collect();

    let in_bw: Vec<(String, Vec<f64>)> = results
        .iter()
        .map(|r| {
            let v: Vec<f64> = r
                .node_traffic
                .iter()
                .map(|t| t.bytes_in as f64 / 1024.0)
                .collect();
            let max = v.iter().copied().fold(0.0f64, f64::max);
            (format!("{} (max {:.0}KB)", r.label, max), v)
        })
        .collect();
    println!(
        "{}",
        cdf_table(
            "Fig 3(a): CDF of nodes vs in-node bandwidth (KB)",
            "in bandwidth (KB)",
            &in_bw,
            25,
        )
    );

    let out_bw: Vec<(String, Vec<f64>)> = results
        .iter()
        .map(|r| {
            let v: Vec<f64> = r
                .node_traffic
                .iter()
                .map(|t| t.bytes_out as f64 / 1024.0)
                .collect();
            let max = v.iter().copied().fold(0.0f64, f64::max);
            (format!("{} (max {:.0}KB)", r.label, max), v)
        })
        .collect();
    println!(
        "{}",
        cdf_table(
            "Fig 3(b): CDF of nodes vs out-node bandwidth (KB)",
            "out bandwidth (KB)",
            &out_bw,
            25,
        )
    );

    // Maxima table: the numbers the paper quotes in the legend.
    let mut t = Table::new(
        "Per-node bandwidth maxima",
        &["config", "max in (KB)", "max out (KB)"],
    );
    for r in &results {
        let max_in = r.node_traffic.iter().map(|x| x.bytes_in).max().unwrap_or(0);
        let max_out = r
            .node_traffic
            .iter()
            .map(|x| x.bytes_out)
            .max()
            .unwrap_or(0);
        t.row(&[
            r.label.clone(),
            format!("{}", max_in / 1024),
            format!("{}", max_out / 1024),
        ]);
    }
    println!("{t}");
    print_summary(&results);
}
