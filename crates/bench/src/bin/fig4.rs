//! Figure 4 — load distribution on nodes: nodes ranked by load (stored
//! subscriptions), first 100 shown. Larger bases concentrate load; the
//! dynamic subscription-migration mechanism cuts the maxima.

use hypersub_bench::{fig2_configs, is_quick, print_summary, run_experiment};
use hypersub_stats::Table;
use rayon::prelude::*;

fn main() {
    let configs = fig2_configs(is_quick());
    let results: Vec<_> = configs.par_iter().map(run_experiment).collect();

    let ranked: Vec<Vec<u64>> = results
        .iter()
        .map(|r| {
            let mut v = r.node_loads.clone();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        })
        .collect();

    let mut header: Vec<String> = vec!["rank".to_string()];
    for (r, loads) in results.iter().zip(&ranked) {
        header.push(format!(
            "{} (max {})",
            r.label,
            loads.first().copied().unwrap_or(0)
        ));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Fig 4: Load on nodes ranked by load (first 100 nodes, # stored subscriptions)",
        &header_refs,
    );
    for rank in 0..100 {
        // Sample every rank up to 20, then every 5th.
        if rank > 20 && rank % 5 != 0 {
            continue;
        }
        let mut row = vec![format!("{rank}")];
        for loads in &ranked {
            row.push(loads.get(rank).copied().unwrap_or(0).to_string());
        }
        t.row(&row);
    }
    println!("{t}");

    let mut t = Table::new(
        "Load statistics",
        &["config", "max", "p99", "mean", "migrated subs exist"],
    );
    for (r, loads) in results.iter().zip(&ranked) {
        let n = loads.len().max(1);
        let mean: f64 = loads.iter().sum::<u64>() as f64 / n as f64;
        t.row(&[
            r.label.clone(),
            loads.first().copied().unwrap_or(0).to_string(),
            loads[(n / 100).min(n - 1)].to_string(),
            format!("{mean:.1}"),
            (r.label.contains(", LB")).to_string(),
        ]);
    }
    println!("{t}");
    print_summary(&results);
}
