//! Figure 5 — performance versus network size (1,000–6,000 nodes):
//! (a) average % matched subscriptions, (b) max hops, (c) max latency,
//! (d) bandwidth cost per event; base 2 / level 20, with and without LB.

use hypersub_bench::{is_quick, run_experiment, ExperimentConfig};
use hypersub_core::config::SystemConfig;
use hypersub_stats::Table;
use rayon::prelude::*;

fn main() {
    let quick = is_quick();
    let sizes: Vec<usize> = if quick {
        vec![250, 500, 1000]
    } else {
        vec![1000, 2000, 3000, 4000, 5000, 6000]
    };
    let mut configs = Vec::new();
    for &n in &sizes {
        for (lb, system) in [
            (false, SystemConfig::default()),
            (true, SystemConfig::default().with_lb()),
        ] {
            let mut c = ExperimentConfig::paper_default()
                .with_label(&format!("n={n} {}", if lb { "LB" } else { "no LB" }));
            c.nodes = n;
            c.system = system;
            if quick {
                c.spec.events = 500;
            }
            // The scaling *trend* stabilizes with a few thousand events;
            // the full 20,000 (several CPU-hours across 12 runs) can be
            // requested explicitly.
            if let Ok(ev) = std::env::var("HYPERSUB_FIG5_EVENTS") {
                c.spec.events = ev.parse().expect("HYPERSUB_FIG5_EVENTS must be a number");
            } else if !quick {
                c.spec.events = 2_000;
            }
            configs.push((n, lb, c));
        }
    }
    let results: Vec<_> = configs
        .par_iter()
        .map(|(n, lb, c)| (*n, *lb, run_experiment(c)))
        .collect();

    let mut t = Table::new(
        "Fig 5: Performance vs network size (base 2, level 20)",
        &[
            "size (x10^3)",
            "LB",
            "avg matched %",
            "avg matched subs/event",
            "avg max hops",
            "p99 max hops",
            "avg max latency (ms)",
            "avg bw/event (KB)",
            "complete %",
        ],
    );
    for (n, lb, r) in &results {
        let avg_matched_abs: f64 = if r.events.is_empty() {
            0.0
        } else {
            r.events.iter().map(|e| e.expected as f64).sum::<f64>() / r.events.len() as f64
        };
        let mut hops: Vec<u32> = r.events.iter().map(|e| e.max_hops).collect();
        hops.sort_unstable();
        let p99 = hops
            .get(hops.len().saturating_sub(1 + hops.len() / 100))
            .copied()
            .unwrap_or(0);
        t.row(&[
            format!("{:.2}", *n as f64 / 1000.0),
            lb.to_string(),
            format!("{:.3}", r.avg_matched_pct()),
            format!("{avg_matched_abs:.1}"),
            format!("{:.1}", r.avg_max_hops()),
            p99.to_string(),
            format!("{:.0}", r.avg_max_latency_ms()),
            format!("{:.1}", r.avg_bandwidth_kb()),
            format!("{:.1}", 100.0 * r.delivery_completeness()),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape (paper): matched % declines slightly with size while absolute\n\
         matched count grows; max hops/latency/bandwidth grow modestly (~log N) from\n\
         1k to 6k nodes; LB adds small overhead to each."
    );
}
