//! Hot-path perf harness: events/sec and wall time on a pinned workload.
//!
//! Runs one fixed, fully seeded publish/subscribe scenario, times the
//! setup (ring build + subscription install) and the delivery phase
//! separately, and records the run into `BENCH_hotpath.json` keyed by
//! `--label`. The file accumulates one entry per label, so the repo can
//! commit a `baseline` entry and an `after` entry from the same PR and
//! every future PR appends its own label to extend the trajectory.
//!
//! The run digest (delivery trace + network counters, see
//! `hypersub_core::digest`) is recorded alongside the timings: two
//! entries measuring the same workload MUST agree on the digest, which
//! proves an optimization changed only speed, never behavior.
//!
//! Usage: `hotpath [--quick] [--label NAME] [--out PATH] [--report PATH]
//! [--index linear|grid|hybrid]`.
//!
//! `--index` selects the matching-index structure repositories build
//! (the index-shape axis; default `hybrid`). Every mode produces the
//! same digest — only timings, candidate-scan counts and index memory
//! move.
//!
//! `--report PATH` additionally runs the workload with a flight recorder
//! installed and writes the full run [`Report`](hypersub_core::report)
//! as JSON — the artifact `report diff` compares in CI. Recording is
//! digest-neutral, so the reported digest equals the timed run's.
//!
//! Checkpoint/restore mode (the split-run equivalence harness):
//!
//! * `hotpath [--quick] --checkpoint-at SECS --out SNAP` runs the pinned
//!   workload until simulated time `SECS` seconds, then writes a
//!   whole-network snapshot to `SNAP` and exits (no bench JSON).
//! * `hotpath --resume SNAP [--expect-digest 0xHEX] [--report PATH]`
//!   restores `SNAP` in a fresh process, runs to completion, and prints
//!   the run digest. With `--expect-digest` it exits nonzero unless the
//!   digest matches — CI uses this to prove the split run reproduces the
//!   straight-through digest bit-for-bit.

use hypersub_core::config::SystemConfig;
use hypersub_core::index::{IndexDiag, IndexMode};
use hypersub_core::model::Registry;
use hypersub_core::sim::{Network, SnapshotConfig, TopologyKind};
use hypersub_simnet::SimTime;
use hypersub_workload::{WorkloadGen, WorkloadSpec};
use std::time::Instant;

/// The pinned workload: network size, events, subscriptions and seed are
/// all fixed so events/sec is comparable across PRs.
struct Pinned {
    nodes: usize,
    subs_per_node: usize,
    events: usize,
    seed: u64,
}

impl Pinned {
    fn full() -> Self {
        Self {
            nodes: 1024,
            subs_per_node: 5,
            events: 3000,
            seed: 0xbe9c_2007,
        }
    }

    fn quick() -> Self {
        Self {
            nodes: 192,
            subs_per_node: 4,
            events: 600,
            seed: 0xbe9c_2007,
        }
    }
}

struct RunOutcome {
    setup_ms: f64,
    publish_ms: f64,
    sim_events: u64,
    msgs: u64,
    digest: u64,
    diag: IndexDiag,
}

/// Trace window for `--report` runs: big enough to keep the interesting
/// tail, small enough to stay cheap.
const REPORT_TRACE_CAPACITY: usize = 1 << 14;

fn run_pinned(p: &Pinned, record: bool, index: IndexMode) -> (RunOutcome, Network) {
    let spec = WorkloadSpec::paper_table1();
    let registry = Registry::new(vec![spec.scheme_def(0)]);
    let setup_start = Instant::now();
    let mut builder = Network::builder(p.nodes)
        .registry(registry)
        .config(SystemConfig::default().with_index_mode(index))
        .topology(TopologyKind::KingLike(SimTime::from_millis(180)))
        .seed(p.seed);
    if record {
        builder = builder.flight_recorder(REPORT_TRACE_CAPACITY);
    }
    let mut net = builder.build().expect("valid pinned configuration");
    let mut gen = WorkloadGen::new(spec, p.seed ^ 0xabcd);
    for node in 0..p.nodes {
        for _ in 0..p.subs_per_node {
            net.subscribe(node, 0, gen.subscription());
        }
    }
    net.run_to_quiescence();
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..p.events {
        let node = gen.random_node(p.nodes);
        net.schedule_publish(t, node, 0, gen.event_point())
            .expect("publisher index in range");
        t += gen.interarrival();
    }
    let steps_before = net.steps();
    let publish_start = Instant::now();
    net.run_to_quiescence();
    let publish_ms = publish_start.elapsed().as_secs_f64() * 1e3;
    let sim_events = net.steps() - steps_before;

    let mut diag = IndexDiag::default();
    for n in net.nodes() {
        diag.merge(&n.index_diag());
    }
    let outcome = RunOutcome {
        setup_ms,
        publish_ms,
        sim_events,
        msgs: net.net().total_msgs(),
        digest: net.run_digest(),
        diag,
    };
    (outcome, net)
}

/// Checkpoint mode: run the pinned workload (setup + full publish
/// schedule, exactly as [`run_pinned`] would) on a snapshot-enabled
/// network, stop at simulated time `at`, and return the sealed snapshot
/// bytes. The schedule is installed up front, so the snapshot carries
/// every not-yet-delivered publish and the resumed process needs no
/// workload generator at all.
fn run_checkpoint(p: &Pinned, at: SimTime) -> Vec<u8> {
    let spec = WorkloadSpec::paper_table1();
    let registry = Registry::new(vec![spec.scheme_def(0)]);
    let mut net = Network::builder(p.nodes)
        .registry(registry)
        .config(SystemConfig::default())
        .topology(TopologyKind::KingLike(SimTime::from_millis(180)))
        .seed(p.seed)
        .snapshots(SnapshotConfig::enabled())
        .build()
        .expect("valid pinned configuration");
    let mut gen = WorkloadGen::new(spec, p.seed ^ 0xabcd);
    for node in 0..p.nodes {
        for _ in 0..p.subs_per_node {
            net.subscribe(node, 0, gen.subscription());
        }
    }
    net.run_to_quiescence();

    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..p.events {
        let node = gen.random_node(p.nodes);
        net.schedule_publish(t, node, 0, gen.event_point())
            .expect("publisher index in range");
        t += gen.interarrival();
    }
    net.run_until(at);
    eprintln!(
        "hotpath checkpoint: paused at t={} us after {} sim events",
        net.time().as_micros(),
        net.steps()
    );
    net.snapshot().expect("snapshot a snapshot-enabled network")
}

/// Resume mode: restore a snapshot written by [`run_checkpoint`] and run
/// the remaining schedule to quiescence. Returns the finished network;
/// its digest must equal the straight-through run's.
fn run_resume(bytes: &[u8]) -> Network {
    let mut net = Network::restore(bytes).expect("restore snapshot");
    net.run_to_quiescence();
    net
}

/// One run entry, serialized as a single JSON line so the merge logic
/// below can treat the file line-by-line without a JSON parser.
fn entry_json(label: &str, mode: &str, index: IndexMode, p: &Pinned, o: &RunOutcome) -> String {
    let events_per_sec = o.sim_events as f64 / (o.publish_ms / 1e3);
    let dup = if o.diag.entries == 0 {
        0.0
    } else {
        o.diag.registrations as f64 / o.diag.entries as f64
    };
    format!(
        "    {{ \"label\": \"{label}\", \"mode\": \"{mode}\", \"index\": \"{}\", \"nodes\": {}, \
         \"subs_per_node\": {}, \"published_events\": {}, \"seed\": {}, \"setup_ms\": {:.1}, \
         \"publish_ms\": {:.1}, \"sim_events\": {}, \"events_per_sec\": {:.0}, \"total_msgs\": {}, \
         \"index_registrations\": {}, \"index_entries\": {}, \"index_bytes\": {}, \
         \"covering_collapsed\": {}, \"candidates_scanned\": {}, \"duplication_factor\": {:.2}, \
         \"digest\": \"{:#018x}\" }}",
        index.name(),
        p.nodes,
        p.subs_per_node,
        p.events,
        p.seed,
        o.setup_ms,
        o.publish_ms,
        o.sim_events,
        events_per_sec,
        o.msgs,
        o.diag.registrations,
        o.diag.entries,
        o.diag.bytes,
        o.diag.covering_collapsed,
        o.diag.candidates_scanned,
        dup,
        o.digest,
    )
}

/// Pulls `"field": <number>` out of a single-line run entry.
fn extract_num(line: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\": ");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', ' ', '}']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_str<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let key = format!("\"{field}\": \"");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = flag("--label").unwrap_or_else(|| "run".to_string());
    let out = flag("--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let report_path = flag("--report");
    let index = match flag("--index") {
        Some(s) => IndexMode::parse(&s)
            .unwrap_or_else(|| panic!("--index takes linear|grid|hybrid, got {s:?}")),
        None => IndexMode::default(),
    };
    let mode = if quick { "quick" } else { "full" };
    let p = if quick {
        Pinned::quick()
    } else {
        Pinned::full()
    };

    if let Some(path) = flag("--resume") {
        let bytes = std::fs::read(&path).expect("read snapshot file");
        let net = run_resume(&bytes);
        let digest = net.run_digest();
        eprintln!(
            "hotpath resume: finished at t={} us, {} sim events, digest {digest:#018x}",
            net.time().as_micros(),
            net.steps()
        );
        if let Some(rpath) = &report_path {
            std::fs::write(rpath, net.report().to_json()).expect("write run report");
            eprintln!("hotpath resume: run report written to {rpath}");
        }
        println!("{digest:#018x}");
        if let Some(expect) = flag("--expect-digest") {
            let want = u64::from_str_radix(expect.trim_start_matches("0x"), 16)
                .expect("--expect-digest takes a hex digest");
            if digest != want {
                eprintln!(
                    "hotpath resume: DIGEST DRIFT — expected {want:#018x}, got {digest:#018x}"
                );
                std::process::exit(1);
            }
            eprintln!("hotpath resume: digest matches expected {want:#018x}");
        }
        return;
    }

    if let Some(at) = flag("--checkpoint-at") {
        let secs: f64 = at.parse().expect("--checkpoint-at takes seconds");
        eprintln!(
            "hotpath checkpoint [{mode}]: {} nodes, {} events, seed {:#x}, pausing at t={secs}s",
            p.nodes, p.events, p.seed
        );
        let bytes = run_checkpoint(&p, SimTime::from_micros((secs * 1e6) as u64));
        std::fs::write(&out, &bytes).expect("write snapshot file");
        println!("wrote {out} ({} bytes)", bytes.len());
        return;
    }

    eprintln!(
        "hotpath [{mode}]: {} nodes, {} subs/node, {} events, seed {:#x}, index {}",
        p.nodes,
        p.subs_per_node,
        p.events,
        p.seed,
        index.name()
    );
    let (o, net) = run_pinned(&p, report_path.is_some(), index);
    if let Some(path) = &report_path {
        std::fs::write(path, net.report().to_json()).expect("write run report");
        eprintln!("hotpath [{mode}]: run report written to {path}");
    }
    drop(net);
    let line = entry_json(&label, mode, index, &p, &o);
    eprintln!(
        "hotpath [{mode}] {label}: setup {:.1} ms, publish {:.1} ms, {} sim events \
         ({:.0} events/sec), digest {:#018x}",
        o.setup_ms,
        o.publish_ms,
        o.sim_events,
        o.sim_events as f64 / (o.publish_ms / 1e3),
        o.digest
    );

    // Merge with prior entries of other labels *in the same mode*; a rerun
    // of an existing (label, mode) replaces it.
    let mut runs: Vec<String> = std::fs::read_to_string(&out)
        .map(|old| {
            old.lines()
                .filter(|l| l.trim_start().starts_with("{ \"label\""))
                .filter(|l| {
                    extract_str(l, "label") != Some(&label) || extract_str(l, "mode") != Some(mode)
                })
                .map(|l| l.trim_end().trim_end_matches(',').to_string())
                .collect()
        })
        .unwrap_or_default();
    runs.push(line);

    let find = |label: &str| {
        runs.iter().find(|l| {
            extract_str(l, "label") == Some(label) && extract_str(l, "mode") == Some("full")
        })
    };
    let speedup = |base: &str, new: &str| -> Option<f64> {
        let (b, a) = (find(base)?, find(new)?);
        let bv = extract_num(b, "events_per_sec")?;
        let av = extract_num(a, "events_per_sec")?;
        Some(av / bv.max(1e-9))
    };
    // Every full-mode row measures the identical workload, so all their
    // digests must agree regardless of label or index shape.
    let full_digests: Vec<&str> = runs
        .iter()
        .filter(|l| extract_str(l, "mode") == Some("full"))
        .filter_map(|l| extract_str(l, "digest"))
        .collect();
    let digests_match = full_digests.windows(2).all(|w| w[0] == w[1]);
    let mut tail = match speedup("baseline", "after") {
        Some(s) => format!("\"speedup_after_vs_baseline\": {s:.2}"),
        None => "\"speedup_after_vs_baseline\": null".to_string(),
    };
    // The index pair: `index-grid` re-measures the grid structure and
    // `index` the hybrid on the *same* machine, so their ratio is free
    // of the cross-machine drift the older baseline/after rows carry.
    if let Some(s) = speedup("index-grid", "index") {
        tail.push_str(&format!(", \"speedup_index_vs_grid\": {s:.2}"));
    }
    tail.push_str(&format!(", \"digests_match\": {digests_match}"));
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"runs\": [\n{}\n  ],\n  {}\n}}\n",
        runs.join(",\n"),
        tail
    );
    std::fs::write(&out, json).expect("write bench output");
    println!("wrote {out}");
}
