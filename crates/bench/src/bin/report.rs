//! Run-report inspector: summarize one report, or diff two.
//!
//! Reports are the JSON documents `hotpath --report PATH` (and
//! `Network::report()` generally) produce — see `hypersub_core::report`.
//!
//! Usage:
//!   report summarize <FILE>
//!   report diff <BASELINE> <CANDIDATE>
//!
//! `diff` prints per-field deltas and exits nonzero when the two runs'
//! digests differ, when any `repair.*` counter drifts (a counter
//! absent from a report counts as zero, so baselines predating the
//! self-healing plane remain comparable), or when the *candidate*'s
//! matching-index duplication factor (`index.registrations` per
//! `index.entries`) exceeds 4× — the CI gates against behavioral drift
//! and index fan-out regressions on the pinned workload.
//!
//! Baselines written before the index-counter rename (`index.grid_*`)
//! are read through a fallback, so old pinned reports stay diffable; a
//! rename is reported as a note, never a failure.

use hypersub_core::report::Report;
use std::collections::BTreeSet;
use std::process::ExitCode;

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Report::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn summarize(path: &str, r: &Report) {
    println!("report {path}");
    println!("  nodes          {}", r.nodes);
    println!("  sim time       {:.3} s", r.time_us as f64 / 1e6);
    println!("  sim steps      {}", r.steps);
    println!("  digest         {:#018x}", r.digest);
    let e = &r.events;
    println!(
        "  events         {} published, {}/{} delivered, {} dup, max {} hops / {:.1} ms",
        e.published,
        e.delivered,
        e.expected,
        e.duplicates,
        e.max_hops,
        e.max_latency_us as f64 / 1e3
    );
    let n = &r.net;
    println!(
        "  net            {} msgs, {} bytes, drops {} dead / {} loss / {} partition, {} dup",
        n.total_msgs, n.total_bytes, n.dropped, n.fault_dropped, n.partition_dropped, n.duplicated
    );
    for (name, c) in &r.counters {
        println!(
            "  counter        {name:<28} total {:>8}  max/node {}",
            c.total, c.max_node
        );
    }
    for (name, h) in &r.histograms {
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum as f64 / h.count as f64
        };
        println!(
            "  histogram      {name:<28} n {:>8}  mean {mean:.1}  max {}",
            h.count, h.max
        );
    }
    match &r.trace {
        None => println!("  trace          (recording disabled)"),
        Some(t) => {
            println!(
                "  trace          {} recorded, {} evicted (capacity {})",
                t.recorded, t.evicted, t.capacity
            );
            for (kind, count) in &t.kinds {
                println!("    {kind:<20} {count}");
            }
        }
    }
}

fn delta_line(name: &str, a: u64, b: u64) {
    if a == b {
        println!("  {name:<28} {a:>12}  (unchanged)");
    } else {
        let pct = if a == 0 {
            f64::INFINITY
        } else {
            100.0 * (b as f64 - a as f64) / a as f64
        };
        println!("  {name:<28} {a:>12} -> {b:<12} ({pct:+.1}%)");
    }
}

fn counter_total(r: &Report, name: &str) -> u64 {
    r.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c.total)
        .unwrap_or(0)
}

/// A counter's namespace: the prefix before the first dot (`retry` for
/// `retry.attempts`).
fn namespace(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// All counter namespaces a report carries.
fn namespaces(r: &Report) -> BTreeSet<&str> {
    r.counters.iter().map(|(n, _)| namespace(n)).collect()
}

fn diff(pa: &str, a: &Report, pb: &str, b: &Report) -> ExitCode {
    println!("diff {pa} -> {pb}");
    delta_line("nodes", a.nodes, b.nodes);
    delta_line("time_us", a.time_us, b.time_us);
    delta_line("steps", a.steps, b.steps);
    delta_line("events.published", a.events.published, b.events.published);
    delta_line("events.delivered", a.events.delivered, b.events.delivered);
    delta_line(
        "events.duplicates",
        a.events.duplicates,
        b.events.duplicates,
    );
    delta_line("net.total_msgs", a.net.total_msgs, b.net.total_msgs);
    delta_line("net.total_bytes", a.net.total_bytes, b.net.total_bytes);
    delta_line("net.dropped", a.net.dropped, b.net.dropped);
    // Reports from different systems legitimately carry different
    // counter namespaces (a baseline's `load.*` vs HyperSub's
    // `index.*`). A counter whose whole namespace is absent from the
    // other side is a note, never a zero-delta comparison — only
    // counters in shared namespaces are diffed numerically (and there an
    // individually missing counter still counts as zero).
    let ns_a = namespaces(a);
    let ns_b = namespaces(b);
    for (name, ca) in &a.counters {
        if !ns_b.contains(namespace(name)) {
            println!(
                "  {name:<28} (only in {pa}: no `{}.*` counters in {pb})",
                namespace(name)
            );
            continue;
        }
        let cb = b
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.total)
            .unwrap_or(0);
        delta_line(name, ca.total, cb);
    }
    for (name, _) in &b.counters {
        if !a.counters.iter().any(|(n, _)| n == name) {
            if ns_a.contains(namespace(name)) {
                println!("  {name:<28} (only in {pb})");
            } else {
                println!(
                    "  {name:<28} (only in {pb}: no `{}.*` counters in {pa})",
                    namespace(name)
                );
            }
        }
    }
    // Self-healing activity on a pinned workload must be reproducible:
    // any repair.* total drifting between baseline and candidate is a
    // build failure, digest match or not — but only when both reports
    // carry the namespace. A system without a self-healing plane is a
    // different system, not a regression.
    let repair_comparable = ns_a.contains("repair") == ns_b.contains("repair");
    if !repair_comparable {
        let (with, without) = if ns_a.contains("repair") {
            (pa, pb)
        } else {
            (pb, pa)
        };
        println!(
            "  note: repair.* drift gate skipped — {with} has a \
             self-healing plane, {without} does not"
        );
    }
    let mut repair: Vec<&str> = a
        .counters
        .iter()
        .chain(b.counters.iter())
        .map(|(n, _)| n.as_str())
        .filter(|n| n.starts_with("repair."))
        .collect();
    repair.sort_unstable();
    repair.dedup();
    let drifted: Vec<&str> = if repair_comparable {
        repair
            .into_iter()
            .filter(|n| counter_total(a, n) != counter_total(b, n))
            .collect()
    } else {
        Vec::new()
    };
    // The matching index's duplication factor (registrations per indexed
    // entry) tracks how many times the average subscription is fanned
    // into the structure. It moves only when the index geometry or the
    // push-down logic changes, so >10% relative drift on the same
    // workload is worth a warning even when digests match (the factor is
    // derived state, not traffic); a candidate above the 4× hard cap is
    // a failure — the duplication tax this index exists to kill.
    //
    // Reports written before the rename carry `index.grid_*` counters
    // instead; read them through the fallback so old pinned baselines
    // stay comparable, and say so rather than pretending they indexed
    // nothing.
    let factor = |r: &Report| {
        let (entries, regs) = match counter_total(r, "index.entries") {
            0 => (
                counter_total(r, "index.grid_entries"),
                counter_total(r, "index.grid_registrations"),
            ),
            e => (e, counter_total(r, "index.registrations")),
        };
        (entries > 0).then(|| regs as f64 / entries as f64)
    };
    let renamed = |r: &Report| {
        counter_total(r, "index.entries") == 0 && counter_total(r, "index.grid_entries") > 0
    };
    if renamed(a) != renamed(b) {
        let (old, path) = if renamed(a) { (pa, pb) } else { (pb, pa) };
        println!(
            "  note: {old} predates the index.* counter rename (grid_* \
             fallback applied); {path} uses the current names"
        );
    }
    if let (Some(fa), Some(fb)) = (factor(a), factor(b)) {
        let drift = (fb - fa).abs() / fa;
        if drift > 0.10 {
            eprintln!(
                "report diff: WARNING — index duplication factor drifted \
                 {fa:.2} -> {fb:.2} ({:+.1}%)",
                100.0 * (fb - fa) / fa
            );
        }
    }
    let mut failed = false;
    // Hard cap on the candidate's fan-out: more than 4 registrations per
    // indexed entry means the duplication tax is back.
    if let Some(fb) = factor(b) {
        if fb > 4.0 {
            eprintln!(
                "report diff: index duplication factor {fb:.2} in {pb} \
                 exceeds the 4x registrations-per-entry cap"
            );
            failed = true;
        }
    }
    if !drifted.is_empty() {
        eprintln!(
            "report diff: self-healing drift — counters changed: {}",
            drifted.join(", ")
        );
        failed = true;
    }
    if a.digest == b.digest {
        println!("  digest                       {:#018x}  MATCH", a.digest);
    } else {
        println!(
            "  digest                       {:#018x} -> {:#018x}  MISMATCH",
            a.digest, b.digest
        );
        eprintln!("report diff: behavioral drift — run digests differ");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: report summarize <FILE> | report diff <BASELINE> <CANDIDATE>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("summarize") => match args.get(2) {
            Some(path) => match load(path) {
                Ok(r) => {
                    summarize(path, &r);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("report: {e}");
                    ExitCode::FAILURE
                }
            },
            None => usage(),
        },
        Some("diff") => match (args.get(2), args.get(3)) {
            (Some(pa), Some(pb)) => match (load(pa), load(pb)) {
                (Ok(a), Ok(b)) => diff(pa, &a, pb, &b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("report: {e}");
                    ExitCode::FAILURE
                }
            },
            _ => usage(),
        },
        _ => usage(),
    }
}
