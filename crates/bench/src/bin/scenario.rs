//! Adversity scenario runner: executes the named scenarios from
//! `hypersub-scenario` and writes machine-readable verdict JSONs.
//!
//! Usage:
//!
//! * `scenario list [--names]` — print the catalog (name, defense,
//!   designated invariant, description); `--names` prints bare names
//!   only, one per line, for shell loops.
//! * `scenario run --scenario NAME | --all [--seed S] [--quick]
//!   [--no-defense] [--out-dir DIR] [--stamp-dir DIR]` — run scenarios
//!   and write `SCENARIO_<name>.json` verdict files into `--out-dir`
//!   (default `results/`).
//!
//! With `--stamp-dir`, `churn_soak` runs **one checkpointed segment per
//! invocation**: segment `k`'s snapshot is stamped to
//! `churn_soak.seg<k>.bin` and the next invocation resumes from it, so a
//! CI pipeline (or `run_experiments.sh`) advances the soak across
//! separate process runs while producing the same digest and verdicts as
//! an uninterrupted run. Without `--stamp-dir` every scenario (including
//! the soak, via in-process checkpoint/restore) completes in one call.
//!
//! Exit status: 0 when every invariant of every run passed, 2 when any
//! verdict failed, 1 on usage errors. `--no-defense` runs are expected
//! to fail their designated invariant — the harness still exits 2, which
//! is the point: a disabled defense must be *visible*.

use hypersub_scenario::{RunConfig, Scenario, ScenarioOutcome, SoakStep, Tier};
use std::path::{Path, PathBuf};

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn list(names_only: bool) {
    for s in Scenario::ALL {
        if names_only {
            println!("{}", s.name());
        } else {
            println!(
                "{:22} defense: {:38} designated: {}\n{:22} {}",
                s.name(),
                s.defense(),
                s.designated_invariant(),
                "",
                s.description()
            );
        }
    }
}

/// Runs `churn_soak` one segment per invocation, stamping snapshots
/// under `stamps`. Returns the outcome only when the final segment ran.
fn run_soak_stamped(cfg: &RunConfig, stamps: &Path) -> Option<ScenarioOutcome> {
    std::fs::create_dir_all(stamps).expect("create stamp dir");
    let seg_path = |k: usize| stamps.join(format!("churn_soak.seg{k}.bin"));
    let segments = hypersub_scenario::soak_segment_count(cfg.tier);
    // Resume after the newest stamp on disk.
    let next = (0..segments).take_while(|&k| seg_path(k).exists()).count();
    if next >= segments {
        // A finished soak restarts from scratch on the next invocation.
        for k in 0..segments {
            let _ = std::fs::remove_file(seg_path(k));
        }
        return run_soak_stamped(cfg, stamps);
    }
    let resume = if next > 0 {
        Some(std::fs::read(seg_path(next - 1)).expect("read soak checkpoint"))
    } else {
        None
    };
    match hypersub_scenario::soak_segment(cfg, next, resume.as_deref()).expect("soak segment") {
        SoakStep::Checkpoint(bytes) => {
            std::fs::write(seg_path(next), bytes).expect("write soak checkpoint");
            println!(
                "churn_soak: segment {}/{} checkpointed (resumable)",
                next + 1,
                segments
            );
            None
        }
        SoakStep::Done(outcome) => {
            // Clear the stamps so the next pipeline run starts fresh.
            for k in 0..segments {
                let _ = std::fs::remove_file(seg_path(k));
            }
            Some(*outcome)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(flag(&args, "--names")),
        Some("run") => {
            let tier = if flag(&args, "--quick") {
                Tier::Quick
            } else {
                Tier::Full
            };
            let seed = opt(&args, "--seed")
                .map(|s| s.parse().expect("--seed takes an integer"))
                .unwrap_or(7);
            let cfg = RunConfig {
                tier,
                seed,
                defense: !flag(&args, "--no-defense"),
            };
            let out_dir = PathBuf::from(opt(&args, "--out-dir").unwrap_or("results".into()));
            let stamp_dir = opt(&args, "--stamp-dir").map(PathBuf::from);

            let scenarios: Vec<Scenario> = if flag(&args, "--all") {
                Scenario::ALL.to_vec()
            } else {
                let name = opt(&args, "--scenario").unwrap_or_else(|| {
                    eprintln!("usage: scenario run --scenario NAME | --all");
                    std::process::exit(1);
                });
                vec![Scenario::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown scenario {name:?}; try `scenario list`");
                    std::process::exit(1);
                })]
            };

            std::fs::create_dir_all(&out_dir).expect("create output dir");
            let mut all_passed = true;
            for s in scenarios {
                let outcome = match (&stamp_dir, s) {
                    (Some(stamps), Scenario::ChurnSoak) => match run_soak_stamped(&cfg, stamps) {
                        Some(o) => o,
                        None => continue, // mid-soak segment: no verdict yet
                    },
                    _ => s.run(&cfg).expect("scenario run"),
                };
                let path = out_dir.join(format!("SCENARIO_{}.json", outcome.scenario));
                std::fs::write(&path, outcome.to_json()).expect("write verdict JSON");
                let status = if outcome.passed() { "PASS" } else { "FAIL" };
                println!(
                    "{:22} {} seed={} tier={} defense={} digest={:#018x} -> {}",
                    outcome.scenario,
                    status,
                    outcome.seed,
                    outcome.tier.as_str(),
                    outcome.defense,
                    outcome.digest,
                    path.display()
                );
                for v in &outcome.verdicts {
                    println!(
                        "    [{}] {:28} {}",
                        if v.passed { "ok" } else { "FAIL" },
                        v.invariant,
                        v.details
                    );
                }
                all_passed &= outcome.passed();
            }
            if !all_passed {
                std::process::exit(2);
            }
        }
        _ => {
            eprintln!("usage: scenario list [--names] | scenario run --scenario NAME | --all");
            std::process::exit(1);
        }
    }
}
