//! Table 1 — "Publish/subscribe scheme and properties".
//!
//! Prints the workload specification (the reproduction's stand-in for the
//! paper's OCR-garbled numeric cells) plus measured properties of the
//! generated streams, so the calibration is auditable.

use hypersub_core::model::Event;
use hypersub_stats::Table;
use hypersub_workload::{WorkloadGen, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::paper_table1();
    let mut t = Table::new(
        "Table 1: Publish/subscribe scheme and properties",
        &[
            "Dim",
            "Min",
            "Max",
            "Data skew factor",
            "Data hotspot",
            "Size skew factor",
            "Size hotspot",
        ],
    );
    for (i, a) in spec.attrs.iter().enumerate() {
        t.row(&[
            format!("{} ({})", i, a.name),
            format!("{}", a.min),
            format!("{}", a.max),
            format!("{}", a.data_skew),
            format!("{:.0}%", a.data_hotspot * 100.0),
            format!("{}", a.size_skew),
            format!("{:.0}%", a.size_hotspot * 100.0),
        ]);
    }
    println!("{t}");

    let mut t = Table::new("Workload scale parameters", &["parameter", "value"]);
    t.row(&[
        "subscriptions per node".into(),
        spec.subs_per_node.to_string(),
    ]);
    t.row(&["events".into(), spec.events.to_string()]);
    t.row(&[
        "mean event inter-arrival".into(),
        format!("{}", spec.mean_interarrival),
    ]);
    println!("{t}");

    // Measured properties of the streams (ground-truth calibration).
    let mut gen = WorkloadGen::new(spec.clone(), 7);
    let subs: Vec<_> = (0..10_000).map(|_| gen.subscription()).collect();
    let events: Vec<Event> = (0..2_000)
        .map(|i| Event {
            id: i,
            point: gen.event_point(),
        })
        .collect();
    let mut matched_total = 0usize;
    for e in &events {
        matched_total += subs.iter().filter(|s| s.matches(e)).count();
    }
    let avg_matched = 100.0 * matched_total as f64 / (events.len() * subs.len()) as f64;
    let mut avg_size_frac = vec![0.0f64; spec.dims()];
    for s in &subs {
        for (d, a) in spec.attrs.iter().enumerate() {
            avg_size_frac[d] += (s.rect.hi[d] - s.rect.lo[d]) / (a.max - a.min);
        }
    }
    let mut t = Table::new("Measured workload properties", &["property", "value"]);
    t.row(&[
        "avg matched subscriptions per event".into(),
        format!("{avg_matched:.3}% (paper Fig 2a: 0.834%)"),
    ]);
    for (d, frac) in avg_size_frac.iter().enumerate() {
        t.row(&[
            format!("avg range size, dim {d}"),
            format!("{:.2}% of domain", 100.0 * frac / subs.len() as f64),
        ]);
    }
    println!("{t}");
}
