//! Table 2 — "Simulated Networks and Avg RTTs".
//!
//! The paper derives networks of 1,000–6,000 nodes from the King dataset
//! and reports each network's average round-trip time. We generate the
//! same sizes from the King-like topology model and report measured mean
//! RTTs (all calibrated to the ~180 ms King average).

use hypersub_simnet::{KingLikeTopology, SimTime, Topology};
use hypersub_stats::Table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[1000, 2000]
    } else {
        &[1000, 2000, 3000, 4000, 5000, 6000]
    };
    let mut t = Table::new(
        "Table 2: Simulated networks and average RTTs",
        &["Size (x10^3)", "Avg RTT (ms)"],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let topo = KingLikeTopology::generate(n, SimTime::from_millis(180), 0x2007 + i as u64);
        let rtt = topo.avg_rtt_sampled(100_000, 99);
        t.row(&[
            format!("{}", n / 1000),
            format!("{:.1}", rtt.as_millis_f64()),
        ]);
    }
    println!("{t}");
    println!("(King-dataset substitute: synthetic 5-D embedding with heavy-tailed jitter,\n calibrated to the dataset's published ~180 ms mean RTT; see DESIGN.md.)");
}
