//! Experiment harness regenerating the paper's evaluation (§5).
//!
//! Every table and figure has a binary in `src/bin/`:
//!
//! | binary             | paper artifact                                   |
//! |--------------------|--------------------------------------------------|
//! | `table1`           | Table 1 — pub/sub scheme & workload properties   |
//! | `table2`           | Table 2 — simulated networks & average RTTs      |
//! | `fig2`             | Fig 2a–d — event CDFs (matched %, hops, latency, bandwidth) |
//! | `fig3`             | Fig 3a–b — node CDFs (in/out bandwidth)          |
//! | `fig4`             | Fig 4 — load on the 100 most loaded nodes        |
//! | `fig5`             | Fig 5a–d — scaling with network size             |
//! | `ablation_base`    | zone base β sweep                                |
//! | `ablation_rotation`| zone-mapping rotation on/off, multi-scheme       |
//! | `ablation_subscheme`| §3.5 sub-scheme decomposition on/off            |
//! | `baseline_compare` | HyperSub vs Ferry-style vs attribute-ring        |
//!
//! All binaries accept `--quick` (scaled-down run for smoke testing) and
//! print diffable ASCII tables via `hypersub-stats`.

use hypersub_core::config::SystemConfig;
use hypersub_core::metrics::EventStats;
use hypersub_core::model::Registry;
use hypersub_core::sim::{Network, TopologyKind};
use hypersub_simnet::stats::NodeTraffic;
use hypersub_simnet::SimTime;
use hypersub_stats::{Cdf, Table};
use hypersub_workload::{WorkloadGen, WorkloadSpec};

/// One experiment's configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Human-readable label ("Base 2, level 20, no LB").
    pub label: String,
    /// Network size.
    pub nodes: usize,
    /// Workload.
    pub spec: WorkloadSpec,
    /// System configuration (zone base, LB).
    pub system: SystemConfig,
    /// §3.5 subschemes, if any.
    pub subschemes: Option<Vec<Vec<usize>>>,
    /// Target mean RTT of the King-like topology.
    pub mean_rtt: SimTime,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's base configuration: 1740 nodes (King dataset size),
    /// Table 1 workload, base 2 / level 20, no LB.
    pub fn paper_default() -> Self {
        Self {
            label: "Base 2, level 20, no LB".to_string(),
            nodes: 1740,
            spec: WorkloadSpec::paper_table1(),
            system: SystemConfig::default(),
            subschemes: None,
            mean_rtt: SimTime::from_millis(180),
            seed: 20070101,
        }
    }

    /// Scales the experiment down for smoke runs (`--quick`).
    pub fn quick(mut self) -> Self {
        self.nodes = (self.nodes / 10).max(64);
        self.spec.events = (self.spec.events / 20).max(100);
        self
    }

    /// Relabels the configuration.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Configuration label.
    pub label: String,
    /// Per-event statistics.
    pub events: Vec<EventStats>,
    /// Per-node stored-subscription loads.
    pub node_loads: Vec<u64>,
    /// Per-node traffic counters.
    pub node_traffic: Vec<NodeTraffic>,
    /// Messages spent on subscription installation (pre-publish).
    pub install_msgs: u64,
    /// Installation bytes.
    pub install_bytes: u64,
    /// Total subscriptions installed.
    pub total_subs: usize,
    /// Measured average RTT of the topology.
    pub avg_rtt: SimTime,
}

impl ExperimentResult {
    /// Mean percentage of subscriptions matched per event.
    pub fn avg_matched_pct(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        100.0 * self.events.iter().map(|e| e.matched_fraction).sum::<f64>()
            / self.events.len() as f64
    }

    /// Mean of max hops per event.
    pub fn avg_max_hops(&self) -> f64 {
        mean(self.events.iter().map(|e| e.max_hops as f64))
    }

    /// Mean of max latency per event, in ms.
    pub fn avg_max_latency_ms(&self) -> f64 {
        mean(self.events.iter().map(|e| e.max_latency.as_millis_f64()))
    }

    /// Mean bandwidth per event, in KB.
    pub fn avg_bandwidth_kb(&self) -> f64 {
        mean(
            self.events
                .iter()
                .map(|e| e.bandwidth_bytes as f64 / 1024.0),
        )
    }

    /// Fraction of events fully delivered (delivered == expected).
    pub fn delivery_completeness(&self) -> f64 {
        if self.events.is_empty() {
            return 1.0;
        }
        self.events
            .iter()
            .filter(|e| e.delivered == e.expected)
            .count() as f64
            / self.events.len() as f64
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs one full experiment: build the network, install the workload's
/// subscriptions, publish the workload's events with exponential
/// inter-arrival from random nodes, and collect every metric the figures
/// need.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let scheme = match &cfg.subschemes {
        Some(ss) => {
            let refs: Vec<&[usize]> = ss.iter().map(|v| v.as_slice()).collect();
            cfg.spec.scheme_def_with_subschemes(0, &refs)
        }
        None => cfg.spec.scheme_def(0),
    };
    let registry = Registry::new(vec![scheme]);
    let mut net = Network::builder(cfg.nodes)
        .registry(registry)
        .config(cfg.system.clone())
        .topology(TopologyKind::KingLike(cfg.mean_rtt))
        .seed(cfg.seed)
        .build()
        .expect("valid experiment configuration");
    let mut gen = WorkloadGen::new(cfg.spec.clone(), cfg.seed ^ 0xabcd);

    // Phase 1: install subscriptions on every node.
    for node in 0..cfg.nodes {
        for _ in 0..cfg.spec.subs_per_node {
            net.subscribe(node, 0, gen.subscription());
        }
    }
    let install_end = net.time() + SimTime::from_secs(300);
    if cfg.system.lb.enabled {
        net.run_until(install_end);
    } else {
        net.run_to_quiescence();
    }
    let install_msgs = net.net().total_msgs();
    let install_bytes = net.net().total_bytes();

    // Phase 2: schedule all events, exponential inter-arrival, random
    // publishers (§5.1: "20,000 events generated on randomly chosen
    // nodes" with 100 ms mean inter-arrival).
    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..cfg.spec.events {
        let node = gen.random_node(cfg.nodes);
        net.schedule_publish(t, node, 0, gen.event_point())
            .expect("publisher index in range");
        t += gen.interarrival();
    }
    let grace = SimTime::from_secs(120);
    if cfg.system.lb.enabled {
        net.run_until(t + grace);
    } else {
        net.run_to_quiescence();
    }

    let events = net.event_stats();
    ExperimentResult {
        label: cfg.label.clone(),
        events,
        node_loads: net.node_loads(),
        node_traffic: net.net().nodes().to_vec(),
        install_msgs,
        install_bytes,
        total_subs: cfg.nodes * cfg.spec.subs_per_node,
        avg_rtt: net.topology().avg_rtt_sampled(50_000, cfg.seed ^ 0xfeed),
    }
}

/// The four configurations of Figures 2–4: {base 2, base 4} × {no LB, LB}.
pub fn fig2_configs(quick: bool) -> Vec<ExperimentConfig> {
    let base = ExperimentConfig::paper_default();
    let mk = |label: &str, system: SystemConfig| {
        let mut c = base.clone().with_label(label);
        c.system = system;
        if quick {
            c = c.quick();
        }
        c
    };
    vec![
        mk("Base 2, level 20, no LB", SystemConfig::default()),
        mk("Base 2, level 20, LB", SystemConfig::default().with_lb()),
        mk("Base 4, level 10, no LB", SystemConfig::base4()),
        mk("Base 4, level 10, LB", SystemConfig::base4().with_lb()),
    ]
}

/// Renders a CDF as `(x, F(x))` rows alongside sibling configurations.
pub fn cdf_table(
    title: &str,
    x_label: &str,
    series: &[(String, Vec<f64>)],
    points: usize,
) -> Table {
    let mut header: Vec<String> = vec![x_label.to_string()];
    for (label, _) in series {
        header.push(format!("CDF[{label}]"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(title, &header_refs);
    // Common x-grid spanning all series.
    let lo = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() {
        return table;
    }
    let mut cdfs: Vec<Cdf> = series
        .iter()
        .map(|(_, v)| Cdf::from_samples(v.iter().copied()))
        .collect();
    for i in 0..points {
        let x = if points == 1 {
            hi
        } else {
            lo + (hi - lo) * i as f64 / (points - 1) as f64
        };
        let mut row = vec![format!("{x:.3}")];
        for c in &mut cdfs {
            row.push(format!("{:.4}", c.fraction_le(x)));
        }
        table.row(&row);
    }
    table
}

/// Parses the common `--quick` flag.
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Prints a standard per-configuration summary block (averages the paper
/// quotes in figure legends).
pub fn print_summary(results: &[ExperimentResult]) {
    let mut t = Table::new(
        "Run summary (figure-legend averages)",
        &[
            "config",
            "events",
            "avg matched %",
            "avg max hops",
            "avg max latency (ms)",
            "avg bw/event (KB)",
            "complete %",
            "install msgs",
        ],
    );
    for r in results {
        t.row(&[
            r.label.clone(),
            r.events.len().to_string(),
            format!("{:.3}", r.avg_matched_pct()),
            format!("{:.1}", r.avg_max_hops()),
            format!("{:.0}", r.avg_max_latency_ms()),
            format!("{:.1}", r.avg_bandwidth_kb()),
            format!("{:.1}", 100.0 * r.delivery_completeness()),
            r.install_msgs.to_string(),
        ]);
    }
    println!("{t}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end experiment exercising the whole harness.
    #[test]
    fn tiny_experiment_runs_and_delivers() {
        let mut cfg = ExperimentConfig::paper_default().quick();
        cfg.nodes = 48;
        cfg.spec.events = 30;
        cfg.spec.subs_per_node = 3;
        let r = run_experiment(&cfg);
        assert_eq!(r.events.len(), 30);
        assert_eq!(r.total_subs, 144);
        assert!(
            r.delivery_completeness() == 1.0,
            "all events must deliver fully: {:?}",
            r.events
                .iter()
                .filter(|e| e.delivered != e.expected)
                .collect::<Vec<_>>()
        );
        assert!(r.install_msgs > 0);
    }

    #[test]
    fn lb_experiment_converges() {
        let mut cfg = ExperimentConfig::paper_default().quick();
        cfg.nodes = 48;
        cfg.spec.events = 20;
        cfg.spec.subs_per_node = 4;
        cfg.system = SystemConfig::default().with_lb();
        let r = run_experiment(&cfg);
        assert_eq!(r.events.len(), 20);
        assert!(
            r.delivery_completeness() >= 0.95,
            "LB must not lose deliveries"
        );
    }

    #[test]
    fn cdf_table_shape() {
        let series = vec![
            ("a".to_string(), vec![1.0, 2.0, 3.0]),
            ("b".to_string(), vec![2.0, 4.0]),
        ];
        let t = cdf_table("test", "x", &series, 5);
        assert_eq!(t.len(), 5);
    }
}
