//! Global construction of a stabilized ring.
//!
//! The paper's experiments start from a stabilized network ("The simulation
//! starts by initializing subscriptions on each node in the network. After
//! system stabilization, we schedule 20,000 events...", §5.1). Rather than
//! simulating thousands of joins each run, this module computes the fixed
//! point directly: exact predecessor/successor lists and finger tables,
//! with **proximity neighbor selection** (PNS) choosing among valid finger
//! candidates by network latency, exactly the freedom Chord-PNS exploits.

use crate::id::{clockwise_distance, NodeId};
use crate::state::{ChordState, Peer, NUM_FINGERS};
use hypersub_simnet::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Ring construction parameters.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Successor-list length (Chord uses O(log N); p2psim defaults to 16).
    pub succ_list_len: usize,
    /// Enable proximity neighbor selection for fingers.
    pub pns: bool,
    /// Number of candidate nodes PNS examines per finger interval
    /// (PNS(16) in Gummadi et al.'s taxonomy, the p2psim default).
    pub pns_candidates: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            succ_list_len: 16,
            pns: true,
            pns_candidates: 16,
        }
    }
}

/// Draws `n` distinct random 64-bit identifiers.
pub fn random_ids(n: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ff_ee00_dead_5eed);
    let mut seen = HashSet::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    while ids.len() < n {
        let id: u64 = rng.gen();
        if seen.insert(id) {
            ids.push(id);
        }
    }
    ids
}

/// Builds a stabilized ring of `topo.len()` nodes with random identifiers
/// drawn from `seed`. Node `i`'s simulator index is `i`.
pub fn build_ring(cfg: &RingConfig, topo: &dyn Topology, seed: u64) -> Vec<ChordState> {
    let ids = random_ids(topo.len(), seed);
    build_ring_with_ids(cfg, topo, &ids)
}

/// Builds a stabilized ring over explicit identifiers (`ids[i]` is node
/// `i`'s ring id). Identifiers must be distinct.
pub fn build_ring_with_ids(
    cfg: &RingConfig,
    topo: &dyn Topology,
    ids: &[NodeId],
) -> Vec<ChordState> {
    let n = ids.len();
    assert_eq!(n, topo.len(), "one id per topology slot");
    assert!(n > 0, "cannot build an empty ring");
    {
        let distinct: HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), n, "identifiers must be distinct");
    }

    // Ring order: peers sorted by id.
    let mut order: Vec<Peer> = ids
        .iter()
        .enumerate()
        .map(|(idx, &id)| Peer { id, idx })
        .collect();
    order.sort_by_key(|p| p.id);

    let mut states: Vec<ChordState> = ids
        .iter()
        .enumerate()
        .map(|(idx, &id)| ChordState::new(id, idx, cfg.succ_list_len))
        .collect();

    for (pos, &me) in order.iter().enumerate() {
        let st = &mut states[me.idx];
        // Predecessor and successor list straight off the sorted ring.
        let pred = order[(pos + n - 1) % n];
        if pred.idx != me.idx {
            st.predecessor = Some(pred);
        }
        for k in 1..=cfg.succ_list_len.min(n - 1) {
            st.add_successor(order[(pos + k) % n]);
        }
        // Fingers with PNS: for finger i the *correct* entry is any node in
        // [start_i, start_{i+1}) (all give progress guarantees); standard
        // Chord takes successor(start_i), PNS takes the lowest-latency of
        // the first `pns_candidates` such nodes.
        for i in 0..NUM_FINGERS {
            let start = st.finger_start(i);
            let next_start = st.id.wrapping_add(
                (1u128 << (i + 1)).min(u64::MAX as u128 + 1) as u64, // wraps to id for i=63
            );
            // First node clockwise at or after `start`.
            let first = successor_position(&order, start);
            let candidate0 = order[first];
            // Skip degenerate fingers that land on ourselves.
            if candidate0.idx == me.idx {
                continue;
            }
            let chosen = if cfg.pns {
                let mut best = candidate0;
                let mut best_lat = topo.latency(me.idx, candidate0.idx);
                let mut pos2 = first;
                for _ in 1..cfg.pns_candidates {
                    pos2 = (pos2 + 1) % n;
                    let cand = order[pos2];
                    if cand.idx == me.idx {
                        break;
                    }
                    // Candidate must stay inside this finger's interval
                    // [start, next_start) to preserve routing progress.
                    let in_interval = if i == 63 {
                        // Interval covers half the ring ending at id.
                        clockwise_distance(start, cand.id) < clockwise_distance(start, st.id)
                    } else {
                        clockwise_distance(start, cand.id) < clockwise_distance(start, next_start)
                    };
                    if !in_interval {
                        break;
                    }
                    let lat = topo.latency(me.idx, cand.idx);
                    if lat < best_lat {
                        best = cand;
                        best_lat = lat;
                    }
                }
                best
            } else {
                candidate0
            };
            st.fingers[i] = Some(chosen);
        }
    }
    states
}

/// Index in `order` (sorted by id) of the successor of `key`: the first
/// peer whose id is `>= key`, wrapping to position 0.
fn successor_position(order: &[Peer], key: NodeId) -> usize {
    match order.binary_search_by_key(&key, |p| p.id) {
        Ok(pos) => pos,
        Err(pos) => pos % order.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_simnet::{KingLikeTopology, SimTime, UniformTopology};

    #[test]
    fn successors_and_predecessors_consistent() {
        let topo = UniformTopology::new(50, SimTime::from_millis(5));
        let states = build_ring(&RingConfig::default(), &topo, 7);
        for st in &states {
            let succ = st.successor().expect("every node has a successor");
            let succ_st = &states[succ.idx];
            assert_eq!(
                succ_st.predecessor.expect("has pred").idx,
                st.idx,
                "successor's predecessor must be me"
            );
        }
    }

    #[test]
    fn responsibility_partitions_ring() {
        let topo = UniformTopology::new(20, SimTime::from_millis(5));
        let states = build_ring(&RingConfig::default(), &topo, 9);
        for key in (0..1000u64).map(|i| i.wrapping_mul(0x3333_3333_3333_3333)) {
            let owners: Vec<_> = states.iter().filter(|s| s.responsible_for(key)).collect();
            assert_eq!(owners.len(), 1, "exactly one owner per key");
        }
    }

    #[test]
    fn fingers_point_into_their_intervals() {
        let topo = UniformTopology::new(64, SimTime::from_millis(5));
        let states = build_ring(&RingConfig::default(), &topo, 11);
        for st in &states {
            for (i, f) in st.fingers.iter().enumerate() {
                if let Some(p) = f {
                    let start = st.finger_start(i);
                    // The finger must not precede its interval start
                    // (progress guarantee): id ∈ [start, me) clockwise.
                    assert!(
                        clockwise_distance(start, p.id) < clockwise_distance(start, st.id)
                            || p.id == st.id,
                        "node {:#x} finger {} -> {:#x} before start {:#x}",
                        st.id,
                        i,
                        p.id,
                        start
                    );
                }
            }
        }
    }

    #[test]
    fn pns_prefers_nearby_nodes() {
        let n = 200;
        let topo = KingLikeTopology::generate(n, SimTime::from_millis(180), 3);
        let pns = build_ring(&RingConfig::default(), &topo, 3);
        let plain = build_ring(
            &RingConfig {
                pns: false,
                ..RingConfig::default()
            },
            &topo,
            3,
        );
        // Only the top fingers span intervals with multiple member nodes
        // (with n = 200 the bottom ~56 intervals hold at most one node), so
        // measure where PNS actually has a choice.
        let avg_top_finger_lat = |states: &[ChordState]| {
            let mut total = 0u64;
            let mut count = 0u64;
            for st in states {
                for f in st.fingers[58..].iter().flatten() {
                    total += topo.latency(st.idx, f.idx).as_micros();
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        let a = avg_top_finger_lat(&pns);
        let b = avg_top_finger_lat(&plain);
        assert!(
            a < b * 0.7,
            "PNS top fingers should be meaningfully closer: pns={a:.0}us plain={b:.0}us"
        );
    }

    #[test]
    fn distinct_ids_enforced() {
        let topo = UniformTopology::new(2, SimTime::from_millis(1));
        let result = std::panic::catch_unwind(|| {
            build_ring_with_ids(&RingConfig::default(), &topo, &[5, 5])
        });
        assert!(result.is_err());
    }

    #[test]
    fn singleton_ring() {
        let topo = UniformTopology::new(1, SimTime::from_millis(1));
        let states = build_ring(&RingConfig::default(), &topo, 1);
        assert!(states[0].successor().is_none());
        assert!(states[0].responsible_for(123));
    }

    #[test]
    fn random_ids_distinct_and_deterministic() {
        let a = random_ids(1000, 5);
        let b = random_ids(1000, 5);
        assert_eq!(a, b);
        let set: HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
    }
}
