//! Identifier-circle arithmetic.
//!
//! Chord correctness rests entirely on interval membership on a ring of
//! 2^64 identifiers. All intervals here are *clockwise*: `in_open_closed(a,
//! x, b)` asks whether walking clockwise from `a` one meets `x` no later
//! than `b`.

/// A 64-bit Chord identifier (node ID or key).
pub type NodeId = u64;

/// Clockwise distance from `a` to `b` (0 when equal).
#[inline]
pub fn clockwise_distance(a: NodeId, b: NodeId) -> u64 {
    b.wrapping_sub(a)
}

/// Is `x` in the clockwise-open-closed interval `(a, b]`?
///
/// When `a == b` the interval is the whole ring minus nothing — every `x`
/// except... by Chord convention `(a, a]` denotes the *full ring*, so this
/// returns `true` for all `x != a` and also for `x == a` (successor of a
/// key equal to the only node's id is that node).
#[inline]
pub fn in_open_closed(a: NodeId, x: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    clockwise_distance(a, x) <= clockwise_distance(a, b) && x != a
}

/// Is `x` in the clockwise-open-open interval `(a, b)`?
///
/// `(a, a)` denotes the full ring minus `a` itself.
#[inline]
pub fn in_open_open(a: NodeId, x: NodeId, b: NodeId) -> bool {
    if a == b {
        return x != a;
    }
    clockwise_distance(a, x) < clockwise_distance(a, b) && x != a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_wraps() {
        assert_eq!(clockwise_distance(10, 15), 5);
        assert_eq!(clockwise_distance(15, 10), u64::MAX - 4);
        assert_eq!(clockwise_distance(7, 7), 0);
    }

    #[test]
    fn open_closed_no_wrap() {
        assert!(in_open_closed(10, 15, 20));
        assert!(in_open_closed(10, 20, 20));
        assert!(!in_open_closed(10, 10, 20));
        assert!(!in_open_closed(10, 25, 20));
        assert!(!in_open_closed(10, 5, 20));
    }

    #[test]
    fn open_closed_wrap() {
        // Interval wrapping through 0: (u64::MAX - 5, 5]
        let a = u64::MAX - 5;
        assert!(in_open_closed(a, u64::MAX, 5));
        assert!(in_open_closed(a, 0, 5));
        assert!(in_open_closed(a, 5, 5));
        assert!(!in_open_closed(a, 6, 5));
        assert!(!in_open_closed(a, a, 5));
    }

    #[test]
    fn full_ring_convention() {
        assert!(in_open_closed(7, 7, 7));
        assert!(in_open_closed(7, 123, 7));
        assert!(!in_open_open(7, 7, 7));
        assert!(in_open_open(7, 123, 7));
    }

    #[test]
    fn open_open() {
        assert!(in_open_open(10, 15, 20));
        assert!(!in_open_open(10, 20, 20));
        assert!(!in_open_open(10, 10, 20));
        assert!(in_open_open(u64::MAX - 1, 0, 3));
    }
}
