//! Chord DHT substrate for HyperSub.
//!
//! The paper builds HyperSub "on top of Chord" and evaluates with
//! **Chord-PNS** — Chord with proximity neighbor selection, where "each
//! node chooses physically closest nodes from the valid candidates as
//! routing entries" (§5.1, citing Dabek et al., NSDI'04). Identifiers are
//! 64-bit (§5.1).
//!
//! This crate provides:
//!
//! * [`id`] — identifier/ring-interval arithmetic (the whole correctness of
//!   Chord lives in these half-open interval checks);
//! * [`state`] — per-node routing state: predecessor, successor list,
//!   finger table;
//! * [`builder`] — global construction of a *stabilized* ring with
//!   PNS-selected fingers, the starting condition of the paper's
//!   experiments ("after system stabilization ...");
//! * [`routing`] — greedy recursive next-hop selection (used verbatim by
//!   HyperSub's Algorithm 5 event delivery);
//! * [`proto`] — the dynamic protocol (join, stabilize, notify,
//!   fix-fingers, failure eviction) expressed as effect-returning
//!   functions so higher layers can embed Chord maintenance inside their
//!   own message enums, plus a standalone simnet node for churn tests.

pub mod builder;
pub mod id;
pub mod proto;
pub mod routing;
pub mod state;

pub use builder::{build_ring, RingConfig};
pub use id::{clockwise_distance, in_open_closed, in_open_open, NodeId};
pub use routing::{next_hop, route_path, NextHop};
pub use state::{ChordState, Peer};
