//! The dynamic Chord protocol: join, stabilize, notify, fix-fingers and
//! failure eviction.
//!
//! The paper runs its measurements on a stabilized network and "leverages
//! the underlying DHT to deal with nodes join/departure/failure" (§6), so
//! the maintenance machinery lives here in the DHT layer. It is written as
//! *effect-returning functions* over [`MaintState`] — handlers return the
//! messages to send instead of sending them — so that both the standalone
//! [`ChordNode`] (used for churn tests) and HyperSub's node (which embeds
//! Chord maintenance inside its own message enum) share one implementation.

use crate::id::{in_open_closed, NodeId};
use crate::routing::{closest_preceding, next_hop, NextHop};
use crate::state::{ChordState, Peer, NUM_FINGERS};
use hypersub_simnet::{FxHashSet, Node, NodeRuntime, Payload, SimTime};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// Why a lookup was issued; determines what happens with the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupPurpose {
    /// A joining node looking up its own successor.
    Join,
    /// Refreshing finger-table entry `i`.
    Finger(u8),
    /// An application lookup; the token is returned with the answer.
    App(u64),
}

/// Chord maintenance wire messages.
#[derive(Debug, Clone)]
pub enum ChordMsg {
    /// Recursive lookup request for the node responsible for `key`.
    FindSuccessor {
        /// Key being resolved.
        key: NodeId,
        /// Node awaiting the reply.
        origin: Peer,
        /// What the origin will do with the answer.
        purpose: LookupPurpose,
    },
    /// Lookup answer, sent directly to the origin.
    FoundSuccessor {
        /// Key that was resolved.
        key: NodeId,
        /// The responsible node.
        owner: Peer,
        /// Echoed purpose.
        purpose: LookupPurpose,
    },
    /// Stabilize probe: asks the successor for its predecessor + list.
    GetNeighbors,
    /// Stabilize reply.
    NeighborsReply {
        /// Receiver's current predecessor.
        pred: Option<Peer>,
        /// Receiver's successor list.
        succs: Vec<Peer>,
    },
    /// "I believe I am your predecessor."
    Notify {
        /// The notifying peer.
        peer: Peer,
    },
}

/// Serialized peer size: 8-byte id + 4-byte address.
const PEER_BYTES: usize = 12;
/// Packet header, matching the paper's 20-byte event-message header.
const HEADER_BYTES: usize = 20;

impl Payload for ChordMsg {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                ChordMsg::FindSuccessor { .. } => 8 + PEER_BYTES + 2,
                ChordMsg::FoundSuccessor { .. } => 8 + PEER_BYTES + 2,
                ChordMsg::GetNeighbors => 0,
                ChordMsg::NeighborsReply { succs, .. } => PEER_BYTES * (succs.len() + 1),
                ChordMsg::Notify { .. } => PEER_BYTES,
            }
    }
}

/// Messages a handler wants sent: `(destination index, message)`.
pub type Sends = Vec<(usize, ChordMsg)>;

/// What a handler produced.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Messages to transmit.
    pub sends: Sends,
    /// A completed application lookup `(token, owner)`, if any.
    pub app_lookup: Option<(u64, Peer)>,
    /// Whether this message changed the node's immediate neighborhood
    /// (predecessor or first successor). The application layer hooks this
    /// to react to ownership changes — e.g. promoting replicated
    /// rendezvous state when a new predecessor shrinks-from-behind the
    /// responsibility arc.
    pub neighborhood_changed: bool,
}

/// Consecutive unanswered stabilize probes tolerated before a peer is
/// declared dead. One miss must not evict: on a lossy network a single
/// lost `GetNeighbors` (or its reply) is routine, and fail-stop death is
/// still detected fast via the send-failure notification path.
pub const STABILIZE_STRIKE_LIMIT: u32 = 3;

/// Chord state plus maintenance bookkeeping (periodic-task cursors and the
/// successor failure detector).
#[derive(Debug, Clone)]
pub struct MaintState {
    /// The routing state proper.
    pub chord: ChordState,
    /// Unanswered probes before eviction (see [`STABILIZE_STRIKE_LIMIT`]).
    pub strike_limit: u32,
    /// Successor probed by the last stabilize tick and not yet heard from,
    /// with its count of consecutive missed replies so far.
    awaiting_stab: Option<(usize, u32)>,
    /// Predecessor probed by the last stabilize tick and not yet heard
    /// from (Chord's `check_predecessor`), with missed-reply count.
    awaiting_pred: Option<(usize, u32)>,
    /// Round-robin finger refresh cursor.
    next_finger: usize,
    /// Bootstrap contact remembered from `start_join`; re-probed by
    /// stabilize while this node still has no successors (a lossy network
    /// can swallow the one-shot join lookup).
    bootstrap: Option<usize>,
    /// Peers this node has itself observed dead. Gossip (successor lists
    /// from neighbors) is filtered against this set — otherwise evicted
    /// nodes leak straight back in and the ring never heals.
    dead: FxHashSet<usize>,
}

impl MaintState {
    /// Wraps existing routing state.
    pub fn new(chord: ChordState) -> Self {
        Self {
            chord,
            strike_limit: STABILIZE_STRIKE_LIMIT,
            awaiting_stab: None,
            awaiting_pred: None,
            next_finger: 0,
            bootstrap: None,
            dead: FxHashSet::default(),
        }
    }

    /// Adds a successor candidate unless this node observed it dead.
    fn add_successor_checked(&mut self, p: Peer) {
        if !self.dead.contains(&p.idx) {
            self.chord.add_successor(p);
        }
    }

    /// Records a peer observed alive (piggybacked maintenance): offers it
    /// as a predecessor and successor candidate and lifts any tombstone —
    /// direct evidence of liveness outranks past timeouts.
    pub fn observe_peer(&mut self, peer: Peer) {
        if peer.idx == self.chord.idx {
            return;
        }
        self.dead.remove(&peer.idx);
        self.chord.consider_predecessor(peer);
        self.chord.add_successor(peer);
    }

    /// Forgets every past liveness observation: tombstones and in-flight
    /// probe strikes. Call when this node itself rejoins after downtime —
    /// its observations predate the failure and are stale, and a stale
    /// tombstone deadlocks ring repair when two adjacent nodes churn
    /// (each refuses the gossip that names the other, and neither ever
    /// contacts the other directly to lift the tombstone).
    pub fn rejoin_reset(&mut self) {
        self.dead.clear();
        self.awaiting_stab = None;
        self.awaiting_pred = None;
    }

    /// Records a node observed dead (e.g. via a send failure): evicts it
    /// from all routing state and tombstones it against gossip.
    pub fn note_dead(&mut self, idx: usize) {
        self.chord.evict(idx);
        self.dead.insert(idx);
        if self.awaiting_stab.map(|(i, _)| i) == Some(idx) {
            self.awaiting_stab = None;
        }
        if self.awaiting_pred.map(|(i, _)| i) == Some(idx) {
            self.awaiting_pred = None;
        }
    }

    /// Begins a join via `bootstrap` (a simulator index of any ring
    /// member). The contact is remembered: while this node still has no
    /// successors, each stabilize tick re-issues the join lookup, so a
    /// lost bootstrap exchange only delays the join by one period.
    pub fn start_join(&mut self, bootstrap: usize) -> Sends {
        self.bootstrap = Some(bootstrap);
        vec![(
            bootstrap,
            ChordMsg::FindSuccessor {
                key: self.chord.id,
                origin: self.chord.me(),
                purpose: LookupPurpose::Join,
            },
        )]
    }

    /// Issues an application lookup for `key`; the answer surfaces later as
    /// [`Outcome::app_lookup`] with this `token`.
    pub fn start_lookup(&mut self, key: NodeId, token: u64) -> Sends {
        // Resolve locally when possible so a lone node still answers.
        match next_hop(&self.chord, key) {
            NextHop::Local => Vec::new(), // caller should check responsible_for first
            NextHop::Forward(p) => vec![(
                p.idx,
                ChordMsg::FindSuccessor {
                    key,
                    origin: self.chord.me(),
                    purpose: LookupPurpose::App(token),
                },
            )],
        }
    }

    /// One stabilize tick: strike (and at the limit evict) unresponsive
    /// probed peers, then probe the current successor and predecessor.
    /// Call at a fixed period.
    pub fn stabilize_tick(&mut self) -> Sends {
        // Unanswered probes accumulate strikes; only a run of
        // `strike_limit` consecutive misses evicts. Strikes carry over
        // only while the probed peer stays the same.
        let stab_miss = match self.awaiting_stab.take() {
            Some((idx, miss)) if miss + 1 >= self.strike_limit => {
                self.note_dead(idx);
                None
            }
            Some((idx, miss)) => Some((idx, miss + 1)),
            None => None,
        };
        let pred_miss = match self.awaiting_pred.take() {
            Some((idx, miss)) if miss + 1 >= self.strike_limit => {
                // Predecessor unresponsive: clear it so the true
                // predecessor (who keeps notifying us) can take the slot,
                // and so our responsibility arc is not stuck behind a dead
                // node.
                self.note_dead(idx);
                None
            }
            Some((idx, miss)) => Some((idx, miss + 1)),
            None => None,
        };
        let mut sends = Vec::new();
        if let Some(succ) = self.chord.successor() {
            let carried = match stab_miss {
                Some((idx, miss)) if idx == succ.idx => miss,
                _ => 0,
            };
            self.awaiting_stab = Some((succ.idx, carried));
            sends.push((succ.idx, ChordMsg::GetNeighbors));
        } else if let Some(boot) = self.bootstrap {
            // Still ringless: the one-shot join must have been lost —
            // retry it.
            if !self.dead.contains(&boot) {
                sends.push((
                    boot,
                    ChordMsg::FindSuccessor {
                        key: self.chord.id,
                        origin: self.chord.me(),
                        purpose: LookupPurpose::Join,
                    },
                ));
            }
        }
        if let Some(pred) = self.chord.predecessor {
            if self.awaiting_stab.map(|(i, _)| i) != Some(pred.idx) {
                let carried = match pred_miss {
                    Some((idx, miss)) if idx == pred.idx => miss,
                    _ => 0,
                };
                self.awaiting_pred = Some((pred.idx, carried));
                sends.push((pred.idx, ChordMsg::GetNeighbors));
            }
        }
        sends
    }

    /// One fix-fingers tick: refreshes the next finger in round-robin.
    pub fn fix_fingers_tick(&mut self) -> Sends {
        let i = self.next_finger;
        self.next_finger = (self.next_finger + 1) % NUM_FINGERS;
        let start = self.chord.finger_start(i);
        if self.chord.responsible_for(start) {
            self.chord.fingers[i] = None;
            return Vec::new();
        }
        match next_hop(&self.chord, start) {
            NextHop::Local => Vec::new(),
            NextHop::Forward(p) => vec![(
                p.idx,
                ChordMsg::FindSuccessor {
                    key: start,
                    origin: self.chord.me(),
                    purpose: LookupPurpose::Finger(i as u8),
                },
            )],
        }
    }

    /// Handles an incoming maintenance message.
    pub fn handle(&mut self, from: usize, msg: ChordMsg) -> Outcome {
        // Receiving anything from a peer is direct liveness evidence:
        // lift its tombstone (e.g. a healed partition re-introducing
        // peers this side had struck out).
        self.dead.remove(&from);
        let neighborhood_before = (self.chord.predecessor, self.chord.successor());
        let mut out = Outcome::default();
        match msg {
            ChordMsg::FindSuccessor {
                key,
                origin,
                purpose,
            } => {
                // Bootstrap: a node with no successors (ring of one) adopts
                // any live contact as its first successor candidate so the
                // two-node ring can form.
                if self.chord.successors.is_empty() {
                    self.add_successor_checked(origin);
                }
                let st = &self.chord;
                if st.responsible_for(key) {
                    out.sends.push((
                        origin.idx,
                        ChordMsg::FoundSuccessor {
                            key,
                            owner: st.me(),
                            purpose,
                        },
                    ));
                } else if let Some(succ) = st.successor() {
                    if in_open_closed(st.id, key, succ.id) {
                        out.sends.push((
                            origin.idx,
                            ChordMsg::FoundSuccessor {
                                key,
                                owner: succ,
                                purpose,
                            },
                        ));
                    } else {
                        let hop = closest_preceding(st, key).unwrap_or(succ);
                        out.sends.push((
                            hop.idx,
                            ChordMsg::FindSuccessor {
                                key,
                                origin,
                                purpose,
                            },
                        ));
                    }
                }
                // A node with no successor and not responsible: drop (it is
                // not part of any ring yet and should not be routed to).
            }
            ChordMsg::FoundSuccessor {
                key,
                owner,
                purpose,
            } => match purpose {
                LookupPurpose::Join => {
                    self.chord.add_successor(owner);
                    out.sends.push((
                        owner.idx,
                        ChordMsg::Notify {
                            peer: self.chord.me(),
                        },
                    ));
                }
                LookupPurpose::Finger(i) => {
                    self.chord.fingers[i as usize] = Some(owner);
                }
                LookupPurpose::App(token) => {
                    let _ = key;
                    out.app_lookup = Some((token, owner));
                }
            },
            ChordMsg::GetNeighbors => {
                out.sends.push((
                    from,
                    ChordMsg::NeighborsReply {
                        pred: self.chord.predecessor,
                        succs: self.chord.successors.clone(),
                    },
                ));
            }
            ChordMsg::NeighborsReply { pred, succs } => {
                let is_succ_probe = self.awaiting_stab.map(|(i, _)| i) == Some(from);
                if is_succ_probe {
                    self.awaiting_stab = None;
                }
                if self.awaiting_pred.map(|(i, _)| i) == Some(from) {
                    self.awaiting_pred = None;
                    if !is_succ_probe {
                        // Predecessor liveness probe only: its successor
                        // list points at (and behind) us and would re-seed
                        // entries we have deliberately evicted.
                        out.neighborhood_changed =
                            neighborhood_before != (self.chord.predecessor, self.chord.successor());
                        return out;
                    }
                }
                // Chord stabilize: if our successor's predecessor sits
                // between us and it, that node is our better successor
                // (add_successor keeps the list clockwise-sorted, so simply
                // offering it implements the rule).
                if let Some(p) = pred {
                    if p.idx != self.chord.idx {
                        if self.dead.contains(&p.idx) {
                            // Resurrection check: gossip alone must not
                            // revive a tombstoned peer, but a rejoined
                            // node that re-enters as someone's predecessor
                            // would otherwise stay invisible to the node
                            // *behind* it forever (it only announces
                            // itself forward, via Notify to its
                            // successor). Probe it directly: a live reply
                            // lifts the tombstone, silence changes
                            // nothing.
                            out.sends.push((p.idx, ChordMsg::GetNeighbors));
                        } else {
                            self.chord.add_successor(p);
                        }
                    }
                }
                if self.chord.successor().map(|s| s.idx) == Some(from) {
                    // Still our immediate successor: adopt its list
                    // wholesale ([succ] ++ succ.list, the real protocol's
                    // *replace* semantics). Merging instead would let
                    // stale dead entries linger forever.
                    let succ = self.chord.successor().expect("checked above");
                    self.chord.successors.clear();
                    self.chord.add_successor(succ);
                    for s in succs {
                        if s.idx != self.chord.idx {
                            self.add_successor_checked(s);
                        }
                    }
                } else {
                    for s in succs {
                        if s.idx != self.chord.idx {
                            self.add_successor_checked(s);
                        }
                    }
                }
                if let Some(succ) = self.chord.successor() {
                    out.sends.push((
                        succ.idx,
                        ChordMsg::Notify {
                            peer: self.chord.me(),
                        },
                    ));
                }
            }
            ChordMsg::Notify { peer } => {
                self.chord.consider_predecessor(peer);
                // Bootstrap symmetry: a successor-less node forming a
                // two-node ring adopts its notifier as successor.
                if self.chord.successors.is_empty() {
                    self.add_successor_checked(peer);
                }
            }
        }
        out.neighborhood_changed =
            neighborhood_before != (self.chord.predecessor, self.chord.successor());
        out
    }
}

impl Encode for LookupPurpose {
    fn encode(&self, w: &mut Writer) {
        match self {
            LookupPurpose::Join => w.put_u8(0),
            LookupPurpose::Finger(i) => {
                w.put_u8(1);
                w.put_u8(*i);
            }
            LookupPurpose::App(token) => {
                w.put_u8(2);
                w.put_u64(*token);
            }
        }
    }
}

impl Decode for LookupPurpose {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => LookupPurpose::Join,
            1 => LookupPurpose::Finger(r.take_u8()?),
            2 => LookupPurpose::App(r.take_u64()?),
            _ => return Err(Error::InvalidValue("lookup purpose tag")),
        })
    }
}

impl Encode for ChordMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            ChordMsg::FindSuccessor {
                key,
                origin,
                purpose,
            } => {
                w.put_u8(0);
                w.put_u64(*key);
                origin.encode(w);
                purpose.encode(w);
            }
            ChordMsg::FoundSuccessor {
                key,
                owner,
                purpose,
            } => {
                w.put_u8(1);
                w.put_u64(*key);
                owner.encode(w);
                purpose.encode(w);
            }
            ChordMsg::GetNeighbors => w.put_u8(2),
            ChordMsg::NeighborsReply { pred, succs } => {
                w.put_u8(3);
                pred.encode(w);
                succs.encode(w);
            }
            ChordMsg::Notify { peer } => {
                w.put_u8(4);
                peer.encode(w);
            }
        }
    }
}

impl Decode for ChordMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => ChordMsg::FindSuccessor {
                key: r.take_u64()?,
                origin: Peer::decode(r)?,
                purpose: LookupPurpose::decode(r)?,
            },
            1 => ChordMsg::FoundSuccessor {
                key: r.take_u64()?,
                owner: Peer::decode(r)?,
                purpose: LookupPurpose::decode(r)?,
            },
            2 => ChordMsg::GetNeighbors,
            3 => ChordMsg::NeighborsReply {
                pred: Option::<Peer>::decode(r)?,
                succs: Vec::<Peer>::decode(r)?,
            },
            4 => ChordMsg::Notify {
                peer: Peer::decode(r)?,
            },
            _ => return Err(Error::InvalidValue("chord msg tag")),
        })
    }
}

// Maintenance bookkeeping includes private cursors (probe strikes, the
// finger round-robin, the bootstrap contact and the tombstone set), all of
// which steer future traffic — so all are captured. The tombstone set is
// sorted for stable bytes.
impl Encode for MaintState {
    fn encode(&self, w: &mut Writer) {
        self.chord.encode(w);
        w.put_u32(self.strike_limit);
        self.awaiting_stab.encode(w);
        self.awaiting_pred.encode(w);
        self.next_finger.encode(w);
        self.bootstrap.encode(w);
        let mut dead: Vec<usize> = self.dead.iter().copied().collect();
        dead.sort_unstable();
        dead.encode(w);
    }
}

impl Decode for MaintState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(MaintState {
            chord: ChordState::decode(r)?,
            strike_limit: r.take_u32()?,
            awaiting_stab: Option::<(usize, u32)>::decode(r)?,
            awaiting_pred: Option::<(usize, u32)>::decode(r)?,
            next_finger: usize::decode(r)?,
            bootstrap: Option::<usize>::decode(r)?,
            dead: Vec::<usize>::decode(r)?.into_iter().collect(),
        })
    }
}

/// Default stabilize period for the standalone node.
pub const STABILIZE_PERIOD: SimTime = SimTime::from_millis(500);
/// Default fix-fingers period for the standalone node.
pub const FIX_FINGERS_PERIOD: SimTime = SimTime::from_millis(250);

/// Timer token: run a stabilize tick and re-arm.
pub const TOKEN_STABILIZE: u64 = 1;
/// Timer token: run a fix-fingers tick and re-arm.
pub const TOKEN_FIX_FINGERS: u64 = 2;

/// World state for the standalone Chord node: completed app lookups.
#[derive(Debug, Default)]
pub struct ChordWorld {
    /// `(token, owner peer)` pairs in completion order.
    pub lookups: Vec<(u64, Peer)>,
}

/// A self-maintaining Chord node runnable directly on `hypersub-simnet`,
/// used by the churn tests and the churn example.
#[derive(Debug, Clone)]
pub struct ChordNode {
    /// Protocol state.
    pub maint: MaintState,
}

impl ChordNode {
    /// A node that considers itself a singleton ring.
    pub fn new(id: NodeId, idx: usize, succ_list_len: usize) -> Self {
        Self {
            maint: MaintState::new(ChordState::new(id, idx, succ_list_len)),
        }
    }

    /// Arms the periodic maintenance timers; call once after creation.
    pub fn arm_timers<W, R: NodeRuntime<ChordMsg, W>>(ctx: &mut R) {
        ctx.set_timer(STABILIZE_PERIOD, TOKEN_STABILIZE);
        ctx.set_timer(FIX_FINGERS_PERIOD, TOKEN_FIX_FINGERS);
    }
}

impl Node<ChordMsg, ChordWorld> for ChordNode {
    fn on_send_failed<R: NodeRuntime<ChordMsg, ChordWorld>>(
        &mut self,
        _ctx: &mut R,
        dst: usize,
        _msg: ChordMsg,
    ) {
        self.maint.note_dead(dst);
    }

    fn on_message<R: NodeRuntime<ChordMsg, ChordWorld>>(
        &mut self,
        ctx: &mut R,
        from: usize,
        msg: ChordMsg,
    ) {
        let out = self.maint.handle(from, msg);
        if let Some(done) = out.app_lookup {
            ctx.world().lookups.push(done);
        }
        for (dst, m) in out.sends {
            ctx.send(dst, m);
        }
    }

    fn on_timer<R: NodeRuntime<ChordMsg, ChordWorld>>(&mut self, ctx: &mut R, token: u64) {
        let sends = match token {
            TOKEN_STABILIZE => {
                ctx.set_timer(STABILIZE_PERIOD, TOKEN_STABILIZE);
                self.maint.stabilize_tick()
            }
            TOKEN_FIX_FINGERS => {
                ctx.set_timer(FIX_FINGERS_PERIOD, TOKEN_FIX_FINGERS);
                self.maint.fix_fingers_tick()
            }
            _ => Vec::new(),
        };
        for (dst, m) in sends {
            ctx.send(dst, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_simnet::{Sim, SimTime, UniformTopology};
    use std::sync::Arc;

    fn make_sim(n: usize) -> Sim<ChordNode, ChordMsg, ChordWorld> {
        let topo = Arc::new(UniformTopology::new(n, SimTime::from_millis(10)));
        let ids = crate::builder::random_ids(n, 99);
        let nodes: Vec<ChordNode> = ids
            .iter()
            .enumerate()
            .map(|(idx, &id)| ChordNode::new(id, idx, 8))
            .collect();
        Sim::new(topo, nodes, ChordWorld::default(), 5)
    }

    /// Joins nodes 1..n via node 0 and runs maintenance long enough to
    /// stabilize.
    fn stabilized_sim(n: usize) -> Sim<ChordNode, ChordMsg, ChordWorld> {
        let mut sim = make_sim(n);
        for i in 0..n {
            sim.with_node_ctx(i, |node, ctx| {
                ChordNode::arm_timers(ctx);
                if i > 0 {
                    for (dst, m) in node.maint.start_join(0) {
                        ctx.send(dst, m);
                    }
                }
            });
        }
        // Plenty of stabilize rounds for an n-node ring.
        sim.run_until(SimTime::from_secs(60));
        sim
    }

    fn ring_is_consistent(sim: &Sim<ChordNode, ChordMsg, ChordWorld>, alive: &[usize]) {
        // Sort alive nodes by id; each node's first successor must be the
        // next alive node on the ring.
        let mut order: Vec<(u64, usize)> = alive
            .iter()
            .map(|&i| (sim.node(i).maint.chord.id, i))
            .collect();
        order.sort_unstable();
        let n = order.len();
        for (pos, &(_, idx)) in order.iter().enumerate() {
            let expected = order[(pos + 1) % n].1;
            let succ = sim
                .node(idx)
                .maint
                .chord
                .successor()
                .expect("stabilized node has successor");
            assert_eq!(
                succ.idx, expected,
                "node {idx} successor {0} != ring-next {expected}",
                succ.idx
            );
        }
    }

    #[test]
    fn joins_converge_to_correct_ring() {
        let n = 24;
        let sim = stabilized_sim(n);
        let alive: Vec<usize> = (0..n).collect();
        ring_is_consistent(&sim, &alive);
    }

    #[test]
    fn lookups_resolve_after_stabilization() {
        let n = 16;
        let mut sim = stabilized_sim(n);
        // Look up every node's exact id from node 3.
        let targets: Vec<(u64, u64)> = (0..n)
            .map(|i| (i as u64, sim.node(i).maint.chord.id))
            .collect();
        for &(token, key) in &targets {
            sim.with_node_ctx(3, |node, ctx| {
                if node.maint.chord.responsible_for(key) {
                    ctx.world.lookups.push((token, node.maint.chord.me()));
                } else {
                    for (dst, m) in node.maint.start_lookup(key, token) {
                        ctx.send(dst, m);
                    }
                }
            });
        }
        sim.run_until(SimTime::from_secs(120));
        let lookups = &sim.world().lookups;
        assert_eq!(lookups.len(), n);
        for &(token, owner) in lookups {
            assert_eq!(
                owner.idx, token as usize,
                "lookup for node {token}'s id must return that node"
            );
        }
    }

    #[test]
    fn failure_is_evicted_and_ring_heals() {
        let n = 12;
        let mut sim = stabilized_sim(n);
        let dead = 5usize;
        sim.fail(dead);
        sim.run_until(SimTime::from_secs(180));
        let alive: Vec<usize> = (0..n).filter(|&i| i != dead).collect();
        ring_is_consistent(&sim, &alive);
        for &i in &alive {
            let st = &sim.node(i).maint.chord;
            assert!(
                st.successors.iter().all(|p| p.idx != dead),
                "node {i} still lists dead successor"
            );
        }
    }

    #[test]
    fn observe_peer_piggyback_updates_state() {
        let mut m = MaintState::new(ChordState::new(100, 0, 4));
        let p = Peer { id: 90, idx: 3 };
        // Tombstoned peer comes back via a piggybacked observation.
        m.note_dead(3);
        m.observe_peer(p);
        assert_eq!(m.chord.predecessor, Some(p));
        // And it is a successor candidate again.
        m.handle(
            3,
            ChordMsg::NeighborsReply {
                pred: None,
                succs: vec![p],
            },
        );
        assert!(m.chord.successors.contains(&p));
        // Self-observation is a no-op.
        m.observe_peer(Peer { id: 100, idx: 0 });
        assert_eq!(m.chord.predecessor, Some(p));
    }

    #[test]
    fn tombstoned_pred_gossip_is_probed_not_adopted() {
        let mut m = MaintState::new(ChordState::new(100, 0, 4));
        let succ = Peer { id: 140, idx: 2 };
        let ghost = Peer { id: 120, idx: 5 };
        m.chord.add_successor(succ);
        m.note_dead(5);
        // Successor gossips that a node we struck out is now its
        // predecessor (it rejoined): we must not adopt it on hearsay, but
        // we must go look.
        let out = m.handle(
            2,
            ChordMsg::NeighborsReply {
                pred: Some(ghost),
                succs: vec![],
            },
        );
        assert!(
            !m.chord.successors.contains(&ghost),
            "gossip alone must not revive a tombstoned peer"
        );
        assert!(
            out.sends
                .iter()
                .any(|(dst, msg)| *dst == 5 && matches!(msg, ChordMsg::GetNeighbors)),
            "a tombstoned pred hint must trigger a direct probe"
        );
        // The ghost answers the probe: direct contact lifts the tombstone,
        // and the next round of the same gossip is adopted.
        m.handle(
            5,
            ChordMsg::NeighborsReply {
                pred: None,
                succs: vec![],
            },
        );
        m.handle(
            2,
            ChordMsg::NeighborsReply {
                pred: Some(ghost),
                succs: vec![],
            },
        );
        assert!(
            m.chord.successors.contains(&ghost),
            "after a live reply the rejoined peer is adopted"
        );
    }

    #[test]
    fn rejoin_reset_forgets_observations() {
        let mut m = MaintState::new(ChordState::new(100, 0, 4));
        m.chord.add_successor(Peer { id: 140, idx: 2 });
        m.note_dead(5);
        m.note_dead(7);
        let _ = m.stabilize_tick(); // arms awaiting_stab on the successor
        assert!(m.awaiting_stab.is_some());
        m.rejoin_reset();
        assert!(m.dead.is_empty(), "tombstones cleared");
        assert!(m.awaiting_stab.is_none() && m.awaiting_pred.is_none());
        // Cleared tombstone: gossip about the peer is believed again.
        let ghost = Peer { id: 120, idx: 5 };
        m.handle(
            2,
            ChordMsg::NeighborsReply {
                pred: Some(ghost),
                succs: vec![],
            },
        );
        assert!(m.chord.successors.contains(&ghost));
    }

    #[test]
    fn adjacent_churned_pair_reintegrates() {
        // The regression the scenario pack caught: two ring-adjacent nodes
        // churn (down long enough for full eviction plus tombstones
        // everywhere), then revive. Without resurrection probing and
        // rejoin_reset the pair stays invisible to the node behind it and
        // its key arc is orphaned forever.
        let n = 12;
        let mut sim = stabilized_sim(n);
        // Pick two ring-adjacent indices by id order.
        let mut by_id: Vec<(u64, usize)> =
            (0..n).map(|i| (sim.node(i).maint.chord.id, i)).collect();
        by_id.sort_unstable();
        let (a, b) = (by_id[3].1, by_id[4].1);
        sim.fail(a);
        sim.fail(b);
        // Long enough that every survivor evicts and tombstones both.
        let t0 = sim.time();
        sim.run_until(t0 + SimTime::from_secs(120));
        sim.revive(a);
        sim.revive(b);
        for &i in &[a, b] {
            sim.with_node_ctx(i, |node, ctx| {
                node.maint.rejoin_reset();
                ChordNode::arm_timers(ctx);
            });
        }
        let t1 = sim.time();
        sim.run_until(t1 + SimTime::from_secs(120));
        ring_is_consistent(&sim, &(0..n).collect::<Vec<_>>());
    }

    #[test]
    fn neighborhood_change_is_flagged_once() {
        let mut m = MaintState::new(ChordState::new(100, 0, 4));
        let p = Peer { id: 90, idx: 3 };
        let out = m.handle(3, ChordMsg::Notify { peer: p });
        assert!(
            out.neighborhood_changed,
            "first notify installs a predecessor and successor"
        );
        let out = m.handle(3, ChordMsg::Notify { peer: p });
        assert!(!out.neighborhood_changed, "re-notify changes nothing");
        let out = m.handle(3, ChordMsg::GetNeighbors);
        assert!(!out.neighborhood_changed, "probes change nothing");
    }

    #[test]
    fn late_join_integrates() {
        let n = 10;
        let mut sim = make_sim(n);
        // Stabilize the first 9 nodes only.
        for i in 0..n - 1 {
            sim.with_node_ctx(i, |node, ctx| {
                ChordNode::arm_timers(ctx);
                if i > 0 {
                    for (dst, m) in node.maint.start_join(0) {
                        ctx.send(dst, m);
                    }
                }
            });
        }
        sim.run_until(SimTime::from_secs(30));
        // Now join the last node.
        let last = n - 1;
        sim.with_node_ctx(last, |node, ctx| {
            ChordNode::arm_timers(ctx);
            for (dst, m) in node.maint.start_join(0) {
                ctx.send(dst, m);
            }
        });
        sim.run_until(SimTime::from_secs(90));
        let alive: Vec<usize> = (0..n).collect();
        ring_is_consistent(&sim, &alive);
    }
}
