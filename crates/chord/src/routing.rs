//! Greedy recursive routing.
//!
//! HyperSub routes everything — subscription installation (Algorithm 2),
//! event publication (Algorithm 4) and per-SubID event delivery
//! (Algorithm 5 line 20: "find neighbor node N_j in the routing table whose
//! ID is equal to or immediately precedes subid.nid") — by the same greedy
//! rule implemented here: deliver locally if responsible, otherwise forward
//! to the closest preceding routing-table entry.

use crate::id::{in_open_closed, NodeId};
use crate::state::{ChordState, Peer};

/// Routing decision for a key at some node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// This node is the key's successor — consume locally.
    Local,
    /// Forward to this peer.
    Forward(Peer),
}

/// Chord's `closest_preceding_node`: the routing-table entry (fingers +
/// successors) whose id most immediately precedes `key`, strictly within
/// `(state.id, key)`.
pub fn closest_preceding(state: &ChordState, key: NodeId) -> Option<Peer> {
    // One distance computation per entry. `p.id ∈ (id, key)` is exactly
    // `0 < d < dk` (with `(id, id)` the full ring minus `id`, i.e. any
    // `d ≠ 0` when `dk == 0`), and "closer to key" is "larger d" — so
    // tracking the running max distance reproduces the in_open_open +
    // pairwise-compare scan verbatim, including first-wins ties.
    let dk = crate::id::clockwise_distance(state.id, key);
    let mut best: Option<Peer> = None;
    let mut best_d = 0u64;
    let mut consider = |p: Peer| {
        let d = crate::id::clockwise_distance(state.id, p.id);
        if d > best_d && (d < dk || dk == 0) {
            best_d = d;
            best = Some(p);
        }
    };
    for f in state.fingers.iter().flatten() {
        consider(*f);
    }
    for s in &state.successors {
        consider(*s);
    }
    best
}

/// Decides where `key` goes from `state`'s point of view.
///
/// Termination: if the key lies between this node and its immediate
/// successor, the successor is responsible (`Local` happens *at* that
/// successor); otherwise we forward to a strictly closer preceding node,
/// so the clockwise distance to `key` decreases every hop.
pub fn next_hop(state: &ChordState, key: NodeId) -> NextHop {
    if state.responsible_for(key) {
        return NextHop::Local;
    }
    if let Some(succ) = state.successor() {
        if in_open_closed(state.id, key, succ.id) {
            return NextHop::Forward(succ);
        }
    }
    match closest_preceding(state, key) {
        Some(p) => NextHop::Forward(p),
        // Routing table empty or useless: fall back to the successor.
        None => match state.successor() {
            Some(s) => NextHop::Forward(s),
            None => NextHop::Local, // singleton ring
        },
    }
}

/// Walks the route for `key` starting at node index `from` over a slice of
/// states (index == simulator index). Returns the node indices visited,
/// ending at the responsible node. Used by tests and by setup code that
/// needs hop counts without scheduling messages.
///
/// # Panics
/// Panics if the route exceeds `4 * 64` hops, which on a consistent ring
/// can only mean corrupted routing state.
pub fn route_path(states: &[ChordState], from: usize, key: NodeId) -> Vec<usize> {
    let mut path = vec![from];
    let mut cur = from;
    for _ in 0..(4 * 64) {
        match next_hop(&states[cur], key) {
            NextHop::Local => return path,
            NextHop::Forward(p) => {
                cur = p.idx;
                path.push(cur);
            }
        }
    }
    panic!("routing did not terminate for key {key:#x} from {from}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_ring, RingConfig};
    use hypersub_simnet::{SimTime, UniformTopology};

    fn ring(n: usize) -> Vec<ChordState> {
        let topo = UniformTopology::new(n, SimTime::from_millis(10));
        build_ring(&RingConfig::default(), &topo, 42)
    }

    #[test]
    fn route_terminates_at_responsible_node() {
        let states = ring(64);
        for key in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let path = route_path(&states, 0, key);
            let last = &states[*path.last().unwrap()];
            assert!(last.responsible_for(key), "key {key:#x}");
        }
    }

    #[test]
    fn all_pairs_route_correctly_small_ring() {
        let states = ring(16);
        for from in 0..16 {
            for target in 0..16 {
                let key = states[target].id;
                let path = route_path(&states, from, key);
                assert_eq!(
                    *path.last().unwrap(),
                    target,
                    "routing to an existing id must end at that node"
                );
            }
        }
    }

    #[test]
    fn hops_logarithmic() {
        let states = ring(256);
        let mut max_hops = 0;
        for from in 0..states.len() {
            let key = states[(from + 128) % 256].id.wrapping_add(1);
            let path = route_path(&states, from, key);
            max_hops = max_hops.max(path.len() - 1);
        }
        // log2(256) = 8; PNS/successor lists keep it close to that.
        assert!(
            max_hops <= 16,
            "max hops {max_hops} too large for 256 nodes"
        );
    }

    #[test]
    fn singleton_ring_is_local() {
        let states = ring(1);
        assert_eq!(next_hop(&states[0], 12345), NextHop::Local);
    }

    #[test]
    fn closest_preceding_never_overshoots() {
        let states = ring(64);
        let s = &states[0];
        for shift in 1..64 {
            let key = s.id.wrapping_add(1u64 << shift);
            if let Some(p) = closest_preceding(s, key) {
                assert!(crate::id::in_open_open(s.id, p.id, key));
            }
        }
    }
}
