//! Per-node Chord routing state.

use crate::id::{in_open_closed, in_open_open, NodeId};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// A reference to another node: its ring identifier plus its simulator
/// index (the "network address").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Peer {
    /// Ring identifier.
    pub id: NodeId,
    /// Simulator node index (stands in for an IP address).
    pub idx: usize,
}

/// Number of finger-table entries (one per identifier bit).
pub const NUM_FINGERS: usize = 64;

/// Chord routing state for one node.
///
/// Invariants maintained by the builder and the dynamic protocol:
/// * `successors` is sorted by clockwise distance from `id` and never
///   contains `id` itself;
/// * `fingers[i]`, when set, is the node the protocol currently believes
///   to be `successor(id + 2^i)`.
#[derive(Debug, Clone)]
pub struct ChordState {
    /// This node's ring identifier.
    pub id: NodeId,
    /// This node's simulator index.
    pub idx: usize,
    /// Immediate predecessor on the ring, if known.
    pub predecessor: Option<Peer>,
    /// Successor list, closest first.
    pub successors: Vec<Peer>,
    /// Finger table; entry `i` targets `id + 2^i`.
    pub fingers: Vec<Option<Peer>>,
    /// Maximum successor-list length.
    pub succ_list_len: usize,
}

impl ChordState {
    /// Fresh state for a node that has not joined any ring.
    pub fn new(id: NodeId, idx: usize, succ_list_len: usize) -> Self {
        assert!(
            succ_list_len >= 1,
            "successor list must hold at least one entry"
        );
        Self {
            id,
            idx,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; NUM_FINGERS],
            succ_list_len,
        }
    }

    /// This node as a [`Peer`].
    pub fn me(&self) -> Peer {
        Peer {
            id: self.id,
            idx: self.idx,
        }
    }

    /// The immediate successor, if any.
    pub fn successor(&self) -> Option<Peer> {
        self.successors.first().copied()
    }

    /// Is this node responsible for `key` (i.e. `key ∈ (predecessor, id]`)?
    ///
    /// A singleton ring (no predecessor, no successors) owns every key; a
    /// node that knows successors but not yet its predecessor (mid-join)
    /// conservatively claims only its own id.
    pub fn responsible_for(&self, key: NodeId) -> bool {
        match self.predecessor {
            Some(p) => in_open_closed(p.id, key, self.id),
            None => self.successors.is_empty() || key == self.id,
        }
    }

    /// The finger-table start for entry `i`: `id + 2^i`.
    pub fn finger_start(&self, i: usize) -> NodeId {
        self.id.wrapping_add(1u64 << i)
    }

    /// Inserts `peer` into the successor list, keeping it sorted by
    /// clockwise distance, deduplicated and truncated to `succ_list_len`.
    pub fn add_successor(&mut self, peer: Peer) {
        if peer.id == self.id {
            return;
        }
        if self.successors.contains(&peer) {
            return;
        }
        let me = self.id;
        // Full list and `peer` no closer than the current tail: the
        // push/sort/truncate below would drop it again, so skip the work
        // (distances from `me` are unique per id, making this exact).
        if self.successors.len() >= self.succ_list_len {
            if let Some(last) = self.successors.last() {
                if crate::id::clockwise_distance(me, peer.id)
                    >= crate::id::clockwise_distance(me, last.id)
                {
                    return;
                }
            }
        }
        self.successors.push(peer);
        self.successors
            .sort_by_key(|p| crate::id::clockwise_distance(me, p.id));
        self.successors.truncate(self.succ_list_len);
    }

    /// Removes a peer (by simulator index) from successors and fingers —
    /// used when a node is detected dead.
    pub fn evict(&mut self, idx: usize) {
        self.successors.retain(|p| p.idx != idx);
        for f in &mut self.fingers {
            if f.map(|p| p.idx) == Some(idx) {
                *f = None;
            }
        }
        if self.predecessor.map(|p| p.idx) == Some(idx) {
            self.predecessor = None;
        }
    }

    /// Offers `peer` as a predecessor candidate (Chord `notify`). Accepts
    /// if closer than the current predecessor.
    pub fn consider_predecessor(&mut self, peer: Peer) {
        if peer.id == self.id {
            return;
        }
        match self.predecessor {
            None => self.predecessor = Some(peer),
            Some(p) => {
                if in_open_open(p.id, peer.id, self.id) {
                    self.predecessor = Some(peer);
                }
            }
        }
    }

    /// Ring-adjacent neighbors (successor list + predecessor) — the
    /// "neighbors" §4's load balancer probes and migrates to. Migration
    /// partitions subscriptions by clockwise arcs, which only makes sense
    /// over ring-adjacent peers, and probing them keeps the mechanism
    /// light-weight compared to probing the whole finger table.
    pub fn close_neighbors(&self) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        for &s in &self.successors {
            if s.idx != self.idx && !out.contains(&s) {
                out.push(s);
            }
        }
        if let Some(p) = self.predecessor {
            if p.idx != self.idx && !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// All distinct routing neighbors (successors + fingers + predecessor).
    pub fn neighbors(&self) -> Vec<Peer> {
        let mut out: Vec<Peer> = Vec::new();
        let mut push = |p: Peer| {
            if p.idx != self.idx && !out.contains(&p) {
                out.push(p);
            }
        };
        for &s in &self.successors {
            push(s);
        }
        for f in self.fingers.iter().flatten() {
            push(*f);
        }
        if let Some(p) = self.predecessor {
            push(p);
        }
        out
    }
}

impl Encode for Peer {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        self.idx.encode(w);
    }
}

impl Decode for Peer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(Peer {
            id: r.take_u64()?,
            idx: usize::decode(r)?,
        })
    }
}

impl Encode for ChordState {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        self.idx.encode(w);
        self.predecessor.encode(w);
        self.successors.encode(w);
        self.fingers.encode(w);
        self.succ_list_len.encode(w);
    }
}

impl Decode for ChordState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let st = ChordState {
            id: r.take_u64()?,
            idx: usize::decode(r)?,
            predecessor: Option::<Peer>::decode(r)?,
            successors: Vec::<Peer>::decode(r)?,
            fingers: Vec::<Option<Peer>>::decode(r)?,
            succ_list_len: usize::decode(r)?,
        };
        if st.fingers.len() != NUM_FINGERS || st.succ_list_len == 0 {
            return Err(Error::InvalidValue("chord state shape"));
        }
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: NodeId) -> Peer {
        Peer {
            id,
            idx: id as usize,
        }
    }

    #[test]
    fn successor_list_sorted_and_truncated() {
        let mut s = ChordState::new(100, 0, 3);
        for id in [500, 200, 900, 101, 300] {
            s.add_successor(peer(id));
        }
        let ids: Vec<NodeId> = s.successors.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![101, 200, 300]);
    }

    #[test]
    fn successor_list_wraps_around_ring() {
        let mut s = ChordState::new(u64::MAX - 10, 0, 4);
        s.add_successor(peer(5));
        s.add_successor(peer(u64::MAX - 2));
        s.add_successor(peer(1000));
        let ids: Vec<NodeId> = s.successors.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![u64::MAX - 2, 5, 1000]);
    }

    #[test]
    fn no_self_or_duplicate_successors() {
        let mut s = ChordState::new(10, 0, 4);
        s.add_successor(peer(10));
        s.add_successor(peer(20));
        s.add_successor(peer(20));
        assert_eq!(s.successors.len(), 1);
    }

    #[test]
    fn responsibility() {
        let mut s = ChordState::new(100, 0, 4);
        // Singleton: owns everything.
        assert!(s.responsible_for(100));
        assert!(s.responsible_for(99));
        // Mid-join (successor known, predecessor not): owns only own id.
        s.add_successor(peer(200));
        assert!(s.responsible_for(100));
        assert!(!s.responsible_for(99));
        s.predecessor = Some(peer(50));
        assert!(s.responsible_for(51));
        assert!(s.responsible_for(100));
        assert!(!s.responsible_for(50));
        assert!(!s.responsible_for(101));
    }

    #[test]
    fn consider_predecessor_takes_closer() {
        let mut s = ChordState::new(100, 0, 4);
        s.consider_predecessor(peer(40));
        assert_eq!(s.predecessor, Some(peer(40)));
        s.consider_predecessor(peer(80));
        assert_eq!(s.predecessor, Some(peer(80)));
        s.consider_predecessor(peer(60));
        assert_eq!(s.predecessor, Some(peer(80)));
    }

    #[test]
    fn evict_scrubs_everything() {
        let mut s = ChordState::new(100, 0, 4);
        s.add_successor(Peer { id: 200, idx: 7 });
        s.fingers[3] = Some(Peer { id: 200, idx: 7 });
        s.predecessor = Some(Peer { id: 50, idx: 7 });
        s.evict(7);
        assert!(s.successors.is_empty());
        assert!(s.fingers[3].is_none());
        assert!(s.predecessor.is_none());
    }

    #[test]
    fn finger_start_wraps() {
        let s = ChordState::new(u64::MAX, 0, 4);
        assert_eq!(s.finger_start(0), 0);
        assert_eq!(s.finger_start(63), (1u64 << 63) - 1);
    }

    #[test]
    fn neighbors_dedup() {
        let mut s = ChordState::new(100, 0, 4);
        let p = Peer { id: 200, idx: 2 };
        s.add_successor(p);
        s.fingers[5] = Some(p);
        s.predecessor = Some(Peer { id: 50, idx: 3 });
        let n = s.neighbors();
        assert_eq!(n.len(), 2);
    }
}
