//! System configuration.

use hypersub_lph::ZoneParams;
use hypersub_simnet::SimTime;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// Load-balancing configuration (§4, "Dynamic Subscriptions Migration").
#[derive(Debug, Clone)]
pub struct LbConfig {
    /// Master switch (the paper's "no LB" vs "LB" configurations).
    pub enabled: bool,
    /// Probe/evaluate period.
    pub period: SimTime,
    /// Threshold factor δ: a node is heavily loaded when its load exceeds
    /// the neighbor average by `(1 + delta)`.
    pub delta: f64,
    /// Probing level P_l: 1 probes neighbors, 2 also neighbors' neighbors.
    pub probe_level: u8,
    /// Maximum number of migration targets k chosen per round.
    pub max_targets: usize,
    /// Absolute load floor (scaled by node capacity) below which a node
    /// never considers itself overloaded — keeps the relative rule
    /// meaningful when neighbors are empty and avoids migration churn for
    /// trivially small loads.
    pub min_load: u64,
}

impl Default for LbConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            period: SimTime::from_secs(30),
            delta: 1.0,
            probe_level: 1,
            max_targets: 4,
            min_load: 8,
        }
    }
}

impl LbConfig {
    /// The paper's evaluated configuration: enabled, P_l = 1, δ = 1.0.
    pub fn paper_default() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Ack/retransmit configuration for request-shaped protocol steps
/// (registration, unsubscription, chain pushes, migration handoff,
/// delivery hops). Off by default: on an ideal network the fail-stop
/// `on_send_failed` path already covers dead destinations, and acks would
/// only add traffic. Enable it (`SystemConfig::with_retries`) when the
/// network can silently lose messages (fault injection).
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Master switch.
    pub enabled: bool,
    /// Timeout before the first retransmit; doubles per attempt.
    pub base_timeout: SimTime,
    /// Total transmission attempts (first send included) before giving up.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            base_timeout: SimTime::from_millis(250),
            max_attempts: 5,
        }
    }
}

/// Self-healing configuration (§4, "soft-state refresh" made decentralized):
/// successor replication of rendezvous state plus per-subscriber soft-state
/// leases. Off by default — when disabled, no lease timers are armed, no
/// replica messages are sent, and run digests are bit-identical to builds
/// that predate this subsystem.
#[derive(Debug, Clone)]
pub struct HealConfig {
    /// Master switch.
    pub enabled: bool,
    /// Number of successors each rendezvous node replicates its
    /// subscription entries to (`r`). `0` disables replication but keeps
    /// leases: lost state still regenerates, just no faster than one lease
    /// period.
    pub replication_factor: usize,
    /// Period of the per-subscriber lease timer. Each node re-pushes its
    /// own subscriptions (and re-derives its surrogate chains) every
    /// period; timers are staggered per node so refreshes do not
    /// synchronize.
    pub lease_period: SimTime,
}

impl Default for HealConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            replication_factor: 2,
            lease_period: SimTime::from_secs(5),
        }
    }
}

/// Whole-system configuration shared by every node.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Zone geometry (base β, zone bits). The paper's default is base 2
    /// with 20 zone bits ("Base 2, level 20").
    pub zone: ZoneParams,
    /// Load balancing settings.
    pub lb: LbConfig,
    /// Ack/retransmit settings.
    pub retry: RetryConfig,
    /// Self-healing (replication + leases) settings.
    pub heal: HealConfig,
    /// Which matching-index structure repositories build (the bench's
    /// index-shape axis). Performance-only: every mode yields identical
    /// match sets and run digests. Deliberately *not* snapshot-encoded —
    /// a restored network reverts to the default mode, which cannot
    /// change results (see `core::index`).
    pub index_mode: crate::index::IndexMode,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            zone: ZoneParams::base2_level20(),
            lb: LbConfig::default(),
            retry: RetryConfig::default(),
            heal: HealConfig::default(),
            index_mode: crate::index::IndexMode::default(),
        }
    }
}

impl SystemConfig {
    /// Base 4 / level 10 variant (the paper's second configuration).
    pub fn base4() -> Self {
        Self {
            zone: ZoneParams::base4_level10(),
            ..Self::default()
        }
    }

    /// Enables load balancing with the paper's parameters.
    pub fn with_lb(mut self) -> Self {
        self.lb = LbConfig::paper_default();
        self
    }

    /// Enables ack + bounded-exponential-backoff retransmission for
    /// request-shaped protocol messages.
    pub fn with_retries(mut self) -> Self {
        self.retry.enabled = true;
        self
    }

    /// Enables the self-healing plane: successor replication of rendezvous
    /// state and per-subscriber soft-state leases, with the default
    /// replication factor and lease period.
    pub fn with_self_healing(mut self) -> Self {
        self.heal.enabled = true;
        self
    }

    /// Selects the matching-index structure (bench index-shape axis).
    pub fn with_index_mode(mut self, mode: crate::index::IndexMode) -> Self {
        self.index_mode = mode;
        self
    }
}

impl Encode for LbConfig {
    fn encode(&self, w: &mut Writer) {
        self.enabled.encode(w);
        self.period.encode(w);
        self.delta.encode(w);
        w.put_u8(self.probe_level);
        self.max_targets.encode(w);
        w.put_u64(self.min_load);
    }
}

impl Decode for LbConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(LbConfig {
            enabled: bool::decode(r)?,
            period: SimTime::decode(r)?,
            delta: f64::decode(r)?,
            probe_level: r.take_u8()?,
            max_targets: usize::decode(r)?,
            min_load: r.take_u64()?,
        })
    }
}

impl Encode for RetryConfig {
    fn encode(&self, w: &mut Writer) {
        self.enabled.encode(w);
        self.base_timeout.encode(w);
        w.put_u32(self.max_attempts);
    }
}

impl Decode for RetryConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(RetryConfig {
            enabled: bool::decode(r)?,
            base_timeout: SimTime::decode(r)?,
            max_attempts: r.take_u32()?,
        })
    }
}

impl Encode for HealConfig {
    fn encode(&self, w: &mut Writer) {
        self.enabled.encode(w);
        self.replication_factor.encode(w);
        self.lease_period.encode(w);
    }
}

impl Decode for HealConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(HealConfig {
            enabled: bool::decode(r)?,
            replication_factor: usize::decode(r)?,
            lease_period: SimTime::decode(r)?,
        })
    }
}

impl Encode for SystemConfig {
    fn encode(&self, w: &mut Writer) {
        self.zone.encode(w);
        self.lb.encode(w);
        self.retry.encode(w);
        self.heal.encode(w);
        // `index_mode` is deliberately not encoded: it selects a
        // result-neutral cache structure (every mode produces identical
        // match sets), and keeping it out preserves snapshot-format
        // byte stability. Restored networks use the default mode.
    }
}

impl Decode for SystemConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(SystemConfig {
            zone: ZoneParams::decode(r)?,
            lb: LbConfig::decode(r)?,
            retry: RetryConfig::decode(r)?,
            heal: HealConfig::decode(r)?,
            index_mode: crate::index::IndexMode::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SystemConfig::default();
        assert_eq!(c.zone.base(), 2);
        assert_eq!(c.zone.max_level(), 20);
        assert!(!c.lb.enabled);
        assert_eq!(c.lb.delta, 1.0);
        assert_eq!(c.lb.probe_level, 1);
    }

    #[test]
    fn base4_variant() {
        let c = SystemConfig::base4();
        assert_eq!(c.zone.base(), 4);
        assert_eq!(c.zone.max_level(), 10);
    }

    #[test]
    fn with_lb_enables() {
        assert!(SystemConfig::default().with_lb().lb.enabled);
    }

    #[test]
    fn self_healing_default_off_and_enable() {
        let c = SystemConfig::default();
        assert!(!c.heal.enabled);
        assert_eq!(c.heal.replication_factor, 2);
        assert_eq!(c.heal.lease_period, SimTime::from_secs(5));
        assert!(SystemConfig::default().with_self_healing().heal.enabled);
    }

    #[test]
    fn retries_default_off_and_enable() {
        let c = SystemConfig::default();
        assert!(!c.retry.enabled);
        assert_eq!(c.retry.max_attempts, 5);
        assert!(SystemConfig::default().with_retries().retry.enabled);
    }
}
