//! Event publication and delivery — Algorithms 4 and 5.
//!
//! **Publication (Algorithm 4)**: the publisher hashes the event point to
//! its maximum-level *rendezvous zone* (one per subscheme), initializes
//! the SubID list with the `(key(cz), NULL)` marker and sends the event
//! message toward the zone key's successor.
//!
//! **Delivery (Algorithm 5)**: each node receiving an event message
//! processes the SubID list in two phases. Targets this node is
//! responsible for are consumed: the NULL marker triggers rendezvous
//! matching against the leaf zone repository; an internal id resolves to a
//! local subscription (deliver to the application), a zone repository
//! (match and merge — this is how the event climbs the surrogate chain
//! toward ancestor zones), or a hosted migrated repository. All remaining
//! targets are grouped by their next DHT hop and forwarded in one message
//! per neighbor — the embedded-tree aggregation that saves bandwidth.

use crate::model::{Event, SchemeId, SubId, SubTarget};
use crate::msg::{DeliveryMsg, HyperMsg};
use crate::node::{HyperSubNode, IidTarget};
use crate::world::HyperWorld;
use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_simnet::{FxHashSet, NodeRuntime, ProtoEvent};
use std::sync::Arc;

/// Cap on pooled per-hop target buffers kept by a node between messages.
const TARGET_POOL_CAP: usize = 8;

/// Per-node reusable scratch for Algorithm 5. `handle_delivery` used to
/// allocate a fresh `HashSet` and `BTreeMap` per message; these buffers
/// persist across messages instead (cleared, capacity retained), making
/// the steady-state hot path allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeliveryScratch {
    /// Dedup of SubID-list entries merged during phase 1. Membership-only
    /// (never iterated), so the fixed-seed fast hasher is safe.
    seen: FxHashSet<SubTarget>,
    /// Targets grouped by next-hop neighbor index; a linear scan over the
    /// handful of distinct DHT links replaces the `BTreeMap`.
    groups: Vec<(usize, Vec<SubTarget>)>,
    /// Recycled target buffers for `groups` entries.
    pool: Vec<Vec<SubTarget>>,
}

impl HyperSubNode {
    /// Algorithm 4: publish an event from this node. The event id must be
    /// globally unique (it tags the event's bandwidth flow).
    pub fn publish_event<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        scheme_id: SchemeId,
        event: Event,
    ) {
        self.publish_impl(ctx, scheme_id, event, true);
    }

    /// Reference implementation of Algorithm 4 for differential testing:
    /// every subscheme copy gets its own deep-cloned event body instead of
    /// sharing one `Arc` allocation. A run driven through this path must
    /// be observationally identical to one driven through
    /// [`Self::publish_event`] — the property tests assert their run
    /// digests match.
    pub fn publish_event_owned<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        scheme_id: SchemeId,
        event: Event,
    ) {
        self.publish_impl(ctx, scheme_id, event, false);
    }

    fn publish_impl<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        scheme_id: SchemeId,
        event: Event,
        share: bool,
    ) {
        let (me, now) = (ctx.me(), ctx.now());
        let expected = ctx.world().oracle.expected_count(scheme_id, &event.point);
        ctx.world()
            .metrics
            .record_publish(event.id, now, me, expected);
        let event = Arc::new(event);
        let scheme = self.registry.scheme(scheme_id);
        let n_subschemes = scheme.subschemes.len() as u8;
        for ss in 0..n_subschemes {
            let proj = self
                .registry
                .scheme(scheme_id)
                .project_point(ss, &event.point);
            let (_leaf, target) = self.rendezvous_target(scheme_id, ss, &proj);
            let msg = DeliveryMsg {
                scheme: scheme_id,
                ss,
                event: if share {
                    Arc::clone(&event)
                } else {
                    Arc::new((*event).clone())
                },
                hops: 0,
                sender: None,
                targets: vec![target],
            };
            self.handle_delivery(ctx, msg);
        }
    }

    /// Algorithm 5: process an event message.
    pub(crate) fn handle_delivery<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        mut msg: DeliveryMsg,
    ) {
        // Piggybacked DHT maintenance: the forwarding node is evidently
        // alive and a valid routing candidate.
        if let Some(sender) = msg.sender.take() {
            self.maint.observe_peer(sender);
        }
        let scheme = self.registry.scheme(msg.scheme);
        let proj_owned;
        let proj = if scheme.projection_is_identity(msg.ss, msg.event.point.0.len()) {
            &msg.event.point
        } else {
            proj_owned = scheme.project_point(msg.ss, &msg.event.point);
            &proj_owned
        };

        // Phase 1: consume targets we are responsible for; matching may
        // produce new targets (the merged matched SubID list). The working
        // queue reuses the incoming message's target buffer; the seen-set
        // and hop groups are per-node scratch (taken out of `self` so
        // `consume_target` can borrow `self` mutably alongside them).
        let mut queue: Vec<SubTarget> = std::mem::take(&mut msg.targets);
        let mut seen = std::mem::take(&mut self.scratch.seen);
        let mut groups = std::mem::take(&mut self.scratch.groups);
        let mut pool = std::mem::take(&mut self.scratch.pool);
        debug_assert!(seen.is_empty() && groups.is_empty());
        seen.extend(queue.iter().copied());
        while let Some(t) = queue.pop() {
            // `next_hop` already starts with the responsibility check, so
            // a single call decides consume-vs-forward (`Local` also
            // covers the degenerate no-routing-state ring).
            match next_hop(&self.maint.chord, t.nid) {
                NextHop::Forward(p) => match groups.iter_mut().find(|(idx, _)| *idx == p.idx) {
                    Some((_, v)) => v.push(t),
                    None => {
                        let mut v = pool.pop().unwrap_or_default();
                        v.push(t);
                        groups.push((p.idx, v));
                    }
                },
                NextHop::Local => self.consume_target(ctx, &msg, proj, t, &mut queue, &mut seen),
            }
        }

        // Phase 2: forward one aggregated message per DHT link, in
        // ascending neighbor order — the deterministic send order the
        // previous BTreeMap-based implementation produced (neighbor
        // indices are unique keys, so unstable sort is exact).
        groups.sort_unstable_by_key(|&(idx, _)| idx);
        if !groups.is_empty() {
            let me = ctx.me();
            let m = &mut ctx.world().metrics.proto;
            m.delivery_splits.inc(me);
            m.delivery_fanout.observe(groups.len() as u64);
            ctx.trace(|| ProtoEvent {
                kind: "delivery.split",
                flow: Some(msg.event.id),
                a: groups.len() as u64,
                b: groups.iter().map(|(_, v)| v.len() as u64).sum(),
            });
        }
        for (idx, targets) in groups.drain(..) {
            self.send_reliable(
                ctx,
                idx,
                HyperMsg::Delivery(DeliveryMsg {
                    scheme: msg.scheme,
                    ss: msg.ss,
                    event: Arc::clone(&msg.event),
                    hops: msg.hops + 1,
                    sender: Some(self.maint.chord.me()),
                    targets,
                }),
            );
        }

        // Hand the buffers back for the next message; the drained working
        // queue refills the target pool.
        seen.clear();
        if pool.len() < TARGET_POOL_CAP {
            queue.clear();
            pool.push(queue);
        }
        self.scratch.seen = seen;
        self.scratch.groups = groups;
        self.scratch.pool = pool;
    }

    /// Consumes one SubID-list entry this node is responsible for.
    fn consume_target<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        msg: &DeliveryMsg,
        proj: &hypersub_lph::Point,
        t: SubTarget,
        queue: &mut Vec<SubTarget>,
        seen: &mut FxHashSet<SubTarget>,
    ) {
        let mut merge = |matched: Vec<SubId>, queue: &mut Vec<SubTarget>| {
            for sid in matched {
                let nt = SubTarget::sub(sid);
                if seen.insert(nt) {
                    queue.push(nt);
                }
            }
        };
        match t.iid {
            None => {
                // Rendezvous marker: match every local repository on the
                // path from the event's leaf zone to the root. Locally
                // hosted zones are not chained to each other (the chain
                // collapse optimization in `install.rs`), so the walk is
                // what finds them; chains to *remote* ancestor zones
                // continue via the owner links in the matched entries.
                let ssdef = &self.registry.scheme(msg.scheme).subschemes[msg.ss as usize];
                let leaf = hypersub_lph::lph_point(&self.cfg.zone, &ssdef.space, proj);
                let mut z = leaf;
                let mut matched = 0u64;
                loop {
                    if let Some(repo) = self.repos.get_mut(&(msg.scheme, msg.ss, z)) {
                        if self.dedup.insert((msg.event.id, repo.iid)) {
                            let ids = repo.match_point(&msg.event.point, proj, self.cfg.index_mode);
                            matched += ids.len() as u64;
                            merge(ids, queue);
                        }
                    }
                    match z.parent(&self.cfg.zone) {
                        Some(p) => z = p,
                        None => break,
                    }
                }
                let me = ctx.me();
                ctx.world().metrics.proto.rendezvous_matches.inc(me);
                ctx.trace(|| ProtoEvent {
                    kind: "delivery.rendezvous",
                    flow: Some(msg.event.id),
                    a: matched,
                    b: 0,
                });
            }
            Some(iid) if t.nid != self.maint.chord.id => {
                // We are the key's successor but not the node this target
                // names: the named node (and the state its internal id
                // referred to) is gone. Interpreting a foreign internal id
                // against our own table would mis-deliver; drop instead —
                // the soft-state leases re-establish valid chains.
                let _ = iid;
            }
            // Each (event, iid) pair is handled at most once per node —
            // the visit-once invariant that makes delivery idempotent
            // under retransmission and fault-injected duplication.
            Some(iid) if self.dedup.insert((msg.event.id, iid)) => {
                match self.iids.get(&iid).copied() {
                    Some(IidTarget::Local) => {
                        // Deliver to the local application/user.
                        let now = ctx.now();
                        ctx.world().metrics.record_delivery(
                            msg.event.id,
                            SubId { nid: t.nid, iid },
                            now,
                            msg.hops,
                        );
                        ctx.trace(|| ProtoEvent {
                            kind: "delivery.local",
                            flow: Some(msg.event.id),
                            a: iid as u64,
                            b: msg.hops as u64,
                        });
                    }
                    Some(IidTarget::Repo(key)) => {
                        if let Some(repo) = self.repos.get_mut(&key) {
                            merge(
                                repo.match_point(&msg.event.point, proj, self.cfg.index_mode),
                                queue,
                            );
                        }
                    }
                    Some(IidTarget::Hosted) => {
                        if let Some(h) = self.hosted.get(&iid) {
                            merge(h.match_point(&msg.event.point), queue);
                        }
                    }
                    // Stale target (e.g. responsibility shifted after
                    // churn): nothing to do.
                    None => {}
                }
            }
            // Duplicate (event, iid): already handled above.
            Some(_) => {}
        }
    }
}
