//! Stable run digests for golden regression tests and the perf harness.
//!
//! A digest folds every observable outcome of a simulation run — each
//! delivered `(event, subid, time, hops)` tuple in delivery order, plus
//! the full [`NetStats`] counter set — into one `u64` via FNV-1a. Two
//! runs of the same seeded scenario must produce the same digest;
//! hot-path optimizations are required to keep it bit-identical, which
//! the `golden` integration test enforces against hard-coded values.

use crate::metrics::DeliveryRecord;
use hypersub_simnet::NetStats;

/// Incremental FNV-1a (64-bit) hasher. Not cryptographic — chosen for
/// a stable, dependency-free, platform-independent fold.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of the delivery trace: every record in recorded (delivery)
/// order. Any reordering or content change — even among same-time
/// deliveries — changes the digest.
pub fn delivery_digest(deliveries: &[DeliveryRecord]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(deliveries.len() as u64);
    for d in deliveries {
        h.write_u64(d.event);
        h.write_u64(d.subid.nid);
        h.write_u64(d.subid.iid as u64);
        h.write_u64(d.time.as_micros());
        h.write_u64(d.hops as u64);
    }
    h.finish()
}

/// Digest of the network counters: per-node traffic in index order,
/// per-flow traffic in ascending flow-id order, and every global
/// counter.
pub fn netstats_digest(net: &NetStats) -> u64 {
    let mut h = Fnv1a::new();
    for t in net.nodes() {
        h.write_u64(t.bytes_in);
        h.write_u64(t.bytes_out);
        h.write_u64(t.msgs_in);
        h.write_u64(t.msgs_out);
    }
    let mut flows: Vec<_> = net.flows().iter().map(|(&id, &f)| (id, f)).collect();
    flows.sort_unstable_by_key(|(id, _)| *id);
    for (id, f) in flows {
        h.write_u64(id);
        h.write_u64(f.bytes);
        h.write_u64(f.msgs);
    }
    for v in [
        net.dropped(),
        net.fault_dropped(),
        net.partition_dropped(),
        net.duplicated(),
        net.total_msgs(),
        net.total_bytes(),
    ] {
        h.write_u64(v);
    }
    h.finish()
}

/// Combined run digest: delivery trace plus network counters.
pub fn run_digest(deliveries: &[DeliveryRecord], net: &NetStats) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(delivery_digest(deliveries));
    h.write_u64(netstats_digest(net));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SubId;
    use hypersub_simnet::SimTime;

    fn rec(event: u64, nid: u64, t: u64) -> DeliveryRecord {
        DeliveryRecord {
            event,
            subid: SubId { nid, iid: 1 },
            time: SimTime::from_micros(t),
            hops: 3,
        }
    }

    #[test]
    fn fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = [rec(1, 1, 10), rec(2, 2, 10)];
        let b = [rec(2, 2, 10), rec(1, 1, 10)];
        assert_ne!(delivery_digest(&a), delivery_digest(&b));
    }

    #[test]
    fn digest_is_stable() {
        let a = [rec(1, 1, 10), rec(2, 2, 20)];
        assert_eq!(delivery_digest(&a), delivery_digest(&a));
        let mut net = NetStats::new(2);
        net.record_out(0, 100, Some(1));
        net.record_in(1, 100);
        assert_eq!(netstats_digest(&net), netstats_digest(&net.clone()));
        assert_eq!(run_digest(&a, &net), run_digest(&a, &net));
    }
}
