//! Typed errors for the public [`crate::sim::Network`] API.
//!
//! Historically the driver surface mixed three failure styles: silent
//! `bool` returns (`unsubscribe`), panics (`node(i)` and `publish` with an
//! out-of-range index, builder assertions), and implicit no-ops. All of
//! those now flow through [`HyperSubError`], so callers can distinguish
//! "you asked about a node that does not exist" from "that subscription
//! was already cancelled" without reading the source.

use crate::model::SubId;
use std::fmt;

/// Errors returned by the [`crate::sim::Network`] driver API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HyperSubError {
    /// A node index was at or beyond the network size.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// The network size.
        nodes: usize,
    },
    /// The operation targets a node that is currently failed.
    DeadNode {
        /// The failed node's index.
        node: usize,
    },
    /// The operation (e.g. [`crate::sim::Network::revive`]) requires a
    /// failed node, but the node is alive.
    AliveNode {
        /// The live node's index.
        node: usize,
    },
    /// The subscription id does not name a live local subscription
    /// (never issued, or already unsubscribed).
    UnknownSubscription {
        /// The id that was not found.
        sub: SubId,
    },
    /// The subscription id belongs to a different node than the one the
    /// operation was addressed to.
    ForeignSubscription {
        /// The node the operation was addressed to.
        node: usize,
        /// The id, whose `nid` names some other node.
        sub: SubId,
    },
    /// A builder was given an inconsistent or unusable configuration.
    InvalidConfig(&'static str),
    /// [`crate::sim::Network::snapshot`] was called on a network built
    /// without [`crate::sim::SnapshotConfig`] enabled.
    SnapshotsDisabled,
    /// A snapshot could not be encoded or decoded (corrupt bytes, a
    /// version mismatch, or state the format cannot capture).
    Snapshot(hypersub_snapshot::Error),
}

impl From<hypersub_snapshot::Error> for HyperSubError {
    fn from(e: hypersub_snapshot::Error) -> Self {
        HyperSubError::Snapshot(e)
    }
}

impl fmt::Display for HyperSubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperSubError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "node index {node} out of range (network has {nodes} nodes)"
                )
            }
            HyperSubError::DeadNode { node } => write!(f, "node {node} is failed"),
            HyperSubError::AliveNode { node } => {
                write!(f, "node {node} is alive (expected a failed node)")
            }
            HyperSubError::UnknownSubscription { sub } => {
                write!(f, "no live local subscription {sub:?}")
            }
            HyperSubError::ForeignSubscription { node, sub } => {
                write!(f, "subscription {sub:?} does not belong to node {node}")
            }
            HyperSubError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            HyperSubError::SnapshotsDisabled => {
                write!(
                    f,
                    "snapshots are not enabled on this network \
                     (build with SnapshotConfig::enabled())"
                )
            }
            HyperSubError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for HyperSubError {}

/// Result alias for the driver API.
pub type Result<T, E = HyperSubError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HyperSubError::NodeOutOfRange { node: 9, nodes: 4 };
        assert_eq!(
            e.to_string(),
            "node index 9 out of range (network has 4 nodes)"
        );
        let e = HyperSubError::InvalidConfig("zero nodes");
        assert!(e.to_string().contains("zero nodes"));
        let e = HyperSubError::DeadNode { node: 2 };
        assert!(e.to_string().contains("failed"));
        let e = HyperSubError::AliveNode { node: 3 };
        assert!(e.to_string().contains("alive"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            HyperSubError::DeadNode { node: 1 },
            HyperSubError::DeadNode { node: 1 }
        );
        assert_ne!(
            HyperSubError::DeadNode { node: 1 },
            HyperSubError::DeadNode { node: 2 }
        );
    }
}
