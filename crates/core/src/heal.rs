//! The self-healing subscription plane: successor replication,
//! per-subscriber soft-state leases, and ownership handoff.
//!
//! The paper (§4) defers churn handling to Chord's self-stabilization plus
//! "soft-state refresh by subscribers", without specifying the refresh as
//! a protocol. This module makes it one — fully decentralized, no global
//! view:
//!
//! * **Successor replication** — each rendezvous node replicates its zone
//!   repositories (real entries, surrogate-chain covers, and load-balance
//!   acceptor surrogates alike — everything in `repos`) to its first `r`
//!   successors: a full snapshot per lease tick (replace semantics, which
//!   doubles as anti-entropy reconciliation) plus an incremental update
//!   per fresh registration (bounding the loss window for new state to a
//!   message latency). Replicas are stored passively in
//!   [`HyperSubNode::replicas`], keyed by origin; receivers never
//!   re-replicate on receipt, so replication cannot loop.
//! * **Promotion (ownership handoff)** — when stabilization moves this
//!   node's predecessor behind a replica origin's key (the origin died and
//!   its arc merged into ours), the replica set is *promoted*: every entry
//!   is registered into this node's own repositories via the ordinary
//!   Algorithm 3 path, which rebuilds summary filters and surrogate chains
//!   and re-replicates onward. Duplicate delivery is impossible even if a
//!   false suspicion promotes state that is still alive elsewhere: the
//!   subscriber-side `(event, iid)` dedup absorbs multi-path matches.
//! * **Soft-state leases** — every node re-pushes its own subscriptions
//!   and re-derives its surrogate chains on a staggered periodic timer
//!   (idempotent through `ZoneRepo::insert` and the reliable layer's seen
//!   cache), so any state the above misses regenerates within one lease
//!   period.
//! * **Re-homing** — subscriptions this node migrated to a host that died
//!   (fail-stop notification or `retry.give_up`) have their acceptor
//!   surrogates scrubbed; the subscribers' own leases then re-install the
//!   real entries here.
//! * **Scrubbing** — each lease tick first drops every repository whose
//!   zone key has left this node's responsibility arc. Soft state cuts
//!   both ways: leases re-install what a node *should* hold, and
//!   scrubbing removes what it should not — without it, every ownership
//!   change strands repositories on the previous owner, which leases
//!   keep re-pushing and replication keeps spreading, compounding total
//!   state under sustained churn (found by the churn-soak scenario;
//!   pinned by `lease_ticks_scrub_repositories_the_ring_took_away`).
//!
//! Everything is gated on `SystemConfig::heal.enabled`: when off, no lease
//! timer is armed, no replica message is sent and every hook below is a
//! no-op, so run digests are bit-identical to builds without this module
//! (asserted by `prop_self_healing_off_never_changes_run_digest`).

use crate::model::SubId;
use crate::msg::{HyperMsg, ReplicaBatch};
use crate::node::{HyperSubNode, TOKEN_LEASE};
use crate::repo::{RepoKey, StoredSub};
use crate::world::HyperWorld;
use hypersub_chord::Peer;
use hypersub_simnet::{FxHashMap, NodeRuntime, ProtoEvent};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// One origin's replicated rendezvous state, held by a successor.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    /// The rendezvous node this state belongs to.
    pub origin: Peer,
    /// Its repositories' entries, keyed like the origin's own `repos`.
    pub repos: FxHashMap<RepoKey, FxHashMap<SubId, StoredSub>>,
}

impl ReplicaSet {
    /// An empty replica set for `origin`.
    pub fn new(origin: Peer) -> Self {
        Self {
            origin,
            repos: FxHashMap::default(),
        }
    }

    /// Total replicated entries across all repositories.
    pub fn len(&self) -> usize {
        self.repos.values().map(|m| m.len()).sum()
    }

    /// True when no entries are replicated.
    pub fn is_empty(&self) -> bool {
        self.repos.values().all(|m| m.is_empty())
    }
}

impl HyperSubNode {
    /// The first `r` distinct successors (excluding self) that replicas
    /// go to.
    fn replica_targets(&self) -> Vec<Peer> {
        let me = self.maint.chord.idx;
        self.maint
            .chord
            .successors
            .iter()
            .filter(|p| p.idx != me)
            .take(self.cfg.heal.replication_factor)
            .copied()
            .collect()
    }

    /// One soft-state lease tick: re-arm the timer, re-push local
    /// subscriptions and surrogate chains, snapshot-replicate owned
    /// repositories, and sweep replicas for due promotions (anti-entropy:
    /// an ownership change whose chord signal was missed is caught here at
    /// the latest).
    pub(crate) fn lease_tick<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        ctx.set_timer(self.cfg.heal.lease_period, TOKEN_LEASE);
        let me = ctx.me();
        ctx.world().metrics.proto.lease_refreshes.inc(me);
        let me = me as u64;
        ctx.trace(|| ProtoEvent {
            kind: "repair.lease",
            flow: None,
            a: me,
            b: 0,
        });
        self.scrub_foreign_repos(ctx);
        self.refresh_subscriptions(ctx);
        self.rebuild_chains(ctx);
        self.replicate_snapshot(ctx);
        self.heal_check_promotions(ctx);
    }

    /// Drops every repository whose zone key has left this node's
    /// responsibility arc. A zone repository lives at the zone key's
    /// Chord successor; after the ring shifts (churn, promotion of a
    /// dead origin's replicas — which registers the origin's *whole*
    /// repo union here) this node can hold repositories it no longer
    /// owns. Keeping them is not just waste: `rebuild_chains` keeps
    /// re-pushing them and `replicate_snapshot` keeps copying them to
    /// successors, so under sustained churn every node's state converges
    /// to the union of every repository that ever existed — compounding
    /// each time ownership moves. Soft state means the inverse must
    /// hold: what this node does not own here and now is garbage, and
    /// the real owners' leases re-install live state within one period.
    ///
    /// Skipped while the predecessor is unknown (mid-join view):
    /// `responsible_for` then claims only our own id, and scrubbing on
    /// that view would drop everything we legitimately hold.
    fn scrub_foreign_repos<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        if self.maint.chord.predecessor.is_none() {
            return;
        }
        let zone_params = self.cfg.zone;
        let mut stale: Vec<RepoKey> = self
            .repos
            .keys()
            .copied()
            .filter(|&(scheme, ss, zone)| {
                let rotation = self.registry.scheme(scheme).subschemes[ss as usize].rotation;
                let key = hypersub_lph::rotation::rotate_key(zone.key(&zone_params), rotation);
                !self.maint.chord.responsible_for(key)
            })
            .collect();
        if stale.is_empty() {
            return;
        }
        stale.sort_unstable();
        let mut dropped = 0u64;
        for k in &stale {
            if let Some(repo) = self.repos.remove(k) {
                dropped += repo.entries.len() as u64;
                self.iids.remove(&repo.iid);
            }
        }
        ctx.trace(|| ProtoEvent {
            kind: "repair.scrub",
            flow: None,
            a: stale.len() as u64,
            b: dropped,
        });
    }

    /// Sends a full snapshot of every owned repository to the replica
    /// targets (replace semantics at the receiver).
    fn replicate_snapshot<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        let targets = self.replica_targets();
        if targets.is_empty() || self.repos.is_empty() {
            return;
        }
        // Sorted: replica message contents must be a function of state,
        // not of hash iteration order.
        let mut keys: Vec<RepoKey> = self.repos.keys().copied().collect();
        keys.sort_unstable();
        let batches: Vec<ReplicaBatch> = keys
            .into_iter()
            .filter_map(|key| {
                let repo = &self.repos[&key];
                if repo.entries.is_empty() {
                    return None;
                }
                let mut entries: Vec<(SubId, StoredSub)> = repo
                    .entries
                    .iter()
                    .map(|(&id, s)| (id, s.clone()))
                    .collect();
                entries.sort_unstable_by_key(|&(id, _)| id);
                Some(ReplicaBatch { key, entries })
            })
            .collect();
        if batches.is_empty() {
            return;
        }
        let origin = self.maint.chord.me();
        for t in targets {
            self.send_reliable(
                ctx,
                t.idx,
                HyperMsg::ReplicaUpdate {
                    origin,
                    full: true,
                    repos: batches.clone(),
                },
            );
        }
    }

    /// Incrementally replicates one just-registered entry (merge semantics
    /// at the receiver). No-op when self-healing is off.
    pub(crate) fn replicate_entry<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        key: RepoKey,
        id: SubId,
    ) {
        if !self.cfg.heal.enabled {
            return;
        }
        let Some(sub) = self
            .repos
            .get(&key)
            .and_then(|r| r.entries.get(&id))
            .cloned()
        else {
            return;
        };
        let targets = self.replica_targets();
        if targets.is_empty() {
            return;
        }
        let origin = self.maint.chord.me();
        for t in targets {
            self.send_reliable(
                ctx,
                t.idx,
                HyperMsg::ReplicaUpdate {
                    origin,
                    full: false,
                    repos: vec![ReplicaBatch {
                        key,
                        entries: vec![(id, sub.clone())],
                    }],
                },
            );
        }
    }

    /// Receiver side of [`HyperMsg::ReplicaUpdate`]: store (replace or
    /// merge) the origin's entries, then check whether the origin's keys
    /// already belong to us (it may have died before this message drained).
    pub(crate) fn handle_replica<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        origin: Peer,
        full: bool,
        repos: Vec<ReplicaBatch>,
    ) {
        if !self.cfg.heal.enabled || origin.idx == ctx.me() {
            return;
        }
        let set = self
            .replicas
            .entry(origin.idx)
            .or_insert_with(|| ReplicaSet::new(origin));
        set.origin = origin;
        if full {
            set.repos.clear();
        }
        let mut stored = 0u64;
        for b in repos {
            let m = set.repos.entry(b.key).or_default();
            for (id, s) in b.entries {
                m.insert(id, s);
                stored += 1;
            }
        }
        let me = ctx.me();
        ctx.world().metrics.proto.replica_entries.add(me, stored);
        ctx.trace(|| ProtoEvent {
            kind: "repair.replicate",
            flow: None,
            a: origin.idx as u64,
            b: stored,
        });
        self.heal_check_promotions(ctx);
    }

    /// Ownership handoff: promotes every replica set whose origin's key
    /// now falls inside this node's responsibility arc. While an origin is
    /// alive it owns its own key (`responsible_for(origin.id)` is false at
    /// every other node), so promotion triggers exactly when the origin
    /// died *and* stabilization extended our arc over it — at which point
    /// its entire former arc is ours and all of its entries belong here.
    pub(crate) fn heal_check_promotions<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
    ) {
        if !self.cfg.heal.enabled || self.replicas.is_empty() {
            return;
        }
        // Sorted by origin index: promotion emits registration and
        // replication traffic, whose order must be deterministic.
        let mut due: Vec<usize> = self
            .replicas
            .iter()
            .filter(|(&idx, set)| {
                idx != self.maint.chord.idx && self.maint.chord.responsible_for(set.origin.id)
            })
            .map(|(&idx, _)| idx)
            .collect();
        due.sort_unstable();
        for idx in due {
            let Some(set) = self.replicas.remove(&idx) else {
                continue;
            };
            let mut keys: Vec<RepoKey> = set.repos.keys().copied().collect();
            keys.sort_unstable();
            let mut promoted = 0u64;
            for key in keys {
                let mut entries: Vec<(SubId, StoredSub)> = set.repos[&key]
                    .iter()
                    .map(|(&id, s)| (id, s.clone()))
                    .collect();
                entries.sort_unstable_by_key(|&(id, _)| id);
                for (id, sub) in entries {
                    self.register_entry(ctx, key, id, sub);
                    promoted += 1;
                }
            }
            let me = ctx.me();
            ctx.world().metrics.proto.promotions.inc(me);
            ctx.trace(|| ProtoEvent {
                kind: "repair.promote",
                flow: None,
                a: idx as u64,
                b: promoted,
            });
        }
    }

    /// A peer is dead (fail-stop notification or exhausted retries):
    /// re-home subscriptions this node migrated to it by dropping the
    /// forwarding index entries and scrubbing the acceptor's surrogate
    /// covers, so matching stops producing targets at the dead host. The
    /// subscribers' own leases re-install the real entries here within one
    /// lease period.
    pub(crate) fn heal_on_peer_dead<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        dst: usize,
    ) {
        if !self.cfg.heal.enabled {
            return;
        }
        let mut dead_entries: Vec<((RepoKey, SubId), Peer)> = self
            .lb
            .migrated_index
            .iter()
            .filter(|&(_, p)| p.idx == dst)
            .map(|(&k, &p)| (k, p))
            .collect();
        if dead_entries.is_empty() {
            return;
        }
        dead_entries.sort_unstable_by_key(|&(k, _)| k);
        let mut rehomed = 0u64;
        for ((rk, sid), host) in dead_entries {
            self.lb.migrated_index.remove(&(rk, sid));
            if let Some(repo) = self.repos.get_mut(&rk) {
                let stale: Vec<SubId> = repo
                    .entries
                    .iter()
                    .filter(|(s, e)| s.nid == host.id && !e.is_real())
                    .map(|(&s, _)| s)
                    .collect();
                for s in stale {
                    repo.remove(&s);
                }
            }
            rehomed += 1;
        }
        let me = ctx.me();
        ctx.world().metrics.proto.rehomed_subs.add(me, rehomed);
        ctx.trace(|| ProtoEvent {
            kind: "repair.rehome",
            flow: None,
            a: dst as u64,
            b: rehomed,
        });
    }
}

impl Encode for ReplicaSet {
    fn encode(&self, w: &mut Writer) {
        self.origin.encode(w);
        let mut keys: Vec<RepoKey> = self.repos.keys().copied().collect();
        keys.sort_unstable();
        w.put_u64(keys.len() as u64);
        for k in keys {
            k.encode(w);
            crate::repo::encode_map_sorted(&self.repos[&k], w);
        }
    }
}

impl Decode for ReplicaSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let origin = Peer::decode(r)?;
        let n = r.take_u64()? as usize;
        let mut repos = FxHashMap::default();
        for _ in 0..n {
            let k = RepoKey::decode(r)?;
            repos.insert(k, crate::repo::decode_map(r)?);
        }
        Ok(ReplicaSet { origin, repos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_lph::Rect;

    #[test]
    fn replica_set_counts_entries() {
        let mut set = ReplicaSet::new(Peer { id: 7, idx: 3 });
        assert!(set.is_empty());
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        set.repos
            .entry((0, 0, hypersub_lph::ZoneCode::ROOT))
            .or_default()
            .insert(SubId { nid: 1, iid: 1 }, StoredSub::Surrogate { proj: r });
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }
}
