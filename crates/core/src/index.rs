//! Local event-matching index for surrogate repositories.
//!
//! §3.3: "There may be indexing structures maintained on the surrogate
//! node to facilitate local event matching; however, this is not the
//! focus of this paper." This module supplies one: a uniform grid over
//! the first one or two dimensions of the stored (projected) rects. Each
//! entry is registered in every cell its interval(s) overlap; a point
//! query scans only the point's cell and then verifies candidates
//! exactly, so the index can only prune, never change results.
//!
//! Repositories switch to the grid once they exceed
//! [`GridIndex::THRESHOLD`] entries (hot zones under skewed workloads
//! collect thousands); below that a linear scan is faster than any
//! structure.

use crate::model::SubId;
use hypersub_lph::{Point, Rect};

/// A uniform grid over entry intervals on the leading dimension(s): two
/// axes when the stored rects have ≥ 2 dimensions, one otherwise. An
/// axis whose entries all coincide collapses to a single cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    lo: [f64; 2],
    width: [f64; 2],
    /// Cells per axis (1 for collapsed/inactive axes).
    n: [usize; 2],
    /// How many leading point dimensions index lookups consume.
    dims: usize,
    cells: Vec<Vec<SubId>>,
}

impl GridIndex {
    /// Entry count at which a repository builds a grid.
    pub const THRESHOLD: usize = 64;
    /// Number of cells on an active axis in the 1-D case.
    pub const CELLS: usize = 64;
    /// Number of cells per active axis in the 2-D case (16² = 256 cells,
    /// comparable total registration cost to the 1-D layout but with
    /// candidate lists pruned on both axes).
    pub const AXIS_CELLS_2D: usize = 16;

    /// Builds a grid from `(id, rect)` pairs. Returns `None` when every
    /// indexable axis spans a degenerate range (the grid would not prune
    /// anything).
    pub fn build<'a, I>(entries: I) -> Option<GridIndex>
    where
        I: Iterator<Item = (&'a SubId, &'a Rect)> + Clone,
    {
        let mut dims = usize::MAX;
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for (_, r) in entries.clone() {
            dims = dims.min(r.lo.len()).min(2);
            for d in 0..dims {
                lo[d] = lo[d].min(r.lo[d]);
                hi[d] = hi[d].max(r.hi[d]);
            }
        }
        if dims == usize::MAX || dims == 0 {
            return None;
        }
        let per_axis = if dims == 2 {
            Self::AXIS_CELLS_2D
        } else {
            Self::CELLS
        };
        let mut width = [1.0; 2];
        let mut n = [1usize; 2];
        let mut active = false;
        for d in 0..dims {
            if lo[d].is_finite() && hi[d].is_finite() && hi[d] > lo[d] {
                width[d] = (hi[d] - lo[d]) / per_axis as f64;
                n[d] = per_axis;
                active = true;
            } else {
                lo[d] = if lo[d].is_finite() { lo[d] } else { 0.0 };
            }
        }
        if !active {
            return None;
        }
        let mut grid = GridIndex {
            lo,
            width,
            n,
            dims,
            cells: vec![Vec::new(); n[0] * n[1]],
        };
        for (&id, r) in entries {
            grid.register(id, r);
        }
        Some(grid)
    }

    /// The clamped cell range an interval covers on axis `d`. Negative
    /// offsets saturate to 0 under `as usize`, clamping below; `min`
    /// clamps above — exactly where queries clamp, so the candidate set
    /// stays a superset of the true matches.
    fn span(&self, d: usize, lo: f64, hi: f64) -> (usize, usize) {
        let first = (((lo - self.lo[d]) / self.width[d]) as usize).min(self.n[d] - 1);
        let last = (((hi - self.lo[d]) / self.width[d]) as usize).min(self.n[d] - 1);
        (first, last)
    }

    /// Registers one more entry into the cells its leading interval(s)
    /// cover, keeping the bounds fixed at build time. This is what makes
    /// the index incremental: inserts extend it in place instead of
    /// discarding it.
    pub fn register(&mut self, id: SubId, r: &Rect) {
        let (x0, x1) = self.span(0, r.lo[0], r.hi[0]);
        let (y0, y1) = if self.dims == 2 {
            self.span(1, r.lo[1], r.hi[1])
        } else {
            (0, 0)
        };
        for x in x0..=x1 {
            for cell in self
                .cells
                .iter_mut()
                .skip(x * self.n[1] + y0)
                .take(y1 - y0 + 1)
            {
                cell.push(id);
            }
        }
    }

    /// Candidate entries whose leading interval(s) may contain `p`. Exact
    /// verification is the caller's job. A point query reads exactly one
    /// cell, so an entry spanning several cells never repeats here.
    pub fn candidates(&self, p: &Point) -> &[SubId] {
        let c = |x: f64, d: usize| (((x - self.lo[d]) / self.width[d]) as usize).min(self.n[d] - 1);
        let x = c(p.0[0], 0);
        let y = if self.dims == 2 { c(p.0[1], 1) } else { 0 };
        &self.cells[x * self.n[1] + y]
    }

    /// Total candidate registrations (diagnostics: duplication factor).
    pub fn registrations(&self) -> usize {
        self.cells.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SubId {
        SubId { nid: n, iid: 1 }
    }

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![lo, 0.0], vec![hi, 100.0])
    }

    fn probe(x: f64) -> Point {
        Point(vec![x, 50.0])
    }

    #[test]
    fn candidates_superset_of_matches() {
        let entries: Vec<(SubId, Rect)> = (0..200)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 90.0;
                (sid(i), rect1(lo, lo + 5.0))
            })
            .collect();
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).expect("non-degenerate");
        for x in [0.0, 13.37, 50.0, 89.9, 95.0] {
            let cands = grid.candidates(&probe(x));
            for (id, r) in &entries {
                if r.lo[0] <= x && x <= r.hi[0] {
                    assert!(
                        cands.contains(id),
                        "entry {id:?} matching x={x} missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_prune_on_second_axis() {
        // Entries split into two bands on dim 1; a query in one band must
        // not scan the other.
        let mut entries = Vec::new();
        for i in 0..100 {
            entries.push((sid(i), Rect::new(vec![0.0, 0.0], vec![100.0, 10.0])));
            entries.push((
                sid(1000 + i),
                Rect::new(vec![0.0, 90.0], vec![100.0, 100.0]),
            ));
        }
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        assert_eq!(grid.candidates(&Point(vec![50.0, 5.0])).len(), 100);
        assert_eq!(grid.candidates(&Point(vec![50.0, 95.0])).len(), 100);
    }

    #[test]
    fn register_extends_grid_without_rebuild() {
        let entries: Vec<(SubId, Rect)> = (0..100)
            .map(|i| {
                let lo = (i as f64 * 3.1) % 80.0;
                (sid(i), rect1(lo, lo + 4.0))
            })
            .collect();
        let mut grid =
            GridIndex::build(entries.iter().map(|(a, b)| (a, b))).expect("non-degenerate");
        // Inside, straddling-below, and fully-above the built range.
        let extra = [
            (sid(500), rect1(40.0, 45.0)),
            (sid(501), rect1(-10.0, 2.0)),
            (sid(502), rect1(200.0, 300.0)),
        ];
        for (id, r) in &extra {
            grid.register(*id, r);
        }
        for x in [-5.0, 0.5, 41.0, 83.9, 250.0] {
            let cands = grid.candidates(&probe(x));
            for (id, r) in entries.iter().chain(&extra) {
                if r.lo[0] <= x && x <= r.hi[0] {
                    assert!(cands.contains(id), "entry {id:?} matching x={x} missing");
                }
            }
        }
    }

    #[test]
    fn degenerate_range_yields_no_grid() {
        // Every axis collapses to a single value: nothing to prune on.
        let point_rect = Rect::new(vec![5.0, 7.0], vec![5.0, 7.0]);
        let entries = [(sid(1), point_rect.clone()), (sid(2), point_rect)];
        assert!(GridIndex::build(entries.iter().map(|(a, b)| (a, b))).is_none());
    }

    #[test]
    fn degenerate_first_axis_still_prunes_on_second() {
        let entries = [
            (sid(1), Rect::new(vec![5.0, 0.0], vec![5.0, 10.0])),
            (sid(2), Rect::new(vec![5.0, 90.0], vec![5.0, 100.0])),
        ];
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        assert_eq!(grid.candidates(&Point(vec![5.0, 5.0])), &[sid(1)]);
        assert_eq!(grid.candidates(&Point(vec![5.0, 95.0])), &[sid(2)]);
    }

    #[test]
    fn grid_prunes_disjoint_clusters() {
        // Two clusters far apart: querying one must not scan the other.
        let mut entries = Vec::new();
        for i in 0..100 {
            entries.push((sid(i), rect1(0.0, 1.0)));
            entries.push((sid(1000 + i), rect1(99.0, 100.0)));
        }
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        let cands = grid.candidates(&probe(0.5));
        assert_eq!(cands.len(), 100, "only the near cluster is scanned");
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let entries = [(sid(1), rect1(10.0, 20.0)), (sid(2), rect1(30.0, 40.0))];
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        // Clamped queries return a (possibly empty) cell, never panic.
        let _ = grid.candidates(&probe(-5.0));
        let _ = grid.candidates(&probe(500.0));
    }
}
