//! Local event-matching index for surrogate repositories.
//!
//! §3.3: "There may be indexing structures maintained on the surrogate
//! node to facilitate local event matching; however, this is not the
//! focus of this paper." This module supplies one — two, in fact:
//!
//! * [`HybridIndex`] — the production structure: a **subscription
//!   covering layer** (entries whose hypercuboid is contained in another
//!   entry's hypercuboid collapse under their coverer, Shi et al.,
//!   arXiv 1811.07088) over a **centered interval tree** on one
//!   adaptively chosen leading axis. Every entry is registered exactly
//!   once, so the registration count equals the entry count — no cell
//!   fan-out, no duplication tax.
//! * [`GridIndex`] — the previous uniform grid, retained as a
//!   differential-testing reference and as the `IndexMode::Grid` arm of
//!   the bench's index-shape axis. Each entry is registered in every
//!   cell its leading interval(s) overlap (duplication factor 16–24× on
//!   the pinned workloads).
//!
//! Both structures only ever *prune*: a point query yields a candidate
//! superset, and the caller verifies every candidate exactly against the
//! authoritative entry table, so index choice (and index bugs short of
//! dropping a true match) cannot change delivery results.
//!
//! Repositories build an index lazily once they exceed
//! [`INDEX_THRESHOLD`] entries (hot zones under skewed workloads collect
//! thousands); below that a linear scan is faster than any structure.

use crate::model::SubId;
use hypersub_lph::{Point, Rect};
use hypersub_simnet::FxHashMap;

/// Entry count at which a repository builds an index (any mode).
pub const INDEX_THRESHOLD: usize = 64;

/// Which matching-index structure repositories build past the threshold.
/// Purely a performance choice: all modes produce identical match sets
/// (enforced by the differential oracle proptest), so run digests are
/// mode-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Never build an index; always scan linearly.
    Linear,
    /// The legacy uniform grid (cell fan-out per entry).
    Grid,
    /// Covering layer + interval tree (one registration per entry).
    #[default]
    Hybrid,
}

impl IndexMode {
    /// Parses a CLI name (`linear` / `grid` / `hybrid`).
    pub fn parse(s: &str) -> Option<IndexMode> {
        match s {
            "linear" => Some(IndexMode::Linear),
            "grid" => Some(IndexMode::Grid),
            "hybrid" => Some(IndexMode::Hybrid),
            _ => None,
        }
    }

    /// The CLI/report name of this mode.
    pub fn name(self) -> &'static str {
        match self {
            IndexMode::Linear => "linear",
            IndexMode::Grid => "grid",
            IndexMode::Hybrid => "hybrid",
        }
    }
}

/// Index occupancy and cost diagnostics, summable across repositories.
/// `registrations / entries` is the duplication factor the hotpath bench
/// prints (how many times the average entry is physically registered:
/// once per overlapped cell for the grid, exactly once for the hybrid).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexDiag {
    /// Entries stored in repositories that currently hold a built index.
    pub entries: u64,
    /// Physical registrations those indexes hold (cells × occupants for
    /// the grid; live slots for the hybrid).
    pub registrations: u64,
    /// Approximate heap bytes consumed by index structures.
    pub bytes: u64,
    /// Entries collapsed under a covering entry (hybrid only).
    pub covering_collapsed: u64,
    /// Candidates examined by point queries over the run (index paths
    /// only; linear scans examine every entry by definition).
    pub candidates_scanned: u64,
}

impl IndexDiag {
    /// Accumulates another repository's diagnostics into this one.
    pub fn merge(&mut self, o: &IndexDiag) {
        self.entries += o.entries;
        self.registrations += o.registrations;
        self.bytes += o.bytes;
        self.covering_collapsed += o.covering_collapsed;
        self.candidates_scanned += o.candidates_scanned;
    }
}

// ---------------------------------------------------------------------------
// HybridIndex: covering layer + centered interval tree
// ---------------------------------------------------------------------------

/// One registered entry: its id, a copy of its projected rect (for the
/// inline containment pre-filter — a necessary condition of the exact
/// match, see `slot_may_match`), and the slots collapsed under it.
#[derive(Debug, Clone)]
struct Slot {
    id: SubId,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Slots whose rect this slot's rect fully contains, attached by the
    /// build-time covering pass. Flat: covered slots never have covered
    /// slots of their own (containment is transitive, so everything a
    /// covered slot would cover attaches directly to the same maximal).
    covered: Vec<u32>,
}

impl Slot {
    /// Inline pre-filter: may this slot's entry match the projected
    /// point? Compares on the common dimension prefix without asserting
    /// arity, and is `false` under any NaN — exactly the failure
    /// behavior of the exact check, so pruning on it is sound:
    /// * surrogate entries match exactly when `proj ∈ proj_rect` — this
    ///   *is* that check;
    /// * real entries match when `full ∈ full_rect`, and the stored proj
    ///   rect is the coordinate projection of the full rect, so
    ///   `full ∈ full_rect ⇒ proj ∈ proj_rect`.
    #[inline]
    fn may_match(&self, p: &Point) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(&p.0)
            .all(|((&lo, &hi), &v)| lo <= v && v <= hi)
    }

    fn contains_rect(&self, lo: &[f64], hi: &[f64]) -> bool {
        self.lo.len() == lo.len()
            && self
                .lo
                .iter()
                .zip(&self.hi)
                .zip(lo.iter().zip(hi))
                .all(|((&slo, &shi), (&olo, &ohi))| slo <= olo && ohi <= shi)
    }

    fn heap_bytes(&self) -> u64 {
        ((self.lo.capacity() + self.hi.capacity()) * std::mem::size_of::<f64>()
            + self.covered.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

const NONE: u32 = u32::MAX;

/// One node of the flattened centered interval tree: intervals containing
/// `center` live here (sorted two ways for early-exit stabbing), strictly
/// smaller intervals go to the subtrees.
#[derive(Debug, Clone)]
struct TreeNode {
    center: f64,
    left: u32,
    right: u32,
    /// `(interval lo, slot index)` sorted by lo, ascending. The key is
    /// stored inline so the stab loop's early-exit check reads this
    /// list sequentially instead of chasing into the slot table.
    by_lo: Vec<(f64, u32)>,
    /// `(interval hi, slot index)` sorted by hi, descending.
    by_hi: Vec<(f64, u32)>,
}

/// The adaptive two-level matching index: a covering layer over a
/// centered interval tree on one leading axis.
///
/// * **Covering layer**: at build time entries are processed widest
///   first; an entry whose rect is fully contained in an already-placed
///   *maximal* entry's rect attaches under that coverer instead of
///   entering the tree. A stabbed maximal expands to its covered ids
///   (each still inline-checked and exactly verified), so the candidate
///   set is only ever pruned, never changed.
/// * **Interval tree**: maximal entries are registered exactly once,
///   keyed by their interval on the adaptively chosen axis (the axis
///   with the smallest average normalized interval width — the one that
///   discriminates best). A stab visits `O(log n + k)` slots.
/// * **Incremental**: inserts append to an overflow list (scanned
///   linearly with the same inline pre-filter); removals unregister the
///   id; the repository's rebuild-on-drift policy folds overflow back
///   into the tree. Entries whose chosen-axis interval is not finite
///   also live in the overflow list.
#[derive(Debug, Clone, Default)]
pub struct HybridIndex {
    /// Leading axis the tree is keyed on.
    axis: usize,
    slots: Vec<Slot>,
    tree: Vec<TreeNode>,
    root: u32,
    /// Maximal slots outside the tree: post-build inserts and slots with
    /// a non-finite interval on `axis`.
    overflow: Vec<u32>,
    /// Live id → slot. An id re-inserted with a different rect points at
    /// its newest slot; superseded slots stay behind as stale candidates
    /// (filtered by exact verification) until the next rebuild.
    by_id: FxHashMap<SubId, u32>,
    /// Cached live-registration count — `registrations()` must be O(1)
    /// (it is read on every diagnostics export).
    live: usize,
    /// Entries collapsed under a coverer at build time.
    collapsed: u64,
}

impl HybridIndex {
    /// Builds the index from `(id, rect)` pairs. Always succeeds (unlike
    /// the grid there is no degenerate geometry: point intervals stab
    /// fine), but an empty input yields an empty index.
    pub fn build<'a, I>(entries: I) -> HybridIndex
    where
        I: Iterator<Item = (&'a SubId, &'a Rect)>,
    {
        // Deterministic processing order regardless of the hash-map
        // iteration order of the caller: sort by id first, then by the
        // covering key. Index *shape* (not just results) is therefore a
        // pure function of the entry set.
        let mut items: Vec<(SubId, &Rect)> = entries.map(|(&id, r)| (id, r)).collect();
        items.sort_unstable_by_key(|&(id, _)| id);

        let axis = Self::pick_axis(items.iter().map(|&(_, r)| r));

        let mut idx = HybridIndex {
            axis,
            ..HybridIndex::default()
        };
        idx.slots.reserve_exact(items.len());
        for &(id, r) in &items {
            idx.slots.push(Slot {
                id,
                lo: r.lo.clone(),
                hi: r.hi.clone(),
                covered: Vec::new(),
            });
        }

        // Covering pass: widest-on-axis first (a coverer is at least as
        // wide as anything it covers on every axis), ties broken by
        // volume then slot order, all deterministic.
        let width = |s: &Slot| -> f64 {
            match (s.lo.get(axis), s.hi.get(axis)) {
                (Some(&lo), Some(&hi)) => hi - lo,
                _ => f64::NEG_INFINITY,
            }
        };
        let volume = |s: &Slot| -> f64 {
            s.lo.iter()
                .zip(&s.hi)
                .map(|(&lo, &hi)| hi - lo)
                .product::<f64>()
        };
        let mut order: Vec<u32> = (0..idx.slots.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&idx.slots[a as usize], &idx.slots[b as usize]);
            width(sb)
                .total_cmp(&width(sa))
                .then(volume(sb).total_cmp(&volume(sa)))
                .then(a.cmp(&b))
        });
        let mut maximals: Vec<u32> = Vec::new();
        for &si in &order {
            let (lo, hi) = {
                let s = &idx.slots[si as usize];
                (s.lo.clone(), s.hi.clone())
            };
            let coverer = maximals
                .iter()
                .find(|&&m| idx.slots[m as usize].contains_rect(&lo, &hi))
                .copied();
            match coverer {
                Some(m) => {
                    idx.slots[m as usize].covered.push(si);
                    idx.collapsed += 1;
                }
                None => maximals.push(si),
            }
        }

        // Tree pass over the maximal slots with a finite axis interval;
        // the rest (non-finite, e.g. hand-built test rects) overflow.
        let mut treeable: Vec<u32> = Vec::new();
        for &m in &maximals {
            let s = &idx.slots[m as usize];
            match (s.lo.get(axis), s.hi.get(axis)) {
                (Some(&lo), Some(&hi)) if lo.is_finite() && hi.is_finite() => treeable.push(m),
                _ => idx.overflow.push(m),
            }
        }
        idx.root = idx.build_tree(treeable);

        idx.live = idx.slots.len();
        for (i, s) in idx.slots.iter().enumerate() {
            idx.by_id.insert(s.id, i as u32);
        }
        idx
    }

    /// The axis with the smallest mean interval width relative to the
    /// entry span — the best expected pruning per stab. Falls back to
    /// axis 0 when nothing is finite (the index then degrades to an
    /// inline-checked linear scan, still correct).
    fn pick_axis<'a, I>(rects: I) -> usize
    where
        I: Iterator<Item = &'a Rect>,
    {
        const MAX_AXES: usize = 8;
        let mut width_sum = [0.0f64; MAX_AXES];
        let mut lo = [f64::INFINITY; MAX_AXES];
        let mut hi = [f64::NEG_INFINITY; MAX_AXES];
        let mut n = [0u64; MAX_AXES];
        for r in rects {
            for d in 0..r.lo.len().min(MAX_AXES) {
                let (l, h) = (r.lo[d], r.hi[d]);
                if l.is_finite() && h.is_finite() {
                    width_sum[d] += h - l;
                    lo[d] = lo[d].min(l);
                    hi[d] = hi[d].max(h);
                    n[d] += 1;
                }
            }
        }
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for d in 0..MAX_AXES {
            if n[d] == 0 || hi[d] <= lo[d] {
                continue; // unpopulated or degenerate span: nothing to prune on
            }
            let score = width_sum[d] / n[d] as f64 / (hi[d] - lo[d]);
            if score < best_score {
                best_score = score;
                best = d;
            }
        }
        best
    }

    /// Recursively builds a centered subtree from `slots` (indices with
    /// finite axis intervals); returns the subtree root or `NONE`.
    fn build_tree(&mut self, slot_ids: Vec<u32>) -> u32 {
        if slot_ids.is_empty() {
            return NONE;
        }
        // Median endpoint as center: balances the tree under any
        // distribution of intervals.
        let mut endpoints: Vec<f64> = Vec::with_capacity(slot_ids.len() * 2);
        for &s in &slot_ids {
            endpoints.push(self.slots[s as usize].lo[self.axis]);
            endpoints.push(self.slots[s as usize].hi[self.axis]);
        }
        endpoints.sort_unstable_by(f64::total_cmp);
        let center = endpoints[endpoints.len() / 2];

        let mut here: Vec<u32> = Vec::new();
        let mut left: Vec<u32> = Vec::new();
        let mut right: Vec<u32> = Vec::new();
        for s in slot_ids {
            let sl = &self.slots[s as usize];
            let (lo, hi) = (sl.lo[self.axis], sl.hi[self.axis]);
            if hi < center {
                left.push(s);
            } else if lo > center {
                right.push(s);
            } else {
                here.push(s);
            }
        }
        // Degenerate split guard: if partitioning made no progress (all
        // intervals straddle every candidate center), `here` absorbs
        // them and recursion terminates because both subtrees shrink.
        let mut by_lo: Vec<(f64, u32)> = here
            .iter()
            .map(|&s| (self.slots[s as usize].lo[self.axis], s))
            .collect();
        by_lo.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut by_hi: Vec<(f64, u32)> = here
            .into_iter()
            .map(|s| (self.slots[s as usize].hi[self.axis], s))
            .collect();
        by_hi.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
        let node = TreeNode {
            center,
            left: NONE,
            right: NONE,
            by_lo,
            by_hi,
        };
        let me = self.tree.len() as u32;
        self.tree.push(node);
        let l = self.build_tree(left);
        let r = self.build_tree(right);
        self.tree[me as usize].left = l;
        self.tree[me as usize].right = r;
        me
    }

    /// Registers an entry incrementally. Re-registering an id with the
    /// same rect is a no-op (the re-insert dedup); with a changed rect,
    /// a fresh slot is appended so the *new* geometry is findable (the
    /// superseded slot decays into a stale candidate, harmless because
    /// every candidate is exactly verified). Returns `true` when the
    /// index actually mutated (the repository's drift accounting).
    pub fn insert(&mut self, id: SubId, r: &Rect) -> bool {
        if let Some(&si) = self.by_id.get(&id) {
            let s = &self.slots[si as usize];
            if s.lo == r.lo && s.hi == r.hi {
                return false;
            }
        } else {
            self.live += 1;
        }
        let si = self.slots.len() as u32;
        self.slots.push(Slot {
            id,
            lo: r.lo.clone(),
            hi: r.hi.clone(),
            covered: Vec::new(),
        });
        self.overflow.push(si);
        self.by_id.insert(id, si);
        true
    }

    /// Unregisters an id. The slot stays behind as a stale candidate
    /// (exact verification filters it); only the live count and the id
    /// table shrink. Returns `true` when the id was registered.
    pub fn remove(&mut self, id: &SubId) -> bool {
        if self.by_id.remove(id).is_some() {
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Visits every candidate whose entry may match the projected point:
    /// stabs the tree on the chosen axis, scans the overflow list, and
    /// expands stabbed coverers into their covered slots — each gated by
    /// the inline rect pre-filter. Returns the number of slots examined
    /// (the candidate-scan count the bench reports). The visited set is
    /// a superset of all truly matching entries; exact verification is
    /// the caller's job.
    pub fn for_candidates(&self, p: &Point, mut visit: impl FnMut(SubId)) -> u64 {
        let mut scanned = 0u64;
        // Point has fewer dims than the chosen axis (defensive): no
        // pruning possible on the tree, scan everything.
        let Some(&x) = p.0.get(self.axis) else {
            for s in &self.slots {
                scanned += 1;
                if s.may_match(p) {
                    visit(s.id);
                }
            }
            return scanned;
        };
        let mut n = self.root;
        while n != NONE {
            let node = &self.tree[n as usize];
            if x < node.center {
                for &(lo, s) in &node.by_lo {
                    if lo > x {
                        break;
                    }
                    scanned += self.emit(s, p, &mut visit);
                }
                n = node.left;
            } else if x > node.center {
                for &(hi, s) in &node.by_hi {
                    if hi < x {
                        break;
                    }
                    scanned += self.emit(s, p, &mut visit);
                }
                n = node.right;
            } else {
                // x == center: every interval here contains x; subtree
                // intervals are strictly off-center and cannot. (NaN x
                // also lands here and visits one node's list — a NaN
                // point matches nothing exactly, so the superset
                // property holds.)
                for &(_, s) in &node.by_lo {
                    scanned += self.emit(s, p, &mut visit);
                }
                break;
            }
        }
        for &o in &self.overflow {
            scanned += self.emit(o, p, &mut visit);
        }
        scanned
    }

    /// Inline-checks one slot and, when it matches, its covered list.
    /// A non-matching coverer prunes its whole covered list: covered ⊆
    /// coverer, so `p ∉ coverer ⇒ p ∉ covered`. Returns slots examined.
    #[inline]
    fn emit(&self, s: u32, p: &Point, visit: &mut impl FnMut(SubId)) -> u64 {
        let sl = &self.slots[s as usize];
        let mut scanned = 1;
        if sl.may_match(p) {
            visit(sl.id);
            for &c in &sl.covered {
                scanned += 1;
                let cs = &self.slots[c as usize];
                if cs.may_match(p) {
                    visit(cs.id);
                }
            }
        }
        scanned
    }

    /// Live registrations — O(1), cached on insert/remove. Equals the
    /// number of currently registered ids (each registered exactly once),
    /// so `registrations() / entries == 1` absent stale re-inserts.
    pub fn registrations(&self) -> usize {
        self.live
    }

    /// Entries collapsed under a coverer at build time.
    pub fn covering_collapsed(&self) -> u64 {
        self.collapsed
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> u64 {
        let slots: u64 = self.slots.iter().map(Slot::heap_bytes).sum::<u64>()
            + (self.slots.capacity() * std::mem::size_of::<Slot>()) as u64;
        let tree: u64 = self
            .tree
            .iter()
            .map(|n| {
                ((n.by_lo.capacity() + n.by_hi.capacity()) * std::mem::size_of::<(f64, u32)>())
                    as u64
            })
            .sum::<u64>()
            + (self.tree.capacity() * std::mem::size_of::<TreeNode>()) as u64;
        let map = (self.by_id.capacity()
            * (std::mem::size_of::<SubId>() + std::mem::size_of::<u32>() + 1))
            as u64;
        slots + tree + map + (self.overflow.capacity() * std::mem::size_of::<u32>()) as u64
    }
}

// ---------------------------------------------------------------------------
// GridIndex: the legacy uniform grid (differential reference + bench axis)
// ---------------------------------------------------------------------------

/// A uniform grid over entry intervals on the leading dimension(s): two
/// axes when the stored rects have ≥ 2 dimensions, one otherwise. An
/// axis whose entries all coincide collapses to a single cell. Each
/// entry is registered in every cell its interval(s) overlap — the
/// duplication tax [`HybridIndex`] exists to kill — and a point query
/// scans exactly one cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    lo: [f64; 2],
    width: [f64; 2],
    /// Cells per axis (1 for collapsed/inactive axes).
    n: [usize; 2],
    /// How many leading point dimensions index lookups consume.
    dims: usize,
    cells: Vec<Vec<SubId>>,
    /// Cached registration total — kept on `register` so diagnostics
    /// never re-sum every cell.
    regs: usize,
}

impl GridIndex {
    /// Number of cells on an active axis in the 1-D case.
    pub const CELLS: usize = 64;
    /// Number of cells per active axis in the 2-D case (16² = 256 cells,
    /// comparable total registration cost to the 1-D layout but with
    /// candidate lists pruned on both axes).
    pub const AXIS_CELLS_2D: usize = 16;

    /// Builds a grid from `(id, rect)` pairs. Returns `None` when every
    /// indexable axis spans a degenerate range (the grid would not prune
    /// anything).
    pub fn build<'a, I>(entries: I) -> Option<GridIndex>
    where
        I: Iterator<Item = (&'a SubId, &'a Rect)> + Clone,
    {
        let mut dims = usize::MAX;
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for (_, r) in entries.clone() {
            dims = dims.min(r.lo.len()).min(2);
            for d in 0..dims {
                lo[d] = lo[d].min(r.lo[d]);
                hi[d] = hi[d].max(r.hi[d]);
            }
        }
        if dims == usize::MAX || dims == 0 {
            return None;
        }
        let per_axis = if dims == 2 {
            Self::AXIS_CELLS_2D
        } else {
            Self::CELLS
        };
        let mut width = [1.0; 2];
        let mut n = [1usize; 2];
        let mut active = false;
        for d in 0..dims {
            if lo[d].is_finite() && hi[d].is_finite() && hi[d] > lo[d] {
                width[d] = (hi[d] - lo[d]) / per_axis as f64;
                n[d] = per_axis;
                active = true;
            } else {
                lo[d] = if lo[d].is_finite() { lo[d] } else { 0.0 };
            }
        }
        if !active {
            return None;
        }
        let mut grid = GridIndex {
            lo,
            width,
            n,
            dims,
            cells: vec![Vec::new(); n[0] * n[1]],
            regs: 0,
        };
        for (&id, r) in entries {
            grid.register(id, r);
        }
        Some(grid)
    }

    /// The clamped cell range an interval covers on axis `d`. Negative
    /// offsets saturate to 0 under `as usize`, clamping below; `min`
    /// clamps above — exactly where queries clamp, so the candidate set
    /// stays a superset of the true matches.
    fn span(&self, d: usize, lo: f64, hi: f64) -> (usize, usize) {
        let first = (((lo - self.lo[d]) / self.width[d]) as usize).min(self.n[d] - 1);
        let last = (((hi - self.lo[d]) / self.width[d]) as usize).min(self.n[d] - 1);
        (first, last)
    }

    /// Registers one more entry into the cells its leading interval(s)
    /// cover, keeping the bounds fixed at build time. This is what makes
    /// the index incremental: inserts extend it in place instead of
    /// discarding it.
    pub fn register(&mut self, id: SubId, r: &Rect) {
        let (x0, x1) = self.span(0, r.lo[0], r.hi[0]);
        let (y0, y1) = if self.dims == 2 {
            self.span(1, r.lo[1], r.hi[1])
        } else {
            (0, 0)
        };
        for x in x0..=x1 {
            for cell in self
                .cells
                .iter_mut()
                .skip(x * self.n[1] + y0)
                .take(y1 - y0 + 1)
            {
                cell.push(id);
                self.regs += 1;
            }
        }
    }

    /// Candidate entries whose leading interval(s) may contain `p`. Exact
    /// verification is the caller's job. A point query reads exactly one
    /// cell, so an entry spanning several cells never repeats here.
    pub fn candidates(&self, p: &Point) -> &[SubId] {
        let c = |x: f64, d: usize| (((x - self.lo[d]) / self.width[d]) as usize).min(self.n[d] - 1);
        let x = c(p.0[0], 0);
        let y = if self.dims == 2 { c(p.0[1], 1) } else { 0 };
        &self.cells[x * self.n[1] + y]
    }

    /// Total candidate registrations (diagnostics: duplication factor).
    /// O(1) — cached on `register`, never re-summed.
    pub fn registrations(&self) -> usize {
        self.regs
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| (c.capacity() * std::mem::size_of::<SubId>()) as u64)
            .sum::<u64>()
            + (self.cells.capacity() * std::mem::size_of::<Vec<SubId>>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SubId {
        SubId { nid: n, iid: 1 }
    }

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![lo, 0.0], vec![hi, 100.0])
    }

    fn probe(x: f64) -> Point {
        Point(vec![x, 50.0])
    }

    /// Brute-force truth: ids whose rect contains the point.
    fn exact(entries: &[(SubId, Rect)], p: &Point) -> Vec<SubId> {
        let mut v: Vec<SubId> = entries
            .iter()
            .filter(|(_, r)| {
                r.lo.iter()
                    .zip(&r.hi)
                    .zip(&p.0)
                    .all(|((&l, &h), &x)| l <= x && x <= h)
            })
            .map(|&(id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    fn hybrid_candidates(ix: &HybridIndex, p: &Point) -> Vec<SubId> {
        let mut v = Vec::new();
        ix.for_candidates(p, |id| v.push(id));
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn grid_candidates_superset_of_matches() {
        let entries: Vec<(SubId, Rect)> = (0..200)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 90.0;
                (sid(i), rect1(lo, lo + 5.0))
            })
            .collect();
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).expect("non-degenerate");
        for x in [0.0, 13.37, 50.0, 89.9, 95.0] {
            let cands = grid.candidates(&probe(x));
            for (id, r) in &entries {
                if r.lo[0] <= x && x <= r.hi[0] {
                    assert!(
                        cands.contains(id),
                        "entry {id:?} matching x={x} missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_register_extends_grid_without_rebuild() {
        let entries: Vec<(SubId, Rect)> = (0..100)
            .map(|i| {
                let lo = (i as f64 * 3.1) % 80.0;
                (sid(i), rect1(lo, lo + 4.0))
            })
            .collect();
        let mut grid =
            GridIndex::build(entries.iter().map(|(a, b)| (a, b))).expect("non-degenerate");
        // Inside, straddling-below, and fully-above the built range.
        let extra = [
            (sid(500), rect1(40.0, 45.0)),
            (sid(501), rect1(-10.0, 2.0)),
            (sid(502), rect1(200.0, 300.0)),
        ];
        for (id, r) in &extra {
            grid.register(*id, r);
        }
        for x in [-5.0, 0.5, 41.0, 83.9, 250.0] {
            let cands = grid.candidates(&probe(x));
            for (id, r) in entries.iter().chain(&extra) {
                if r.lo[0] <= x && x <= r.hi[0] {
                    assert!(cands.contains(id), "entry {id:?} matching x={x} missing");
                }
            }
        }
    }

    #[test]
    fn grid_degenerate_range_yields_no_grid() {
        // Every axis collapses to a single value: nothing to prune on.
        let point_rect = Rect::new(vec![5.0, 7.0], vec![5.0, 7.0]);
        let entries = [(sid(1), point_rect.clone()), (sid(2), point_rect)];
        assert!(GridIndex::build(entries.iter().map(|(a, b)| (a, b))).is_none());
    }

    #[test]
    fn grid_registrations_cached_and_exact() {
        let entries: Vec<(SubId, Rect)> = (0..50)
            .map(|i| (sid(i), rect1(i as f64, i as f64 + 20.0)))
            .collect();
        let mut grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        let summed: usize = grid.cells.iter().map(Vec::len).sum();
        assert_eq!(grid.registrations(), summed, "cache equals cell sum");
        grid.register(sid(999), &rect1(0.0, 100.0));
        let summed: usize = grid.cells.iter().map(Vec::len).sum();
        assert_eq!(grid.registrations(), summed, "cache tracks register()");
    }

    #[test]
    fn hybrid_matches_exact_scan_on_random_entries() {
        let entries: Vec<(SubId, Rect)> = (0..300)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 90.0;
                let w = (i as f64 * 1.7) % 9.0;
                (sid(i), rect1(lo, (lo + w).min(100.0)))
            })
            .collect();
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        assert_eq!(ix.registrations(), 300);
        for x in [-3.0, 0.0, 13.37, 50.0, 89.9, 95.0, 200.0] {
            let cands = hybrid_candidates(&ix, &probe(x));
            for want in exact(&entries, &probe(x)) {
                assert!(
                    cands.contains(&want),
                    "missing true match {want:?} at x={x}"
                );
            }
        }
    }

    #[test]
    fn hybrid_covering_collapses_contained_entries() {
        // One big rect covers 99 small ones: the tree holds 1 maximal,
        // everything else collapses under it.
        let mut entries = vec![(sid(0), rect1(0.0, 100.0))];
        for i in 1..100 {
            let lo = (i as f64) % 80.0;
            entries.push((sid(i), rect1(lo, lo + 1.0)));
        }
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        assert_eq!(ix.covering_collapsed(), 99);
        assert_eq!(ix.registrations(), 100, "covered entries stay registered");
        // All entries still findable.
        for x in [0.5, 40.5, 79.5] {
            let cands = hybrid_candidates(&ix, &probe(x));
            for want in exact(&entries, &probe(x)) {
                assert!(cands.contains(&want), "missing {want:?} at x={x}");
            }
        }
        // A point outside every small rect but inside the big one still
        // only emits verified-rejectable candidates — superset, pruned by
        // the inline filter to the big rect plus nothing false-negative.
        let cands = hybrid_candidates(&ix, &probe(99.5));
        assert!(cands.contains(&sid(0)));
    }

    #[test]
    fn hybrid_single_entry_build() {
        let entries = [(sid(7), rect1(10.0, 20.0))];
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        assert_eq!(ix.registrations(), 1);
        assert_eq!(hybrid_candidates(&ix, &probe(15.0)), vec![sid(7)]);
        assert!(hybrid_candidates(&ix, &probe(25.0)).is_empty());
    }

    #[test]
    fn hybrid_empty_build() {
        let entries: [(SubId, Rect); 0] = [];
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        assert_eq!(ix.registrations(), 0);
        assert!(hybrid_candidates(&ix, &probe(0.0)).is_empty());
    }

    #[test]
    fn hybrid_incremental_insert_and_remove() {
        let entries: Vec<(SubId, Rect)> = (0..80)
            .map(|i| {
                (
                    sid(i),
                    rect1((i as f64 * 1.1) % 50.0, (i as f64 * 1.1) % 50.0 + 3.0),
                )
            })
            .collect();
        let mut ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));

        // Insert outside the built range: still findable (overflow path).
        assert!(ix.insert(sid(500), &rect1(200.0, 300.0)));
        assert_eq!(ix.registrations(), 81);
        assert!(hybrid_candidates(&ix, &probe(250.0)).contains(&sid(500)));

        // Remove: live count drops; stale candidacy is allowed (callers
        // verify), but unregistering twice reports false.
        assert!(ix.remove(&sid(500)));
        assert!(!ix.remove(&sid(500)));
        assert_eq!(ix.registrations(), 80);

        // Remove-then-reinsert: registered again exactly once.
        assert!(ix.remove(&sid(3)));
        assert!(ix.insert(sid(3), &rect1(60.0, 70.0)));
        assert_eq!(ix.registrations(), 80);
        assert!(hybrid_candidates(&ix, &probe(65.0)).contains(&sid(3)));
    }

    #[test]
    fn hybrid_reinsert_same_rect_is_a_noop() {
        let entries: Vec<(SubId, Rect)> = (0..70)
            .map(|i| (sid(i), rect1(i as f64, i as f64 + 5.0)))
            .collect();
        let mut ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        let bytes_before = ix.bytes();
        assert!(
            !ix.insert(sid(10), &rect1(10.0, 15.0)),
            "dedup: no mutation"
        );
        assert_eq!(ix.registrations(), 70);
        assert_eq!(ix.bytes(), bytes_before, "no slot appended");
    }

    #[test]
    fn hybrid_reinsert_changed_rect_finds_new_geometry() {
        let entries: Vec<(SubId, Rect)> = (0..70)
            .map(|i| (sid(i), rect1(i as f64, i as f64 + 2.0)))
            .collect();
        let mut ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        // id 5 moves from [5,7] to [200,210]: the new interval must be a
        // candidate even though the old slot persists.
        assert!(ix.insert(sid(5), &rect1(200.0, 210.0)));
        assert_eq!(ix.registrations(), 70, "live count unchanged on update");
        assert!(hybrid_candidates(&ix, &probe(205.0)).contains(&sid(5)));
    }

    #[test]
    fn hybrid_tolerates_nonfinite_rects() {
        // Rect::new rejects non-finite bounds, but the index must stay
        // panic-free and superset-correct if handed them (defensive:
        // hand-constructed rects in tests, future codec relaxations).
        let inf = Rect {
            lo: vec![f64::NEG_INFINITY, 0.0],
            hi: vec![f64::INFINITY, 100.0],
        };
        let nan = Rect {
            lo: vec![f64::NAN, 0.0],
            hi: vec![f64::NAN, 100.0],
        };
        let entries = [
            (sid(1), rect1(10.0, 20.0)),
            (sid(2), inf.clone()),
            (sid(3), nan),
            (sid(4), rect1(15.0, 30.0)),
        ];
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        let cands = hybrid_candidates(&ix, &probe(17.0));
        assert!(cands.contains(&sid(1)));
        assert!(cands.contains(&sid(4)));
        assert!(cands.contains(&sid(2)), "infinite rect matches everywhere");
        assert!(!cands.contains(&sid(3)), "NaN rect matches nowhere");
        // NaN query point: matches nothing, must not panic.
        assert!(hybrid_candidates(&ix, &Point(vec![f64::NAN, 50.0])).is_empty());
        // Infinite query point: fine too.
        let _ = hybrid_candidates(&ix, &Point(vec![f64::INFINITY, 50.0]));
    }

    #[test]
    fn hybrid_identical_rects_collapse_without_loss() {
        let r = rect1(10.0, 20.0);
        let entries: Vec<(SubId, Rect)> = (0..10).map(|i| (sid(i), r.clone())).collect();
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        assert_eq!(ix.covering_collapsed(), 9, "9 duplicates collapse under 1");
        let cands = hybrid_candidates(&ix, &probe(15.0));
        assert_eq!(cands.len(), 10, "all ids still emitted");
    }

    #[test]
    fn hybrid_picks_discriminating_axis() {
        // Axis 0 intervals are all full-span; axis 1 intervals are
        // narrow: axis 1 discriminates, axis 0 does not.
        let entries: Vec<(SubId, Rect)> = (0..100)
            .map(|i| {
                let lo = (i as f64) % 90.0;
                (sid(i), Rect::new(vec![0.0, lo], vec![100.0, lo + 2.0]))
            })
            .collect();
        let ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        // A stab at y=50 must scan far fewer than all 100 slots.
        let scanned = ix.for_candidates(&Point(vec![50.0, 50.0]), |_| {});
        assert!(
            scanned < 30,
            "adaptive axis should prune most slots, scanned {scanned}"
        );
    }

    #[test]
    fn hybrid_bytes_accounting_is_positive_and_grows() {
        let entries: Vec<(SubId, Rect)> = (0..100)
            .map(|i| (sid(i), rect1(i as f64, i as f64 + 1.0)))
            .collect();
        let mut ix = HybridIndex::build(entries.iter().map(|(a, b)| (a, b)));
        let b0 = ix.bytes();
        assert!(b0 > 0);
        for i in 200..260 {
            ix.insert(sid(i), &rect1(i as f64, i as f64 + 1.0));
        }
        assert!(ix.bytes() > b0, "inserting grows the footprint");
    }
}
