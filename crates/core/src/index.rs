//! Local event-matching index for surrogate repositories.
//!
//! §3.3: "There may be indexing structures maintained on the surrogate
//! node to facilitate local event matching; however, this is not the
//! focus of this paper." This module supplies one: a uniform grid over
//! the first dimension of the stored (projected) rects. Each entry is
//! registered in every cell its interval overlaps; a point query scans
//! only the point's cell and then verifies candidates exactly, so the
//! index can only prune, never change results.
//!
//! Repositories switch to the grid once they exceed
//! [`GridIndex::THRESHOLD`] entries (hot zones under skewed workloads
//! collect thousands); below that a linear scan is faster than any
//! structure.

use crate::model::SubId;
use hypersub_lph::Rect;

/// A one-dimensional uniform grid over entry intervals on dimension 0.
#[derive(Debug, Clone)]
pub struct GridIndex {
    lo: f64,
    width: f64,
    cells: Vec<Vec<SubId>>,
}

impl GridIndex {
    /// Entry count at which a repository builds a grid.
    pub const THRESHOLD: usize = 64;
    /// Number of grid cells.
    pub const CELLS: usize = 64;

    /// Builds a grid from `(id, rect)` pairs. Returns `None` when the
    /// entries span a degenerate range (all identical on dim 0) — the
    /// grid would not prune anything.
    pub fn build<'a, I>(entries: I) -> Option<GridIndex>
    where
        I: Iterator<Item = (&'a SubId, &'a Rect)> + Clone,
    {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, r) in entries.clone() {
            lo = lo.min(r.lo[0]);
            hi = hi.max(r.hi[0]);
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        let width = (hi - lo) / Self::CELLS as f64;
        let mut cells: Vec<Vec<SubId>> = vec![Vec::new(); Self::CELLS];
        for (&id, r) in entries {
            let first = (((r.lo[0] - lo) / width) as usize).min(Self::CELLS - 1);
            let last = (((r.hi[0] - lo) / width) as usize).min(Self::CELLS - 1);
            for cell in cells.iter_mut().take(last + 1).skip(first) {
                cell.push(id);
            }
        }
        Some(GridIndex { lo, width, cells })
    }

    /// Candidate entries whose dim-0 interval may contain `x`. Exact
    /// verification is the caller's job.
    pub fn candidates(&self, x: f64) -> &[SubId] {
        if x < self.lo {
            return &self.cells[0];
        }
        let cell = (((x - self.lo) / self.width) as usize).min(Self::CELLS - 1);
        &self.cells[cell]
    }

    /// Total candidate registrations (diagnostics: duplication factor).
    pub fn registrations(&self) -> usize {
        self.cells.iter().map(|c| c.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SubId {
        SubId { nid: n, iid: 1 }
    }

    fn rect1(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![lo, 0.0], vec![hi, 100.0])
    }

    #[test]
    fn candidates_superset_of_matches() {
        let entries: Vec<(SubId, Rect)> = (0..200)
            .map(|i| {
                let lo = (i as f64 * 7.3) % 90.0;
                (sid(i), rect1(lo, lo + 5.0))
            })
            .collect();
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).expect("non-degenerate");
        for x in [0.0, 13.37, 50.0, 89.9, 95.0] {
            let cands = grid.candidates(x);
            for (id, r) in &entries {
                if r.lo[0] <= x && x <= r.hi[0] {
                    assert!(
                        cands.contains(id),
                        "entry {id:?} matching x={x} missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_range_yields_no_grid() {
        let entries = [(sid(1), rect1(5.0, 5.0)), (sid(2), rect1(5.0, 5.0))];
        assert!(GridIndex::build(entries.iter().map(|(a, b)| (a, b))).is_none());
    }

    #[test]
    fn grid_prunes_disjoint_clusters() {
        // Two clusters far apart: querying one must not scan the other.
        let mut entries = Vec::new();
        for i in 0..100 {
            entries.push((sid(i), rect1(0.0, 1.0)));
            entries.push((sid(1000 + i), rect1(99.0, 100.0)));
        }
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        let cands = grid.candidates(0.5);
        assert_eq!(cands.len(), 100, "only the near cluster is scanned");
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let entries = [(sid(1), rect1(10.0, 20.0)), (sid(2), rect1(30.0, 40.0))];
        let grid = GridIndex::build(entries.iter().map(|(a, b)| (a, b))).unwrap();
        // Clamped queries return a (possibly empty) cell, never panic.
        let _ = grid.candidates(-5.0);
        let _ = grid.candidates(500.0);
    }
}
