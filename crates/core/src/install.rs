//! Subscription installation — Algorithms 2 and 3.
//!
//! * **Algorithm 2 (`subscribe`)**: the subscriber computes the smallest
//!   content zone covering its subscription with the locality-preserving
//!   hash and routes a `Register` to the zone's surrogate node (the Chord
//!   successor of the rotation-adjusted zone key).
//! * **Algorithm 3 (`register_entry`)**: the surrogate stores the
//!   subscription in the zone's repository, updates the zone's *summary
//!   filter* (smallest hypercuboid covering all registered entries), and
//!   for every *changed* subdivision of the summary registers a
//!   *surrogate subscription* at the corresponding child zone. The
//!   recursion materializes, level by level, the chain that event
//!   delivery later climbs from leaf rendezvous zones back up to stored
//!   subscriptions.

use crate::model::{SchemeId, SubId, SubTarget, SubschemeId, Subscription};
use crate::msg::{HyperMsg, Routed};
use crate::node::{HyperSubNode, IidTarget};
use crate::repo::{RepoKey, StoredSub, ZoneRepo};
use crate::world::HyperWorld;
use hypersub_chord::routing::{next_hop, NextHop};
use hypersub_lph::{lph_rect, rotation::rotate_key, ZoneCode};
use hypersub_simnet::{NodeRuntime, ProtoEvent};

impl HyperSubNode {
    /// Algorithm 2: install a subscription originating at this node.
    /// Returns the new subscription's id.
    pub fn subscribe<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        scheme_id: SchemeId,
        sub: Subscription,
    ) -> SubId {
        let iid = self.alloc_iid(IidTarget::Local);
        let subid = SubId {
            nid: self.maint.chord.id,
            iid,
        };
        self.local_subs.insert(iid, (scheme_id, sub.clone()));
        ctx.world().oracle.add(scheme_id, subid, sub.clone());
        self.install(ctx, scheme_id, sub, iid);
        subid
    }

    /// Routes the registration for one local subscription to its zone's
    /// surrogate node (the network half of Algorithm 2). Idempotent: used
    /// both by fresh subscriptions and by soft-state refresh.
    fn install<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        scheme_id: SchemeId,
        sub: Subscription,
        iid: u32,
    ) {
        let subid = SubId {
            nid: self.maint.chord.id,
            iid,
        };
        let scheme = self.registry.scheme(scheme_id);
        let ss = scheme.choose_subscheme(&sub);
        let ssdef = &scheme.subschemes[ss as usize];
        let proj = scheme.project_rect(ss, &sub.rect);
        let zone = lph_rect(&self.cfg.zone, &ssdef.space, &proj);
        let key = rotate_key(zone.key(&self.cfg.zone), ssdef.rotation);
        self.route_or_local(
            ctx,
            key,
            Routed::Register {
                scheme: scheme_id,
                ss,
                zone,
                subid,
                full: sub.rect,
                proj,
            },
        );
    }

    /// Cancels one of this node's subscriptions: removes the local record
    /// and routes an `Unregister` to the zone surrogate. The zone's
    /// summary filter is left conservative (it may over-cover until the
    /// next refresh), which can cost spurious matching work but never
    /// correctness.
    ///
    /// Returns `false` if `iid` does not name a live local subscription.
    pub fn unsubscribe<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        iid: u32,
    ) -> bool {
        let Some((scheme_id, sub)) = self.local_subs.remove(&iid) else {
            return false;
        };
        self.iids.remove(&iid);
        let subid = SubId {
            nid: self.maint.chord.id,
            iid,
        };
        ctx.world().oracle.remove(subid);
        let scheme = self.registry.scheme(scheme_id);
        let ss = scheme.choose_subscheme(&sub);
        let ssdef = &scheme.subschemes[ss as usize];
        let proj = scheme.project_rect(ss, &sub.rect);
        let zone = lph_rect(&self.cfg.zone, &ssdef.space, &proj);
        let key = rotate_key(zone.key(&self.cfg.zone), ssdef.rotation);
        ctx.trace(|| ProtoEvent {
            kind: "sub.unregister",
            flow: None,
            a: subid.nid,
            b: iid as u64,
        });
        self.route_or_local(
            ctx,
            key,
            Routed::Unregister {
                scheme: scheme_id,
                ss,
                zone,
                subid,
            },
        );
        true
    }

    /// Soft-state refresh: re-routes the registration of every local
    /// subscription. After churn this restores subscriptions whose
    /// surrogate nodes failed (the "reinforcement" such systems rely on —
    /// the paper defers churn handling to the underlying DHT plus
    /// re-registration).
    pub fn refresh_subscriptions<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        // Sorted by internal id: the registration messages this emits must
        // not depend on HashMap iteration order, or same-seed runs with
        // refresh would diverge.
        let mut subs: Vec<(u32, SchemeId, Subscription)> = self
            .local_subs
            .iter()
            .map(|(&iid, (scheme, sub))| (iid, *scheme, sub.clone()))
            .collect();
        subs.sort_unstable_by_key(|&(iid, _, _)| iid);
        for (iid, scheme_id, sub) in subs {
            self.install(ctx, scheme_id, sub, iid);
        }
    }

    /// Re-pushes every repository's summary-filter subdivisions,
    /// forgetting the "already pushed" dedup state. Needed after churn:
    /// zone keys that belonged to failed nodes now map to their
    /// successors, and surrogate chains through those zones must be
    /// re-established there.
    pub fn rebuild_chains<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        // Sorted for the same reason as `refresh_subscriptions`: push-down
        // message order must be a function of state, not of hashing.
        let mut keys: Vec<RepoKey> = self.repos.keys().copied().collect();
        keys.sort_unstable();
        for k in &keys {
            if let Some(repo) = self.repos.get_mut(k) {
                repo.pushed.clear();
            }
        }
        for k in keys {
            self.push_down(ctx, k);
        }
    }

    /// Routes `inner` toward the successor of `key`, handling it locally
    /// when this node is already responsible.
    pub(crate) fn route_or_local<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        key: u64,
        inner: Routed,
    ) {
        if self.maint.chord.responsible_for(key) {
            self.handle_routed(ctx, inner);
        } else {
            match next_hop(&self.maint.chord, key) {
                NextHop::Forward(p) => {
                    self.send_reliable(ctx, p.idx, HyperMsg::Route { key, inner })
                }
                // `responsible_for` was false, so a Local verdict can only
                // mean a singleton/degenerate ring: handle locally.
                NextHop::Local => self.handle_routed(ctx, inner),
            }
        }
    }

    /// Handles an incoming `Route` message: consume or forward greedily.
    pub(crate) fn handle_route<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        key: u64,
        inner: Routed,
    ) {
        self.route_or_local(ctx, key, inner);
    }

    fn handle_routed<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R, inner: Routed) {
        match inner {
            Routed::Register {
                scheme,
                ss,
                zone,
                subid,
                full,
                proj,
            } => {
                self.register_entry(
                    ctx,
                    (scheme, ss, zone),
                    subid,
                    StoredSub::Real { full, proj },
                );
            }
            Routed::RegisterSurrogate {
                scheme,
                ss,
                zone,
                owner,
                proj,
            } => {
                self.register_entry(
                    ctx,
                    (scheme, ss, zone),
                    owner,
                    StoredSub::Surrogate { proj },
                );
            }
            Routed::Unregister {
                scheme,
                ss,
                zone,
                subid,
            } => {
                let rk = (scheme, ss, zone);
                if let Some(repo) = self.repos.get_mut(&rk) {
                    repo.remove(&subid);
                }
                // A hosted copy on this node (we accepted it in a
                // migration)?
                for h in self.hosted.values_mut() {
                    if h.source == rk {
                        h.entries.remove(&subid);
                    }
                }
                // Migrated away from here? Chase it to the acceptor.
                if let Some(acceptor) = self.lb.migrated_index.remove(&(rk, subid)) {
                    self.send_reliable(
                        ctx,
                        acceptor.idx,
                        HyperMsg::Route {
                            key: acceptor.id,
                            inner: Routed::Unregister {
                                scheme,
                                ss,
                                zone,
                                subid,
                            },
                        },
                    );
                }
            }
        }
    }

    /// Algorithm 3: store an entry in a zone repository and propagate
    /// changed summary subdivisions to child zones.
    pub(crate) fn register_entry<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        repo_key: RepoKey,
        id: SubId,
        sub: StoredSub,
    ) {
        if !self.repos.contains_key(&repo_key) {
            let iid = self.alloc_iid(IidTarget::Repo(repo_key));
            self.repos.insert(repo_key, ZoneRepo::new(iid));
        }
        let repo = self.repos.get_mut(&repo_key).expect("just inserted");
        let is_new = !repo.entries.contains_key(&id);
        let summary_grew = repo.insert(id, sub);
        let me = ctx.me();
        ctx.world().metrics.proto.sub_registers.inc(me);
        ctx.trace(|| ProtoEvent {
            kind: "sub.register",
            flow: None,
            a: id.nid,
            b: id.iid as u64,
        });
        if summary_grew {
            self.push_down(ctx, repo_key);
        }
        if is_new {
            // Incremental successor replication (no-op unless self-healing
            // is on): bounds the loss window for fresh registrations to
            // one message latency instead of one lease period.
            self.replicate_entry(ctx, repo_key, id);
        }
    }

    /// Pushes the changed subdivisions of `repo_key`'s summary filter down
    /// the zone tree (lines 4–9 of Algorithm 3), with the *chain collapse*
    /// optimization: zones whose surrogate node is this same node are not
    /// materialized (rendezvous matching walks a leaf's local ancestors
    /// instead — see `delivery.rs`), and whole subtrees whose key arcs lie
    /// inside this node's responsibility are pruned outright. Surrogate
    /// subscriptions are therefore only sent across node boundaries, with
    /// the owner pointing directly at this repository. This computes the
    /// same matched sets as the literal per-zone recursion while visiting
    /// `O(β · levels + node crossings)` zones instead of `O(β^levels)`.
    fn push_down<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R, repo_key: RepoKey) {
        let (scheme_id, ss, zone) = repo_key;
        let zone_params = self.cfg.zone;
        if zone.level >= zone_params.max_level() {
            return; // leaf zones have no children
        }
        let (summary, my_repo_iid) = {
            let repo = &self.repos[&repo_key];
            let Some(summary) = repo.summary.clone() else {
                return;
            };
            (summary, repo.iid)
        };
        let owner = SubId {
            nid: self.maint.chord.id,
            iid: my_repo_iid,
        };
        let ssdef = &self.registry.scheme(scheme_id).subschemes[ss as usize];
        let rotation = ssdef.rotation;
        let space = ssdef.space.clone();

        // Iterative descent with an explicit stack of (zone, covering
        // rect) pairs; only boundary-straddling local zones recurse.
        let mut to_send: Vec<(ZoneCode, hypersub_lph::Rect)> = Vec::new();
        let mut stack: Vec<(ZoneCode, hypersub_lph::Rect)> = vec![(zone, summary)];
        while let Some((z, sf)) = stack.pop() {
            if z.level >= zone_params.max_level() {
                continue;
            }
            for child in z.children(&zone_params) {
                let ext = child.extent(&zone_params, &space);
                let Some(sf_c) = sf.intersect(&ext) else {
                    continue;
                };
                let key = rotate_key(child.key(&zone_params), rotation);
                if !self.maint.chord.responsible_for(key) {
                    // Crossing a node boundary: register remotely if the
                    // subdivision changed since we last pushed it.
                    let repo = &self.repos[&repo_key];
                    if repo.pushed.get(&child) != Some(&sf_c) {
                        to_send.push((child, sf_c));
                    }
                } else if !self.subtree_fully_local(child, rotation) {
                    // Our key, but part of the subtree maps elsewhere:
                    // keep descending (virtually — no local repo).
                    stack.push((child, sf_c));
                }
                // else: entire subtree local — rendezvous ancestor walk
                // covers it, nothing to materialize or send.
            }
        }
        if to_send.is_empty() {
            return;
        }
        let me = ctx.me();
        ctx.world()
            .metrics
            .proto
            .chain_pushes
            .add(me, to_send.len() as u64);
        ctx.trace(|| ProtoEvent {
            kind: "sub.chain_push",
            flow: None,
            a: to_send.len() as u64,
            b: zone.level as u64,
        });
        {
            let repo = self.repos.get_mut(&repo_key).expect("exists");
            for (child, sf) in &to_send {
                repo.pushed.insert(*child, sf.clone());
            }
        }
        for (child, sf) in to_send {
            let key = rotate_key(child.key(&zone_params), rotation);
            self.route_or_local(
                ctx,
                key,
                Routed::RegisterSurrogate {
                    scheme: scheme_id,
                    ss,
                    zone: child,
                    owner,
                    proj: sf,
                },
            );
        }
    }

    /// Does the whole key arc of `zone`'s subtree (all descendant zone
    /// keys, rotation applied) fall inside this node's responsibility arc
    /// `(predecessor, me]`?
    fn subtree_fully_local(&self, zone: ZoneCode, rotation: u64) -> bool {
        let st = &self.maint.chord;
        let Some(pred) = st.predecessor else {
            // Singleton ring owns everything.
            return st.successors.is_empty();
        };
        let params = &self.cfg.zone;
        let lb = zone.level as u32 * params.base_bits as u32;
        // Lowest descendant key: the leftmost leaf's key.
        let lo = (zone.code << (64 - lb)) + ((1u64 << (64 - params.zone_bits as u32)) - 1);
        let hi = zone.key(params);
        let (lo, hi) = (lo.wrapping_add(rotation), hi.wrapping_add(rotation));
        let cd = hypersub_chord::clockwise_distance;
        let a = cd(pred.id, lo);
        let b = cd(pred.id, hi);
        let m = cd(pred.id, st.id);
        a >= 1 && a <= b && b <= m
    }

    /// The rendezvous target a published event starts from, for one
    /// subscheme (Algorithm 4 line 2: `subid_list = {(key(cz), NULL)}`).
    pub(crate) fn rendezvous_target(
        &self,
        scheme_id: SchemeId,
        ss: SubschemeId,
        proj_point: &hypersub_lph::Point,
    ) -> (ZoneCode, SubTarget) {
        let ssdef = &self.registry.scheme(scheme_id).subschemes[ss as usize];
        let leaf = hypersub_lph::lph_point(&self.cfg.zone, &ssdef.space, proj_point);
        let key = rotate_key(leaf.key(&self.cfg.zone), ssdef.rotation);
        (leaf, SubTarget::rendezvous(key))
    }
}
