//! Machine-checked invariants over traces and reports.
//!
//! Adversity scenarios (the `hypersub-scenario` crate) pair each fault
//! schedule with invariants evaluated *after the fact* from the
//! artifacts a run already produces — [`crate::report::Report`], the
//! per-event oracle ([`crate::metrics::EventStats`]), and the flight
//! recorder's trace — rather than from ad-hoc mid-run asserts. Each
//! evaluator returns a [`Verdict`]: a named pass/fail plus a
//! human-readable detail line, so a failing scenario run reports *which*
//! property broke and by how much instead of just panicking.
//!
//! Evaluators never panic on adversarial inputs: a truncated trace or a
//! missing precondition is a *failed* verdict with an explanatory
//! detail, not a crash — a harness must report, not die.

use crate::metrics::EventStats;
use crate::report::Report;
use hypersub_simnet::{FlightRecorder, SimTime};

/// The outcome of one invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Stable dot-namespaced invariant name, e.g. `"delivery.no_dups"`.
    pub invariant: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable evidence (numbers on both pass and fail).
    pub details: String,
}

impl Verdict {
    /// Builds a verdict from a condition plus evidence.
    pub fn check(invariant: &str, passed: bool, details: impl Into<String>) -> Self {
        Self {
            invariant: invariant.to_string(),
            passed,
            details: details.into(),
        }
    }
}

/// No event was ever delivered twice to the same subscriber —
/// retransmissions, fault duplication, repair, and migration must all be
/// absorbed by the dedup layers.
pub fn no_duplicate_deliveries(r: &Report) -> Verdict {
    Verdict::check(
        "delivery.no_dups",
        r.events.duplicates == 0,
        format!("{} duplicate deliveries", r.events.duplicates),
    )
}

/// Every published event reached every matching subscriber (the world
/// oracle's ground truth): zero permanent delivery loss over the whole
/// run.
pub fn complete_delivery(r: &Report) -> Verdict {
    Verdict::check(
        "delivery.no_permanent_loss",
        r.events.delivered == r.events.expected,
        format!(
            "{}/{} (event, subscriber) pairs delivered",
            r.events.delivered, r.events.expected
        ),
    )
}

/// The listed probe events were each delivered in full. Scenarios
/// publish probes *after* the adversity ends (plus a healing window):
/// losing any probe pair means the damage was permanent, not transient.
pub fn probes_delivered(stats: &[EventStats], probe_ids: &[u64]) -> Verdict {
    let mut missing = 0usize;
    let mut lost_pairs = 0usize;
    let (mut delivered, mut expected) = (0usize, 0usize);
    for id in probe_ids {
        match stats.iter().find(|s| s.event == *id) {
            Some(s) => {
                delivered += s.delivered;
                expected += s.expected;
                lost_pairs += s.expected.saturating_sub(s.delivered);
            }
            None => missing += 1,
        }
    }
    let passed = missing == 0 && lost_pairs == 0 && !probe_ids.is_empty();
    Verdict::check(
        "heal.probes_delivered",
        passed,
        format!(
            "{delivered}/{expected} probe pairs delivered over {} probes ({lost_pairs} lost, \
             {missing} unaccounted)",
            probe_ids.len()
        ),
    )
}

/// The reliable layer's give-up rate stayed bounded: at most
/// `max_rate` of all acked-or-abandoned sends were abandoned. With no
/// reliable sends at all the invariant holds vacuously.
pub fn bounded_give_up_rate(r: &Report, max_rate: f64) -> Verdict {
    let give_ups = r.counter_total("retry.give_ups");
    let acks = r.counter_total("retry.acks");
    let settled = give_ups + acks;
    let rate = if settled == 0 {
        0.0
    } else {
        give_ups as f64 / settled as f64
    };
    Verdict::check(
        "retry.bounded_give_ups",
        rate <= max_rate,
        format!("{give_ups} give-ups / {settled} settled sends ({rate:.4} <= {max_rate})"),
    )
}

/// No reliable send was abandoned at all — the strict form of
/// [`bounded_give_up_rate`] for scenarios whose faults the retry chain
/// must fully bridge.
pub fn no_give_ups(r: &Report) -> Verdict {
    let give_ups = r.counter_total("retry.give_ups");
    Verdict::check(
        "retry.no_give_ups",
        give_ups == 0,
        format!("{give_ups} retry give-ups"),
    )
}

/// Load-balancing migration both *happened* and *converged*: the trace
/// shows at least one offer and one acked handoff, and all migration
/// activity fits within `k` LB periods of the first offer. Fails when
/// the trace ring evicted records (the first offer may be gone — size
/// the recorder for the run) or when no migration fired at all.
pub fn migration_converged(rec: &FlightRecorder, period: SimTime, k: u64) -> Verdict {
    if rec.evicted() > 0 {
        return Verdict::check(
            "lb.converged",
            false,
            format!("trace truncated ({} evicted records)", rec.evicted()),
        );
    }
    let mut first_offer: Option<SimTime> = None;
    let mut last_activity: Option<SimTime> = None;
    let mut offers = 0u64;
    let mut acks = 0u64;
    for r in rec.iter() {
        match r.event.kind() {
            "lb.offer" => {
                offers += 1;
                first_offer.get_or_insert(r.time);
                last_activity = Some(r.time);
            }
            "lb.migrate_ack" => {
                acks += 1;
                last_activity = Some(r.time);
            }
            _ => {}
        }
    }
    let (Some(first), Some(last)) = (first_offer, last_activity) else {
        return Verdict::check(
            "lb.converged",
            false,
            format!("no migration activity in trace ({offers} offers, {acks} acks)"),
        );
    };
    if acks == 0 {
        return Verdict::check(
            "lb.converged",
            false,
            format!("{offers} offers but no acked handoff"),
        );
    }
    let window = SimTime(period.0.saturating_mul(k));
    let span = last.saturating_sub(first);
    Verdict::check(
        "lb.converged",
        span <= window,
        format!(
            "{offers} offers / {acks} acks, activity span {:.1}s <= {k} x {:.0}s periods",
            span.as_secs_f64(),
            period.as_secs_f64()
        ),
    )
}

/// No single node holds more than `max_share` of the total stored
/// subscription load — the flash crowd's hot surrogate must have shed
/// load. Vacuously fails when there is no load at all (the scenario
/// did not install what it promised).
pub fn balanced_load(loads: &[u64], max_share: f64) -> Verdict {
    let total: u64 = loads.iter().sum();
    let max = loads.iter().copied().max().unwrap_or(0);
    let share = if total == 0 {
        1.0
    } else {
        max as f64 / total as f64
    };
    Verdict::check(
        "lb.balanced",
        total > 0 && share <= max_share,
        format!("hottest node holds {max}/{total} stored subs ({share:.3} <= {max_share})"),
    )
}

/// No trace record of `kind` at or after `t` — e.g. no
/// `net.drop_partition` after the partition's scheduled heal. Sound
/// even on a truncated trace: eviction only discards the *oldest*
/// records, so the retained tail is exactly where a late record would
/// be.
pub fn trace_silent_after(rec: &FlightRecorder, kind: &str, t: SimTime) -> Verdict {
    let late = rec
        .iter()
        .filter(|r| r.event.kind() == kind && r.time >= t)
        .count();
    Verdict::check(
        "trace.silent_after_heal",
        late == 0,
        format!(
            "{late} {kind:?} records at or after {:.1}s",
            t.as_secs_f64()
        ),
    )
}

/// The fault machinery actually fired: `observed` (a count taken from
/// the report or trace, e.g. partition drops) is nonzero. Guards
/// scenarios against silently passing because the adversity never
/// happened.
pub fn adversity_fired(what: &str, observed: u64) -> Verdict {
    Verdict::check(
        "scenario.adversity_fired",
        observed > 0,
        format!("{observed} {what}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{EventSummary, Report};
    use hypersub_simnet::{SimTime, TraceEvent};

    fn report(expected: u64, delivered: u64, duplicates: u64) -> Report {
        Report {
            events: EventSummary {
                published: 4,
                expected,
                delivered,
                duplicates,
                max_hops: 3,
                max_latency_us: 1000,
            },
            ..Report::default()
        }
    }

    #[test]
    fn delivery_verdicts() {
        assert!(complete_delivery(&report(10, 10, 0)).passed);
        let v = complete_delivery(&report(10, 8, 0));
        assert!(!v.passed);
        assert!(v.details.contains("8/10"));
        assert!(no_duplicate_deliveries(&report(10, 10, 0)).passed);
        assert!(!no_duplicate_deliveries(&report(10, 10, 2)).passed);
    }

    #[test]
    fn give_up_verdicts_handle_absent_counters() {
        // Reports without retry counters (retries off) hold vacuously.
        assert!(bounded_give_up_rate(&report(1, 1, 0), 0.1).passed);
        assert!(no_give_ups(&report(1, 1, 0)).passed);
        let mut r = report(1, 1, 0);
        r.counters.push((
            "retry.give_ups".into(),
            crate::report::CounterSummary {
                total: 3,
                max_node: 2,
            },
        ));
        r.counters.push((
            "retry.acks".into(),
            crate::report::CounterSummary {
                total: 97,
                max_node: 50,
            },
        ));
        assert!(!no_give_ups(&r).passed);
        assert!(bounded_give_up_rate(&r, 0.05).passed, "3/100 <= 5%");
        assert!(!bounded_give_up_rate(&r, 0.01).passed);
    }

    fn lb_event(kind: &'static str) -> TraceEvent {
        TraceEvent::Proto(hypersub_simnet::ProtoEvent {
            kind,
            flow: None,
            a: 0,
            b: 0,
        })
    }

    #[test]
    fn migration_convergence_needs_activity_within_window() {
        let period = SimTime::from_secs(30);
        let mut rec = FlightRecorder::new(64);
        assert!(!migration_converged(&rec, period, 9).passed, "no activity");
        rec.record(SimTime::from_secs(30), 0, lb_event("lb.offer"));
        assert!(!migration_converged(&rec, period, 9).passed, "no ack");
        rec.record(SimTime::from_secs(45), 1, lb_event("lb.migrate_ack"));
        assert!(migration_converged(&rec, period, 9).passed);
        // Activity far past the window fails.
        rec.record(SimTime::from_secs(30 + 30 * 10), 0, lb_event("lb.offer"));
        assert!(!migration_converged(&rec, period, 9).passed);
    }

    #[test]
    fn truncated_trace_fails_convergence_closed() {
        let mut rec = FlightRecorder::new(2);
        for i in 0..5 {
            rec.record(SimTime::from_secs(i), 0, lb_event("lb.offer"));
        }
        let v = migration_converged(&rec, SimTime::from_secs(30), 9);
        assert!(!v.passed);
        assert!(v.details.contains("truncated"));
    }

    #[test]
    fn balance_and_silence_and_firing() {
        assert!(balanced_load(&[10, 12, 9], 0.5).passed);
        assert!(!balanced_load(&[100, 1, 1], 0.5).passed);
        assert!(!balanced_load(&[0, 0], 0.9).passed, "no load = no evidence");

        let mut rec = FlightRecorder::new(16);
        rec.record(
            SimTime::from_secs(10),
            0,
            TraceEvent::MsgDropPartition { dst: 1, flow: None },
        );
        assert!(trace_silent_after(&rec, "net.drop_partition", SimTime::from_secs(20)).passed);
        assert!(!trace_silent_after(&rec, "net.drop_partition", SimTime::from_secs(10)).passed);

        assert!(adversity_fired("partition drops", 3).passed);
        assert!(!adversity_fired("partition drops", 0).passed);
    }

    #[test]
    fn probe_verdict_accounts_every_probe() {
        let stat = |event, expected, delivered| EventStats {
            event,
            publish_time: SimTime::ZERO,
            publish_node: 0,
            expected,
            delivered,
            duplicates: 0,
            max_hops: 0,
            max_latency: SimTime::ZERO,
            bandwidth_bytes: 0,
            messages: 0,
            matched_fraction: 0.0,
        };
        let stats = vec![stat(1, 3, 3), stat(2, 2, 1)];
        assert!(probes_delivered(&stats, &[1]).passed);
        assert!(!probes_delivered(&stats, &[1, 2]).passed, "lost pair");
        assert!(!probes_delivered(&stats, &[1, 9]).passed, "unknown probe");
        assert!(
            !probes_delivered(&stats, &[]).passed,
            "no probes = no evidence"
        );
    }
}
