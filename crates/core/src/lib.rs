//! # HyperSub — content-based publish/subscribe over a DHT
//!
//! A full implementation of *"A Large-scale and Decentralized
//! Infrastructure for Content-based Publish/Subscribe Services"* (Yang,
//! Zhu, Hu — ICPP 2007): a scalable pub/sub platform built on Chord that
//! simultaneously supports any number of pub/sub schemes with different
//! numbers of attributes.
//!
//! The three key mechanisms, each mapped to a module:
//!
//! 1. **Locality-preserving hashing** (`hypersub-lph` crate + [`model`]):
//!    the content space of each scheme is recursively partitioned into
//!    content zones; subscriptions map to the smallest covering zone,
//!    events to a maximum-level zone.
//! 2. **Subscription installation & event delivery** ([`install`],
//!    [`delivery`]): Algorithms 2–5 of the paper — surrogate nodes store
//!    subscriptions per zone, maintain *summary filters* whose
//!    subdivisions propagate down the zone tree as *surrogate
//!    subscriptions*, and events climb that chain from their rendezvous
//!    (leaf) zone while the matched SubID list is split along DHT links,
//!    aggregating messages that share a next hop.
//! 3. **Load balancing** ([`loadbal`]): zone-mapping rotation per
//!    scheme/subscheme plus dynamic subscription migration from overloaded
//!    nodes to lightly loaded ring neighbors.
//!
//! ## Quick start
//!
//! ```
//! use hypersub_core::prelude::*;
//!
//! // A 2-attribute scheme over [0, 100]^2.
//! let scheme = SchemeDef::builder("quotes")
//!     .attribute("price", 0.0, 100.0)
//!     .attribute("volume", 0.0, 100.0)
//!     .build(0);
//! let registry = Registry::new(vec![scheme]);
//! let config = SystemConfig::default();
//!
//! // An 8-node network with uniform 10 ms links.
//! let mut net = Network::build(NetworkParams {
//!     nodes: 8,
//!     registry,
//!     config,
//!     seed: 7,
//!     ..NetworkParams::default()
//! });
//!
//! // Node 3 subscribes to price in [10, 20] x any volume.
//! let sub = Subscription::new(Rect::new(vec![10.0, 0.0], vec![20.0, 100.0]));
//! net.subscribe(3, 0, sub);
//! net.run_to_quiescence();
//!
//! // Node 5 publishes an event at (15, 42) — it must reach node 3.
//! net.publish(5, 0, Point(vec![15.0, 42.0]));
//! net.run_to_quiescence();
//!
//! let stats = net.event_stats();
//! assert_eq!(stats[0].delivered, 1);
//! ```

pub mod config;
pub mod delivery;
pub mod digest;
pub mod index;
pub mod install;
pub mod loadbal;
pub mod metrics;
pub mod model;
pub mod msg;
pub mod node;
pub mod repo;
pub mod retry;
pub mod sim;
pub mod strings;
pub mod world;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::config::{LbConfig, SystemConfig};
    pub use crate::metrics::{EventStats, Metrics};
    pub use crate::model::{Event, Registry, SchemeDef, SchemeId, SubId, Subscription};
    pub use crate::node::HyperSubNode;
    pub use crate::sim::{Network, NetworkParams};
    pub use hypersub_lph::{ContentSpace, Point, Rect, ZoneParams};
    pub use hypersub_simnet::SimTime;
}
