//! # HyperSub — content-based publish/subscribe over a DHT
//!
//! A full implementation of *"A Large-scale and Decentralized
//! Infrastructure for Content-based Publish/Subscribe Services"* (Yang,
//! Zhu, Hu — ICPP 2007): a scalable pub/sub platform built on Chord that
//! simultaneously supports any number of pub/sub schemes with different
//! numbers of attributes.
//!
//! The three key mechanisms, each mapped to a module:
//!
//! 1. **Locality-preserving hashing** (`hypersub-lph` crate + [`model`]):
//!    the content space of each scheme is recursively partitioned into
//!    content zones; subscriptions map to the smallest covering zone,
//!    events to a maximum-level zone.
//! 2. **Subscription installation & event delivery** ([`install`],
//!    [`delivery`]): Algorithms 2–5 of the paper — surrogate nodes store
//!    subscriptions per zone, maintain *summary filters* whose
//!    subdivisions propagate down the zone tree as *surrogate
//!    subscriptions*, and events climb that chain from their rendezvous
//!    (leaf) zone while the matched SubID list is split along DHT links,
//!    aggregating messages that share a next hop.
//! 3. **Load balancing** ([`loadbal`]): zone-mapping rotation per
//!    scheme/subscheme plus dynamic subscription migration from overloaded
//!    nodes to lightly loaded ring neighbors.
//!
//! ## Quick start
//!
//! [`prelude`] is the supported entry point: it exports the builder, the
//! error type, and every type the happy path needs. Fallible operations
//! return [`error::Result`] instead of panicking.
//!
//! ```
//! use hypersub_core::prelude::*;
//!
//! # fn main() -> Result<(), HyperSubError> {
//! // A 2-attribute scheme over [0, 100]^2.
//! let scheme = SchemeDef::builder("quotes")
//!     .attribute("price", 0.0, 100.0)
//!     .attribute("volume", 0.0, 100.0)
//!     .build(0);
//!
//! // An 8-node network with uniform 10 ms links.
//! let mut net = Network::builder(8)
//!     .registry(Registry::new(vec![scheme]))
//!     .latency(SimTime::from_millis(10))
//!     .seed(7)
//!     .build()?;
//!
//! // Node 3 subscribes to price in [10, 20] x any volume.
//! let sub = Subscription::new(Rect::new(vec![10.0, 0.0], vec![20.0, 100.0]));
//! net.subscribe(3, 0, sub);
//! net.run_to_quiescence();
//!
//! // Node 5 publishes an event at (15, 42) — it must reach node 3.
//! net.publish(5, 0, Point(vec![15.0, 42.0]))?;
//! net.run_to_quiescence();
//!
//! let stats = net.event_stats();
//! assert_eq!(stats[0].delivered, 1);
//! # Ok(())
//! # }
//! ```
//!
//! ## Observability
//!
//! Runs can be observed without being perturbed: a bounded
//! *flight recorder* ([`NetworkBuilder::flight_recorder`]) captures
//! structured trace events (network verdicts plus protocol events such as
//! retries, rendezvous matches, and migrations), and [`Network::report`]
//! exports a JSON [`report::Report`] bundling the trace summary, protocol
//! metrics, and the run digest. Recording is off by default and never
//! changes run behavior — the golden digests prove it.
//!
//! [`NetworkBuilder::flight_recorder`]: sim::NetworkBuilder::flight_recorder

pub mod config;
pub mod delivery;
pub mod digest;
pub mod error;
pub mod heal;
pub mod index;
pub mod install;
pub mod invariant;
pub mod loadbal;
pub mod metrics;
pub mod model;
pub mod msg;
pub mod node;
pub mod repo;
pub mod report;
pub mod retry;
pub mod sim;
pub mod strings;
pub mod world;

/// Escape hatches for tests, benchmarks, and tooling that need the raw
/// simulator underneath a [`sim::Network`]. Application code should not
/// need anything in here — the `Network` accessors (`metrics`,
/// `deliveries`, `run_digest`, `net`, `topology`, …) cover normal use,
/// and items in this module are exempt from the facade's stability
/// expectations.
pub mod advanced {
    use crate::msg::HyperMsg;
    use crate::node::HyperSubNode;
    use crate::sim::Network;
    use crate::world::HyperWorld;
    use hypersub_simnet::Sim;

    /// Direct access to the discrete-event simulator driving a network.
    pub trait SimAccess {
        /// The underlying simulator.
        fn sim(&self) -> &Sim<HyperSubNode, HyperMsg, HyperWorld>;
        /// Mutable simulator access (scheduling raw timers, poking node
        /// state). Mutations here can invalidate the network's
        /// higher-level invariants; prefer the `Network` API.
        fn sim_mut(&mut self) -> &mut Sim<HyperSubNode, HyperMsg, HyperWorld>;
    }

    impl SimAccess for Network {
        fn sim(&self) -> &Sim<HyperSubNode, HyperMsg, HyperWorld> {
            &self.sim
        }
        fn sim_mut(&mut self) -> &mut Sim<HyperSubNode, HyperMsg, HyperWorld> {
            &mut self.sim
        }
    }
}

/// Convenient glob import for applications — the documented single entry
/// point to the crate's public API.
pub mod prelude {
    pub use crate::config::{HealConfig, LbConfig, RetryConfig, SystemConfig};
    pub use crate::error::{HyperSubError, Result};
    pub use crate::invariant::Verdict;
    pub use crate::metrics::{EventStats, Metrics};
    pub use crate::model::{Event, Registry, SchemeDef, SchemeId, SubId, Subscription};
    pub use crate::node::HyperSubNode;
    pub use crate::report::Report;
    pub use crate::sim::{Network, NetworkBuilder, SnapshotConfig, TopologyKind};
    pub use hypersub_lph::{ContentSpace, Point, Rect, ZoneParams};
    pub use hypersub_simnet::{FaultPlane, FlightRecorder, LinkPolicy, SimTime};
    // The runtime abstraction: protocol entry points (`subscribe`,
    // `publish_event`, the `Node` handlers) are generic over any
    // `NodeRuntime` host — the simulator or `hypersub-net`'s TCP driver —
    // and `WireMsg` is the versioned framing live transports use.
    pub use hypersub_simnet::{Node, NodeRuntime, WireMsg};
}
