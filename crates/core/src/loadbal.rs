//! Load balancing (§4): periodic neighbor load probing and dynamic
//! subscription migration.
//!
//! Each node periodically samples the load on its routing neighbors (and
//! neighbors' neighbors when the probing level exceeds 1). A node N is
//! *heavily loaded* when `L_N > avg · (1 + δ)`. An overloaded node picks
//! up to k lightly loaded neighbors A_1..A_k (in clockwise ring order
//! after N) and migrates stored subscriptions to them, partitioned by the
//! *subscriber's* node id: subscriptions whose subscriber lies in
//! `[ID(A_i), ID(A_{i+1}))` go to A_i, and `[ID(A_k), ID(N))` to A_k —
//! moving each subscription (overlay-)closer to its subscriber, which
//! also shortens the delivery tail. Each acceptor summarizes what it took
//! and registers a surrogate subscription back on N, so events matching
//! at N still reach the migrated subscriptions.

use crate::model::SubId;
use crate::msg::{HyperMsg, MigAck, MigBatch};
use crate::node::{in_closed_open, HyperSubNode, IidTarget, TOKEN_LB};
use crate::repo::{HostedRepo, RepoKey, StoredSub};
use crate::world::HyperWorld;
use hypersub_chord::Peer;
use hypersub_lph::Rect;
use hypersub_simnet::{NodeRuntime, ProtoEvent};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use std::collections::{HashMap, HashSet};

/// Where an offered subscription currently lives on this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubOrigin {
    /// In one of this node's own zone repositories.
    OwnRepo,
    /// In a hosted (migrated-in) repository with this internal id —
    /// re-migration cascades load onward, as the paper's mechanism
    /// implies (migrated subscriptions are ordinary stored subscriptions).
    Hosted(u32),
}

/// One subscription in an outstanding migration offer.
#[derive(Debug, Clone)]
pub struct OfferItem {
    /// Where it lives locally.
    pub origin: SubOrigin,
    /// Its id.
    pub subid: SubId,
    /// Its full-space rect (needed to build forwarding covers on ack).
    pub full: Rect,
}

/// Per-node load-balancer state.
#[derive(Debug, Clone, Default)]
pub struct LbState {
    /// Load samples collected this round: responder index → (load, peer).
    pub samples: HashMap<usize, (u64, Peer)>,
    /// Subscriptions offered for migration and not yet acknowledged.
    pub pending: HashSet<(RepoKey, SubId)>,
    /// Outstanding offers: (target idx, source repo) → offered items.
    pub in_flight: HashMap<(usize, RepoKey), Vec<OfferItem>>,
    /// Rounds executed (diagnostics).
    pub rounds: u64,
    /// Total subscriptions migrated away (diagnostics).
    pub migrated_out: u64,
    /// Where each migrated subscription now lives, so unsubscribes can
    /// chase it: `(source repo, subid) → acceptor`.
    pub migrated_index: HashMap<(RepoKey, SubId), Peer>,
}

impl HyperSubNode {
    /// One load-balancing round: evaluate the previous round's samples
    /// (migrating if overloaded), then probe neighbors afresh. Driven by
    /// the `TOKEN_LB` timer; re-arms itself while enabled.
    pub(crate) fn lb_tick<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        if !self.cfg.lb.enabled {
            return;
        }
        ctx.set_timer(self.cfg.lb.period, TOKEN_LB);
        self.lb.rounds += 1;
        self.evaluate_and_migrate(ctx);
        // Fresh probe round.
        self.lb.samples.clear();
        let me = self.maint.chord.me();
        let ttl = self.cfg.lb.probe_level;
        for p in self.maint.chord.close_neighbors() {
            ctx.send(p.idx, HyperMsg::LoadProbe { origin: me, ttl });
        }
    }

    /// Answers a probe; forwards it one level deeper when `ttl > 1`
    /// (probing level P_l > 1 samples neighbors' neighbors).
    pub(crate) fn handle_load_probe<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        origin: Peer,
        ttl: u8,
    ) {
        ctx.send(origin.idx, HyperMsg::LoadReply { load: self.load() });
        if ttl > 1 {
            for p in self.maint.chord.close_neighbors() {
                if p.idx != origin.idx {
                    ctx.send(
                        p.idx,
                        HyperMsg::LoadProbe {
                            origin,
                            ttl: ttl - 1,
                        },
                    );
                }
            }
        }
    }

    /// Records a probe answer.
    pub(crate) fn handle_load_reply(&mut self, from: usize, load: u64) {
        // We need the responder's ring id for clockwise partitioning; all
        // responders are ring members we learned from our routing state,
        // so find the peer among neighbors (linear scan is fine at these
        // fan-outs). Unknown responders (e.g. from deeper probe levels)
        // are stored with their reply only if identifiable.
        if let Some(p) = self
            .maint
            .chord
            .close_neighbors()
            .into_iter()
            .find(|p| p.idx == from)
        {
            self.lb.samples.insert(from, (load, p));
        }
    }

    /// The migration decision (§4): overloaded ⇔ `L_N > avg(1+δ)`.
    fn evaluate_and_migrate<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R) {
        if self.lb.samples.is_empty() {
            return;
        }
        let my_load = self.load();
        let avg = self
            .lb
            .samples
            .values()
            .map(|&(l, _)| l as f64)
            .sum::<f64>()
            / self.lb.samples.len() as f64;
        // §4: the per-node threshold reflects capacity — a beefier node
        // tolerates proportionally more load before shedding. The
        // capacity-scaled absolute floor keeps the relative rule
        // meaningful when all neighbors are (near-)empty.
        let cap = self.capacity.max(1e-9);
        let threshold =
            (avg * (1.0 + self.cfg.lb.delta) * cap).max(self.cfg.lb.min_load as f64 * cap);
        if (my_load as f64) <= threshold {
            return;
        }

        // Lightly loaded candidates, sorted by load then clockwise order.
        // `<=` matters: a uniform-zero neighborhood (the extreme skew
        // case) must still yield migration targets.
        let mut candidates: Vec<(u64, Peer)> = self
            .lb
            .samples
            .values()
            .filter(|&&(l, _)| (l as f64) <= avg)
            .copied()
            .collect();
        if candidates.is_empty() {
            return;
        }
        candidates.sort_by_key(|&(l, p)| (l, p.id));
        candidates.truncate(self.cfg.lb.max_targets);
        // Clockwise order starting after me: A_1, ..., A_k.
        let my_id = self.maint.chord.id;
        let mut targets: Vec<Peer> = candidates.into_iter().map(|(_, p)| p).collect();
        targets.sort_by_key(|p| p.id.wrapping_sub(my_id));

        // Migrate at most the excess above the neighbor average.
        let budget = (my_load as f64 - avg).ceil() as u64;
        self.offer_migration(ctx, &targets, budget);
    }

    /// Partitions stored subscriptions (own repositories *and* hosted
    /// migrated-in repositories) by subscriber arc and offers them to the
    /// chosen targets, up to `budget` subscriptions total and an even
    /// per-target share — without the per-target cap the wrap-around arc
    /// `[A_k, N)` covers most of the ring and everything would dump onto
    /// one neighbor.
    fn offer_migration<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        targets: &[Peer],
        budget: u64,
    ) {
        let my_id = self.maint.chord.id;
        let k = targets.len();
        // Range for target i: [A_i, A_{i+1}), last range [A_k, N).
        let range_of = |i: usize| -> (u64, u64) {
            let lo = targets[i].id;
            let hi = if i + 1 < k { targets[i + 1].id } else { my_id };
            (lo, hi)
        };
        let per_target = (budget / k as u64).max(1);

        // Candidate pool: (source repo key, local origin, subid, full rect),
        // deterministic order.
        let mut pool: Vec<(RepoKey, SubOrigin, SubId, Rect)> = Vec::new();
        let mut repo_keys: Vec<RepoKey> = self.repos.keys().copied().collect();
        repo_keys.sort_unstable();
        for rk in repo_keys {
            let repo = &self.repos[&rk];
            let mut ids: Vec<SubId> = repo
                .entries
                .iter()
                .filter(|(id, e)| e.is_real() && !self.lb.pending.contains(&(rk, **id)))
                .map(|(&id, _)| id)
                .collect();
            ids.sort_unstable();
            for sid in ids {
                let full = match &repo.entries[&sid] {
                    StoredSub::Real { full, .. } => full.clone(),
                    StoredSub::Surrogate { .. } => unreachable!("filtered to real"),
                };
                pool.push((rk, SubOrigin::OwnRepo, sid, full));
            }
        }
        let mut hosted_iids: Vec<u32> = self.hosted.keys().copied().collect();
        hosted_iids.sort_unstable();
        for hid in hosted_iids {
            let h = &self.hosted[&hid];
            let mut ids: Vec<SubId> = h
                .entries
                .keys()
                .copied()
                .filter(|id| !self.lb.pending.contains(&(h.source, *id)))
                .collect();
            ids.sort_unstable();
            for sid in ids {
                pool.push((
                    h.source,
                    SubOrigin::Hosted(hid),
                    sid,
                    h.entries[&sid].clone(),
                ));
            }
        }

        // Assign pool entries to targets by subscriber arc, respecting
        // both the global budget and the per-target cap.
        let mut remaining = budget;
        let mut taken_per_target = vec![0u64; k];
        let mut assignment: Vec<Vec<(RepoKey, SubOrigin, SubId, Rect)>> = vec![Vec::new(); k];
        for (rk, origin, sid, full) in pool {
            if remaining == 0 {
                break;
            }
            for i in 0..k {
                let (lo, hi) = range_of(i);
                if lo == my_id || taken_per_target[i] >= per_target {
                    continue;
                }
                if in_closed_open(lo, sid.nid, hi) {
                    taken_per_target[i] += 1;
                    remaining = remaining.saturating_sub(1);
                    assignment[i].push((rk, origin, sid, full));
                    break;
                }
            }
        }

        let me = self.maint.chord.me();
        let mut offered_any = false;
        for (i, items) in assignment.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            offered_any = true;
            let offered = items.len() as u64;
            ctx.trace(|| ProtoEvent {
                kind: "lb.offer",
                flow: None,
                a: targets[i].idx as u64,
                b: offered,
            });
            // Group into one MigBatch per source repo key.
            let mut by_source: std::collections::BTreeMap<RepoKey, Vec<(SubOrigin, SubId, Rect)>> =
                std::collections::BTreeMap::new();
            for (rk, origin, sid, full) in items {
                by_source.entry(rk).or_default().push((origin, sid, full));
            }
            let mut target_batches = Vec::with_capacity(by_source.len());
            for (rk, group) in by_source {
                let mut offer_items = Vec::with_capacity(group.len());
                let mut entries = Vec::with_capacity(group.len());
                for (origin, sid, full) in group {
                    self.lb.pending.insert((rk, sid));
                    entries.push((sid, full.clone()));
                    offer_items.push(OfferItem {
                        origin,
                        subid: sid,
                        full,
                    });
                }
                self.lb.in_flight.insert((targets[i].idx, rk), offer_items);
                target_batches.push(MigBatch {
                    source: rk,
                    entries,
                });
            }
            self.send_reliable(
                ctx,
                targets[i].idx,
                HyperMsg::Migrate {
                    origin: me,
                    batches: target_batches,
                },
            );
        }
        if offered_any {
            let at = ctx.me();
            ctx.world().metrics.proto.migration_rounds.inc(at);
        }
    }

    /// Acceptor side: store the migrated subscriptions in hosted repos and
    /// acknowledge with a projected summary per batch.
    pub(crate) fn handle_migrate<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        origin: Peer,
        batches: Vec<MigBatch>,
    ) {
        let mut acks = Vec::with_capacity(batches.len());
        for b in batches {
            if b.entries.is_empty() {
                continue;
            }
            let (scheme_id, ss, _zone) = b.source;
            let scheme = self.registry.scheme(scheme_id);
            // Projected cover of everything accepted.
            let mut summary: Option<Rect> = None;
            for (_, full) in &b.entries {
                let proj = scheme.project_rect(ss, full);
                summary = Some(match summary {
                    None => proj,
                    Some(s) => s.cover(&proj),
                });
            }
            let iid = self.alloc_iid(IidTarget::Hosted);
            let mut hosted = HostedRepo::new(iid, origin.idx, b.source);
            for (sid, full) in b.entries {
                hosted.entries.insert(sid, full);
            }
            self.hosted.insert(iid, hosted);
            acks.push(MigAck {
                source: b.source,
                iid,
                proj_summary: summary.expect("nonempty batch"),
            });
        }
        if !acks.is_empty() {
            let accepted = acks.len() as u64;
            ctx.trace(|| ProtoEvent {
                kind: "lb.migrate_in",
                flow: None,
                a: origin.idx as u64,
                b: accepted,
            });
            let me = self.maint.chord.me();
            self.send_reliable(ctx, origin.idx, HyperMsg::MigrateAck { me, acks });
        }
    }

    /// Origin side: on acknowledgment, replace the migrated entries with
    /// one surrogate subscription pointing at the acceptor.
    pub(crate) fn handle_migrate_ack<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        from: usize,
        acceptor: Peer,
        acks: Vec<MigAck>,
    ) {
        for ack in acks {
            let Some(items) = self.lb.in_flight.remove(&(from, ack.source)) else {
                continue; // duplicate/stale ack
            };
            let acceptor_subid = SubId {
                nid: acceptor.id,
                iid: ack.iid,
            };
            let mut own_count = 0usize;
            let mut hosted_forward_cover: HashMap<u32, Rect> = HashMap::new();
            for item in &items {
                self.lb.pending.remove(&(ack.source, item.subid));
                self.lb
                    .migrated_index
                    .insert((ack.source, item.subid), acceptor);
                match item.origin {
                    SubOrigin::OwnRepo => {
                        if let Some(repo) = self.repos.get_mut(&ack.source) {
                            repo.remove(&item.subid);
                        }
                        own_count += 1;
                    }
                    SubOrigin::Hosted(hid) => {
                        if let Some(h) = self.hosted.get_mut(&hid) {
                            h.entries.remove(&item.subid);
                        }
                        hosted_forward_cover
                            .entry(hid)
                            .and_modify(|r| *r = r.cover(&item.full))
                            .or_insert_with(|| item.full.clone());
                    }
                }
            }
            self.lb.migrated_out += items.len() as u64;
            let at = ctx.me();
            ctx.world()
                .metrics
                .proto
                .migrated_subs
                .add(at, items.len() as u64);
            let moved = items.len() as u64;
            ctx.trace(|| ProtoEvent {
                kind: "lb.migrate_ack",
                flow: None,
                a: from as u64,
                b: moved,
            });
            if own_count > 0 {
                // The acceptor's surrogate subscription: covers the
                // migrated entries, points at the hosted repo. Its rect is
                // contained in the repo summary, so no push-down churn
                // follows.
                if let Some(repo) = self.repos.get_mut(&ack.source) {
                    repo.insert(
                        acceptor_subid,
                        StoredSub::Surrogate {
                            proj: ack.proj_summary.clone(),
                        },
                    );
                }
            }
            // Re-migrated hosted entries leave a forwarding cover so
            // events that climb to this node still reach them one hop on.
            for (hid, cover) in hosted_forward_cover {
                if let Some(h) = self.hosted.get_mut(&hid) {
                    h.forwards.insert(acceptor_subid, cover);
                }
            }
        }
    }
}

impl Encode for SubOrigin {
    fn encode(&self, w: &mut Writer) {
        match self {
            SubOrigin::OwnRepo => w.put_u8(0),
            SubOrigin::Hosted(iid) => {
                w.put_u8(1);
                w.put_u32(*iid);
            }
        }
    }
}

impl Decode for SubOrigin {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => SubOrigin::OwnRepo,
            1 => SubOrigin::Hosted(r.take_u32()?),
            _ => return Err(Error::InvalidValue("sub origin tag")),
        })
    }
}

impl Encode for OfferItem {
    fn encode(&self, w: &mut Writer) {
        self.origin.encode(w);
        self.subid.encode(w);
        self.full.encode(w);
    }
}

impl Decode for OfferItem {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(OfferItem {
            origin: SubOrigin::decode(r)?,
            subid: SubId::decode(r)?,
            full: Rect::decode(r)?,
        })
    }
}

impl Encode for LbState {
    fn encode(&self, w: &mut Writer) {
        crate::repo::encode_map_sorted(&self.samples, w);
        crate::repo::encode_set_sorted(&self.pending, w);
        crate::repo::encode_map_sorted(&self.in_flight, w);
        w.put_u64(self.rounds);
        w.put_u64(self.migrated_out);
        crate::repo::encode_map_sorted(&self.migrated_index, w);
    }
}

impl Decode for LbState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(LbState {
            samples: crate::repo::decode_map(r)?,
            pending: crate::repo::decode_set(r)?,
            in_flight: crate::repo::decode_map(r)?,
            rounds: r.take_u64()?,
            migrated_out: r.take_u64()?,
            migrated_index: crate::repo::decode_map(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb_state_default_is_empty() {
        let s = LbState::default();
        assert!(s.samples.is_empty());
        assert!(s.pending.is_empty());
        assert_eq!(s.rounds, 0);
    }
}
