//! Per-event and per-node metric collection (§5.1's cost metrics).
//!
//! The paper evaluates: (1) **hops** — the maximum path length required to
//! deliver an event to all of its subscribers; (2) **latency** — the
//! maximum time of delivering an event to all subscribers; (3)
//! **bandwidth cost** — total bytes consumed delivering an event (read
//! from [`hypersub_simnet::NetStats`] flows, since every delivery message
//! is tagged with its event id); (4) **in/out node bandwidth** — per-node
//! totals over the run (also from `NetStats`).

use crate::model::SubId;
use hypersub_simnet::{NetStats, SimTime};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use std::collections::HashMap;

/// One recorded publish.
#[derive(Debug, Clone, Copy)]
pub struct PublishRecord {
    /// When the event was published.
    pub time: SimTime,
    /// Publishing node (simulator index).
    pub node: usize,
    /// Ground-truth number of matching subscriptions at publish time.
    pub expected: usize,
}

/// One recorded delivery to a subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The event delivered.
    pub event: u64,
    /// The matched subscription.
    pub subid: SubId,
    /// Delivery time.
    pub time: SimTime,
    /// Network hops the delivering message copy traversed.
    pub hops: u32,
}

/// A named per-node counter that grows on demand (the world does not know
/// the network size up front). Index by simulator node index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerNodeCounter {
    v: Vec<u64>,
}

impl PerNodeCounter {
    /// Adds `k` to node `i`'s count.
    #[inline]
    pub fn add(&mut self, i: usize, k: u64) {
        if i >= self.v.len() {
            self.v.resize(i + 1, 0);
        }
        self.v[i] += k;
    }

    /// Increments node `i`'s count.
    #[inline]
    pub fn inc(&mut self, i: usize) {
        self.add(i, 1);
    }

    /// Node `i`'s count (zero for never-touched nodes).
    pub fn get(&self, i: usize) -> u64 {
        self.v.get(i).copied().unwrap_or(0)
    }

    /// Sum over all nodes.
    pub fn total(&self) -> u64 {
        self.v.iter().sum()
    }

    /// The largest per-node count.
    pub fn max(&self) -> u64 {
        self.v.iter().copied().max().unwrap_or(0)
    }

    /// Per-node counts, indexed by node (trailing untouched nodes absent).
    pub fn per_node(&self) -> &[u64] {
        &self.v
    }
}

/// A log2-bucketed histogram of `u64` samples: bucket `i` counts samples
/// whose value has bit length `i` (bucket 0 holds zeros). Cheap enough
/// for the delivery hot path — one `leading_zeros` and two adds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket counts up to and including the last nonzero bucket; bucket
    /// `i` covers values with bit length `i` (`[2^(i-1), 2^i)`; bucket 0
    /// is exactly zero).
    pub fn buckets(&self) -> &[u64] {
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        &self.buckets[..last]
    }
}

/// Registry of named per-node/per-protocol counters and histograms — the
/// observability extension of the paper's §5.1 cost metrics. Always on
/// (plain counter arithmetic is far below simulation noise) and
/// deliberately *outside* the run digest, so adding instrumentation can
/// never disturb golden digests.
#[derive(Debug, Clone, Default)]
pub struct ProtoMetrics {
    /// Retransmissions sent by the reliable layer (2nd+ transmissions).
    pub retry_attempts: PerNodeCounter,
    /// Reliable sends abandoned after exhausting their attempts.
    pub retry_give_ups: PerNodeCounter,
    /// Acks received for outstanding reliable sends.
    pub acks: PerNodeCounter,
    /// First-transmission-to-ack latency, in microseconds.
    pub ack_latency_us: LogHistogram,
    /// Delivery messages that split into per-hop forwards (Algorithm 5
    /// phase 2 executions with a nonempty group set).
    pub delivery_splits: PerNodeCounter,
    /// Fan-out per delivery split: distinct next hops one message fed.
    pub delivery_fanout: LogHistogram,
    /// Rendezvous markers consumed (Algorithm 5's NULL-target matching).
    pub rendezvous_matches: PerNodeCounter,
    /// Repository entries stored by Algorithm 3 on this node.
    pub sub_registers: PerNodeCounter,
    /// Summary-filter subdivisions pushed to child zones (Algorithm 3
    /// lines 4–9, counted per crossing).
    pub chain_pushes: PerNodeCounter,
    /// Load-balancing rounds in which this node offered migrations.
    pub migration_rounds: PerNodeCounter,
    /// Subscriptions migrated away after acceptor acknowledgment.
    pub migrated_subs: PerNodeCounter,
    /// Soft-state lease ticks fired (self-healing plane).
    pub lease_refreshes: PerNodeCounter,
    /// Replica entries stored on behalf of predecessor origins.
    pub replica_entries: PerNodeCounter,
    /// Replica sets promoted into owned repositories after an ownership
    /// change revealed a dead origin.
    pub promotions: PerNodeCounter,
    /// Migrated-away subscriptions re-homed after their host died.
    pub rehomed_subs: PerNodeCounter,
}

impl ProtoMetrics {
    /// All counters with their registry names, for export.
    pub fn counters(&self) -> [(&'static str, &PerNodeCounter); 13] {
        [
            ("retry.attempts", &self.retry_attempts),
            ("retry.give_ups", &self.retry_give_ups),
            ("retry.acks", &self.acks),
            ("delivery.splits", &self.delivery_splits),
            ("delivery.rendezvous_matches", &self.rendezvous_matches),
            ("install.sub_registers", &self.sub_registers),
            ("install.chain_pushes", &self.chain_pushes),
            ("lb.migration_rounds", &self.migration_rounds),
            ("lb.migrated_subs", &self.migrated_subs),
            ("repair.lease_refreshes", &self.lease_refreshes),
            ("repair.replicas", &self.replica_entries),
            ("repair.promotions", &self.promotions),
            ("repair.rehomes", &self.rehomed_subs),
        ]
    }

    /// All histograms with their registry names, for export.
    pub fn histograms(&self) -> [(&'static str, &LogHistogram); 2] {
        [
            ("retry.ack_latency_us", &self.ack_latency_us),
            ("delivery.fanout", &self.delivery_fanout),
        ]
    }
}

/// Mutable metric sink living in the simulation world.
#[derive(Debug, Default)]
pub struct Metrics {
    publishes: HashMap<u64, PublishRecord>,
    deliveries: Vec<DeliveryRecord>,
    /// Protocol counters and histograms (see [`ProtoMetrics`]).
    pub proto: ProtoMetrics,
}

impl Metrics {
    /// Records an event publication.
    pub fn record_publish(&mut self, event: u64, time: SimTime, node: usize, expected: usize) {
        let prev = self.publishes.insert(
            event,
            PublishRecord {
                time,
                node,
                expected,
            },
        );
        assert!(prev.is_none(), "event {event} published twice");
    }

    /// Records a delivery to a local subscriber.
    pub fn record_delivery(&mut self, event: u64, subid: SubId, time: SimTime, hops: u32) {
        self.deliveries.push(DeliveryRecord {
            event,
            subid,
            time,
            hops,
        });
    }

    /// Raw delivery records.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.deliveries
    }

    /// Raw publish records.
    pub fn publishes(&self) -> &HashMap<u64, PublishRecord> {
        &self.publishes
    }

    /// Aggregates per-event statistics, sorted by event id. `total_subs`
    /// is the number of subscriptions in the system (for the matched
    /// fraction); `net` supplies the per-flow bandwidth.
    pub fn event_stats(&self, total_subs: usize, net: &NetStats) -> Vec<EventStats> {
        let mut by_event: HashMap<u64, Vec<&DeliveryRecord>> = HashMap::new();
        for d in &self.deliveries {
            by_event.entry(d.event).or_default().push(d);
        }
        let mut out: Vec<EventStats> = self
            .publishes
            .iter()
            .map(|(&event, p)| {
                let deliveries = by_event.get(&event).map(|v| v.as_slice()).unwrap_or(&[]);
                // Distinct subscriber subids (defensive: duplicates would
                // mean a protocol bug, surfaced by `duplicates`).
                let mut subids: Vec<SubId> = deliveries.iter().map(|d| d.subid).collect();
                subids.sort_unstable();
                let before = subids.len();
                subids.dedup();
                let flow = net.flow(event);
                EventStats {
                    event,
                    publish_time: p.time,
                    publish_node: p.node,
                    expected: p.expected,
                    delivered: subids.len(),
                    duplicates: before - subids.len(),
                    max_hops: deliveries.iter().map(|d| d.hops).max().unwrap_or(0),
                    max_latency: deliveries
                        .iter()
                        .map(|d| d.time.saturating_sub(p.time))
                        .max()
                        .unwrap_or(SimTime::ZERO),
                    bandwidth_bytes: flow.bytes,
                    messages: flow.msgs,
                    matched_fraction: if total_subs == 0 {
                        0.0
                    } else {
                        p.expected as f64 / total_subs as f64
                    },
                }
            })
            .collect();
        out.sort_unstable_by_key(|s| s.event);
        out
    }
}

impl Encode for PublishRecord {
    fn encode(&self, w: &mut Writer) {
        self.time.encode(w);
        self.node.encode(w);
        self.expected.encode(w);
    }
}

impl Decode for PublishRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(PublishRecord {
            time: SimTime::decode(r)?,
            node: usize::decode(r)?,
            expected: usize::decode(r)?,
        })
    }
}

impl Encode for DeliveryRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.event);
        self.subid.encode(w);
        self.time.encode(w);
        w.put_u32(self.hops);
    }
}

impl Decode for DeliveryRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(DeliveryRecord {
            event: r.take_u64()?,
            subid: SubId::decode(r)?,
            time: SimTime::decode(r)?,
            hops: r.take_u32()?,
        })
    }
}

impl Encode for PerNodeCounter {
    fn encode(&self, w: &mut Writer) {
        self.v.encode(w);
    }
}

impl Decode for PerNodeCounter {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(PerNodeCounter {
            v: Vec::<u64>::decode(r)?,
        })
    }
}

impl Encode for LogHistogram {
    fn encode(&self, w: &mut Writer) {
        self.buckets.encode(w);
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.max);
    }
}

impl Decode for LogHistogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let h = LogHistogram {
            buckets: <[u64; 65]>::decode(r)?,
            count: r.take_u64()?,
            sum: r.take_u64()?,
            max: r.take_u64()?,
        };
        if h.buckets.iter().sum::<u64>() != h.count {
            return Err(Error::InvalidValue("histogram bucket/count mismatch"));
        }
        Ok(h)
    }
}

impl Encode for ProtoMetrics {
    fn encode(&self, w: &mut Writer) {
        self.retry_attempts.encode(w);
        self.retry_give_ups.encode(w);
        self.acks.encode(w);
        self.ack_latency_us.encode(w);
        self.delivery_splits.encode(w);
        self.delivery_fanout.encode(w);
        self.rendezvous_matches.encode(w);
        self.sub_registers.encode(w);
        self.chain_pushes.encode(w);
        self.migration_rounds.encode(w);
        self.migrated_subs.encode(w);
        self.lease_refreshes.encode(w);
        self.replica_entries.encode(w);
        self.promotions.encode(w);
        self.rehomed_subs.encode(w);
    }
}

impl Decode for ProtoMetrics {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(ProtoMetrics {
            retry_attempts: PerNodeCounter::decode(r)?,
            retry_give_ups: PerNodeCounter::decode(r)?,
            acks: PerNodeCounter::decode(r)?,
            ack_latency_us: LogHistogram::decode(r)?,
            delivery_splits: PerNodeCounter::decode(r)?,
            delivery_fanout: LogHistogram::decode(r)?,
            rendezvous_matches: PerNodeCounter::decode(r)?,
            sub_registers: PerNodeCounter::decode(r)?,
            chain_pushes: PerNodeCounter::decode(r)?,
            migration_rounds: PerNodeCounter::decode(r)?,
            migrated_subs: PerNodeCounter::decode(r)?,
            lease_refreshes: PerNodeCounter::decode(r)?,
            replica_entries: PerNodeCounter::decode(r)?,
            promotions: PerNodeCounter::decode(r)?,
            rehomed_subs: PerNodeCounter::decode(r)?,
        })
    }
}

impl Encode for Metrics {
    fn encode(&self, w: &mut Writer) {
        let mut events: Vec<u64> = self.publishes.keys().copied().collect();
        events.sort_unstable();
        w.put_u64(events.len() as u64);
        for e in events {
            w.put_u64(e);
            self.publishes[&e].encode(w);
        }
        // Delivery records in arrival order — `event_stats` output and
        // digest inputs depend on it.
        self.deliveries.encode(w);
        self.proto.encode(w);
    }
}

impl Decode for Metrics {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.take_u64()? as usize;
        let mut publishes = HashMap::with_capacity(n);
        for _ in 0..n {
            let e = r.take_u64()?;
            if publishes.insert(e, PublishRecord::decode(r)?).is_some() {
                return Err(Error::InvalidValue("duplicate publish record"));
            }
        }
        Ok(Metrics {
            publishes,
            deliveries: Vec::<DeliveryRecord>::decode(r)?,
            proto: ProtoMetrics::decode(r)?,
        })
    }
}

/// Aggregated statistics for one event — one row of the paper's Figure 2
/// dataset. `PartialEq` supports replay-determinism assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventStats {
    /// Event id.
    pub event: u64,
    /// When it was published.
    pub publish_time: SimTime,
    /// Publisher node index.
    pub publish_node: usize,
    /// Ground-truth matching subscriptions.
    pub expected: usize,
    /// Distinct subscriptions actually delivered to.
    pub delivered: usize,
    /// Duplicate deliveries observed (should be 0).
    pub duplicates: usize,
    /// Max path length over all deliveries (paper metric 1).
    pub max_hops: u32,
    /// Max delivery latency (paper metric 2).
    pub max_latency: SimTime,
    /// Total bytes of delivery traffic for this event (paper metric 3).
    pub bandwidth_bytes: u64,
    /// Delivery messages sent for this event.
    pub messages: u64,
    /// `expected / total subscriptions` (Figure 2a's x-axis).
    pub matched_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SubId {
        SubId { nid: n, iid: 1 }
    }

    #[test]
    fn aggregates_per_event() {
        let mut m = Metrics::default();
        let net = NetStats::new(4);
        m.record_publish(1, SimTime::from_millis(100), 0, 2);
        m.record_delivery(1, sid(10), SimTime::from_millis(130), 3);
        m.record_delivery(1, sid(11), SimTime::from_millis(150), 5);
        m.record_publish(2, SimTime::from_millis(200), 1, 0);
        let stats = m.event_stats(100, &net);
        assert_eq!(stats.len(), 2);
        let s1 = &stats[0];
        assert_eq!(s1.delivered, 2);
        assert_eq!(s1.expected, 2);
        assert_eq!(s1.max_hops, 5);
        assert_eq!(s1.max_latency, SimTime::from_millis(50));
        assert_eq!(s1.duplicates, 0);
        assert!((s1.matched_fraction - 0.02).abs() < 1e-12);
        let s2 = &stats[1];
        assert_eq!(s2.delivered, 0);
        assert_eq!(s2.max_latency, SimTime::ZERO);
    }

    #[test]
    fn duplicate_deliveries_are_counted_not_double_counted() {
        let mut m = Metrics::default();
        let net = NetStats::new(1);
        m.record_publish(1, SimTime::ZERO, 0, 1);
        m.record_delivery(1, sid(10), SimTime::from_millis(1), 1);
        m.record_delivery(1, sid(10), SimTime::from_millis(2), 2);
        let stats = m.event_stats(10, &net);
        assert_eq!(stats[0].delivered, 1);
        assert_eq!(stats[0].duplicates, 1);
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let mut m = Metrics::default();
        m.record_publish(1, SimTime::ZERO, 0, 0);
        m.record_publish(1, SimTime::ZERO, 0, 0);
    }

    #[test]
    fn per_node_counter_grows_on_demand() {
        let mut c = PerNodeCounter::default();
        c.inc(5);
        c.add(2, 3);
        c.inc(5);
        assert_eq!(c.get(5), 2);
        assert_eq!(c.get(2), 3);
        assert_eq!(c.get(100), 0, "untouched nodes read zero");
        assert_eq!(c.total(), 5);
        assert_eq!(c.max(), 3);
    }

    #[test]
    fn log_histogram_buckets_by_bit_length() {
        let mut h = LogHistogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.max(), 1000);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1000 (10 bits) → 10.
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 2);
        assert_eq!(b[3], 1);
        assert_eq!(b[10], 1);
        assert_eq!(b.len(), 11, "trailing zero buckets are trimmed");
        assert!((h.mean() - 1010.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn proto_metrics_export_names_are_unique() {
        let p = ProtoMetrics::default();
        let mut names: Vec<&str> = p.counters().iter().map(|&(n, _)| n).collect();
        names.extend(p.histograms().iter().map(|&(n, _)| n));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
