//! Per-event and per-node metric collection (§5.1's cost metrics).
//!
//! The paper evaluates: (1) **hops** — the maximum path length required to
//! deliver an event to all of its subscribers; (2) **latency** — the
//! maximum time of delivering an event to all subscribers; (3)
//! **bandwidth cost** — total bytes consumed delivering an event (read
//! from [`hypersub_simnet::NetStats`] flows, since every delivery message
//! is tagged with its event id); (4) **in/out node bandwidth** — per-node
//! totals over the run (also from `NetStats`).

use crate::model::SubId;
use hypersub_simnet::{NetStats, SimTime};
use std::collections::HashMap;

/// One recorded publish.
#[derive(Debug, Clone, Copy)]
pub struct PublishRecord {
    /// When the event was published.
    pub time: SimTime,
    /// Publishing node (simulator index).
    pub node: usize,
    /// Ground-truth number of matching subscriptions at publish time.
    pub expected: usize,
}

/// One recorded delivery to a subscriber.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryRecord {
    /// The event delivered.
    pub event: u64,
    /// The matched subscription.
    pub subid: SubId,
    /// Delivery time.
    pub time: SimTime,
    /// Network hops the delivering message copy traversed.
    pub hops: u32,
}

/// Mutable metric sink living in the simulation world.
#[derive(Debug, Default)]
pub struct Metrics {
    publishes: HashMap<u64, PublishRecord>,
    deliveries: Vec<DeliveryRecord>,
}

impl Metrics {
    /// Records an event publication.
    pub fn record_publish(&mut self, event: u64, time: SimTime, node: usize, expected: usize) {
        let prev = self.publishes.insert(
            event,
            PublishRecord {
                time,
                node,
                expected,
            },
        );
        assert!(prev.is_none(), "event {event} published twice");
    }

    /// Records a delivery to a local subscriber.
    pub fn record_delivery(&mut self, event: u64, subid: SubId, time: SimTime, hops: u32) {
        self.deliveries.push(DeliveryRecord {
            event,
            subid,
            time,
            hops,
        });
    }

    /// Raw delivery records.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.deliveries
    }

    /// Raw publish records.
    pub fn publishes(&self) -> &HashMap<u64, PublishRecord> {
        &self.publishes
    }

    /// Aggregates per-event statistics, sorted by event id. `total_subs`
    /// is the number of subscriptions in the system (for the matched
    /// fraction); `net` supplies the per-flow bandwidth.
    pub fn event_stats(&self, total_subs: usize, net: &NetStats) -> Vec<EventStats> {
        let mut by_event: HashMap<u64, Vec<&DeliveryRecord>> = HashMap::new();
        for d in &self.deliveries {
            by_event.entry(d.event).or_default().push(d);
        }
        let mut out: Vec<EventStats> = self
            .publishes
            .iter()
            .map(|(&event, p)| {
                let deliveries = by_event.get(&event).map(|v| v.as_slice()).unwrap_or(&[]);
                // Distinct subscriber subids (defensive: duplicates would
                // mean a protocol bug, surfaced by `duplicates`).
                let mut subids: Vec<SubId> = deliveries.iter().map(|d| d.subid).collect();
                subids.sort_unstable();
                let before = subids.len();
                subids.dedup();
                let flow = net.flow(event);
                EventStats {
                    event,
                    publish_time: p.time,
                    publish_node: p.node,
                    expected: p.expected,
                    delivered: subids.len(),
                    duplicates: before - subids.len(),
                    max_hops: deliveries.iter().map(|d| d.hops).max().unwrap_or(0),
                    max_latency: deliveries
                        .iter()
                        .map(|d| d.time.saturating_sub(p.time))
                        .max()
                        .unwrap_or(SimTime::ZERO),
                    bandwidth_bytes: flow.bytes,
                    messages: flow.msgs,
                    matched_fraction: if total_subs == 0 {
                        0.0
                    } else {
                        p.expected as f64 / total_subs as f64
                    },
                }
            })
            .collect();
        out.sort_unstable_by_key(|s| s.event);
        out
    }
}

/// Aggregated statistics for one event — one row of the paper's Figure 2
/// dataset. `PartialEq` supports replay-determinism assertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventStats {
    /// Event id.
    pub event: u64,
    /// When it was published.
    pub publish_time: SimTime,
    /// Publisher node index.
    pub publish_node: usize,
    /// Ground-truth matching subscriptions.
    pub expected: usize,
    /// Distinct subscriptions actually delivered to.
    pub delivered: usize,
    /// Duplicate deliveries observed (should be 0).
    pub duplicates: usize,
    /// Max path length over all deliveries (paper metric 1).
    pub max_hops: u32,
    /// Max delivery latency (paper metric 2).
    pub max_latency: SimTime,
    /// Total bytes of delivery traffic for this event (paper metric 3).
    pub bandwidth_bytes: u64,
    /// Delivery messages sent for this event.
    pub messages: u64,
    /// `expected / total subscriptions` (Figure 2a's x-axis).
    pub matched_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SubId {
        SubId { nid: n, iid: 1 }
    }

    #[test]
    fn aggregates_per_event() {
        let mut m = Metrics::default();
        let net = NetStats::new(4);
        m.record_publish(1, SimTime::from_millis(100), 0, 2);
        m.record_delivery(1, sid(10), SimTime::from_millis(130), 3);
        m.record_delivery(1, sid(11), SimTime::from_millis(150), 5);
        m.record_publish(2, SimTime::from_millis(200), 1, 0);
        let stats = m.event_stats(100, &net);
        assert_eq!(stats.len(), 2);
        let s1 = &stats[0];
        assert_eq!(s1.delivered, 2);
        assert_eq!(s1.expected, 2);
        assert_eq!(s1.max_hops, 5);
        assert_eq!(s1.max_latency, SimTime::from_millis(50));
        assert_eq!(s1.duplicates, 0);
        assert!((s1.matched_fraction - 0.02).abs() < 1e-12);
        let s2 = &stats[1];
        assert_eq!(s2.delivered, 0);
        assert_eq!(s2.max_latency, SimTime::ZERO);
    }

    #[test]
    fn duplicate_deliveries_are_counted_not_double_counted() {
        let mut m = Metrics::default();
        let net = NetStats::new(1);
        m.record_publish(1, SimTime::ZERO, 0, 1);
        m.record_delivery(1, sid(10), SimTime::from_millis(1), 1);
        m.record_delivery(1, sid(10), SimTime::from_millis(2), 2);
        let stats = m.event_stats(10, &net);
        assert_eq!(stats[0].delivered, 1);
        assert_eq!(stats[0].duplicates, 1);
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let mut m = Metrics::default();
        m.record_publish(1, SimTime::ZERO, 0, 0);
        m.record_publish(1, SimTime::ZERO, 0, 0);
    }
}
