//! The pub/sub model (§3.1) and the scheme registry.
//!
//! Following Fabret et al., a pub/sub *scheme* is a set of attributes,
//! each with a name, type and domain. An *event* is a set of equalities on
//! all attributes (a point); a *subscription* is a conjunction of
//! predicates, each a constant or range on one attribute (a hypercuboid —
//! unspecified attributes default to the whole domain). String
//! prefix/suffix predicates are assumed converted to numeric ranges, as
//! the paper prescribes.
//!
//! §3.5's improvement divides a scheme into *subschemes* (attribute
//! subsets that subscribers tend to specify together); each subscheme
//! functions as an individual zone tree, and every event visits one
//! rendezvous zone per subscheme.

use hypersub_lph::{rotation_offset, ContentSpace, Point, Rect};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use serde::{Deserialize, Serialize};

/// Identifies a pub/sub scheme within a [`Registry`].
pub type SchemeId = u32;

/// Identifies a subscheme within its scheme.
pub type SubschemeId = u8;

/// A subscription identifier: the subscriber's node (ring) id plus a
/// node-local internal id. The paper serializes this in 9 bytes (8-byte
/// nodeID + 1-byte internalID); we keep a wider internal id in memory but
/// charge 9 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubId {
    /// Subscriber's (or surrogate owner's) Chord identifier.
    pub nid: u64,
    /// Internal id distinguishing subscriptions of one node.
    pub iid: u32,
}

/// One entry of an event message's SubID list: either a concrete
/// subscription target or the `(key(cz), NULL)` rendezvous marker that
/// starts delivery (Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubTarget {
    /// Routing key: a subscriber node id, or the rendezvous zone key.
    pub nid: u64,
    /// Internal id; `None` is the paper's NULL rendezvous marker.
    pub iid: Option<u32>,
}

impl SubTarget {
    /// The rendezvous marker for a zone key.
    pub fn rendezvous(key: u64) -> Self {
        Self {
            nid: key,
            iid: None,
        }
    }

    /// A concrete subscription target.
    pub fn sub(id: SubId) -> Self {
        Self {
            nid: id.nid,
            iid: Some(id.iid),
        }
    }
}

/// An event: a point in its scheme's content space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Globally unique event id (also the flow tag for bandwidth
    /// accounting).
    pub id: u64,
    /// One value per attribute of the scheme.
    pub point: Point,
}

/// A subscription: a hypercuboid over the *full* scheme space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Closed per-attribute ranges; unspecified attributes span the domain.
    pub rect: Rect,
}

impl Subscription {
    /// Creates a subscription from its hypercuboid.
    pub fn new(rect: Rect) -> Self {
        Self { rect }
    }

    /// Builds a subscription from `(attribute, lo, hi)` predicates;
    /// attributes not mentioned default to their whole domain. Multiple
    /// predicates on one attribute intersect (the paper instead splits
    /// such subscriptions; intersection is equivalent for conjunctions).
    pub fn from_predicates(space: &ContentSpace, preds: &[(usize, f64, f64)]) -> Self {
        let mut rect = space.bounding_rect();
        for &(attr, lo, hi) in preds {
            assert!(attr < space.dims(), "predicate on unknown attribute {attr}");
            rect.lo[attr] = rect.lo[attr].max(lo);
            rect.hi[attr] = rect.hi[attr].min(hi);
            assert!(
                rect.lo[attr] <= rect.hi[attr],
                "contradictory predicates on attribute {attr}"
            );
        }
        Self { rect }
    }

    /// Does this subscription match `event`? (§3.1: "an event matches a
    /// subscription if it is within the corresponding hypercuboid".)
    pub fn matches(&self, event: &Event) -> bool {
        self.rect.contains_point(&event.point)
    }
}

/// A subscheme: a subset of a scheme's attributes with its own projected
/// content space and zone-mapping rotation offset.
#[derive(Debug, Clone)]
pub struct SubschemeDef {
    /// Indices of the scheme attributes this subscheme covers.
    pub attrs: Vec<usize>,
    /// The projected content space (one dimension per attribute above).
    pub space: ContentSpace,
    /// Zone-mapping rotation offset φ (0 when rotation is disabled).
    pub rotation: u64,
}

/// A pub/sub scheme definition.
#[derive(Debug, Clone)]
pub struct SchemeDef {
    /// Scheme id (index in the registry).
    pub id: SchemeId,
    /// Scheme name (also the rotation-hash input).
    pub name: String,
    /// Attribute names, in dimension order.
    pub attr_names: Vec<String>,
    /// The full content space.
    pub space: ContentSpace,
    /// Subschemes (at least one; the default single subscheme covers all
    /// attributes).
    pub subschemes: Vec<SubschemeDef>,
}

impl SchemeDef {
    /// Starts building a scheme.
    pub fn builder(name: &str) -> SchemeBuilder {
        SchemeBuilder {
            name: name.to_string(),
            attrs: Vec::new(),
            subschemes: Vec::new(),
            rotation: true,
        }
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.space.dims()
    }

    /// Projects a full-space point onto subscheme `ss`.
    pub fn project_point(&self, ss: SubschemeId, p: &Point) -> Point {
        let def = &self.subschemes[ss as usize];
        Point(def.attrs.iter().map(|&a| p.0[a]).collect())
    }

    /// True when subscheme `ss` maps a `dims`-dimensional point to
    /// itself, i.e. [`Self::project_point`] would return a plain copy.
    /// The delivery path uses this to borrow the event point instead of
    /// allocating the projection on every message receive (the common
    /// single-subscheme case).
    pub fn projection_is_identity(&self, ss: SubschemeId, dims: usize) -> bool {
        let attrs = &self.subschemes[ss as usize].attrs;
        attrs.len() == dims && attrs.iter().enumerate().all(|(i, &a)| a == i)
    }

    /// Projects a full-space rect onto subscheme `ss`.
    pub fn project_rect(&self, ss: SubschemeId, r: &Rect) -> Rect {
        let def = &self.subschemes[ss as usize];
        Rect {
            lo: def.attrs.iter().map(|&a| r.lo[a]).collect(),
            hi: def.attrs.iter().map(|&a| r.hi[a]).collect(),
        }
    }

    /// Chooses the subscheme a subscription installs into: the one where
    /// the subscription constrains the most attributes (ties: lowest
    /// index). "Constrains" means the range is strictly narrower than the
    /// attribute's domain.
    pub fn choose_subscheme(&self, sub: &Subscription) -> SubschemeId {
        let mut best = 0usize;
        let mut best_score = usize::MAX; // force initialization below
        for (i, def) in self.subschemes.iter().enumerate() {
            let score = def
                .attrs
                .iter()
                .filter(|&&a| {
                    let d = self.space.domain(a);
                    sub.rect.lo[a] > d.lo || sub.rect.hi[a] < d.hi
                })
                .count();
            if best_score == usize::MAX || score > best_score {
                best = i;
                best_score = score;
            }
        }
        best as SubschemeId
    }
}

/// Fluent builder for [`SchemeDef`].
#[derive(Debug)]
pub struct SchemeBuilder {
    name: String,
    attrs: Vec<(String, f64, f64)>,
    subschemes: Vec<Vec<usize>>,
    rotation: bool,
}

impl SchemeBuilder {
    /// Adds an attribute with domain `[lo, hi]`.
    pub fn attribute(mut self, name: &str, lo: f64, hi: f64) -> Self {
        self.attrs.push((name.to_string(), lo, hi));
        self
    }

    /// Declares a subscheme over the given attribute indices (§3.5). If no
    /// subscheme is declared, a single subscheme over all attributes is
    /// created.
    pub fn subscheme(mut self, attrs: &[usize]) -> Self {
        self.subschemes.push(attrs.to_vec());
        self
    }

    /// Disables zone-mapping rotation for this scheme (ablation support).
    pub fn without_rotation(mut self) -> Self {
        self.rotation = false;
        self
    }

    /// Finalizes the definition with the given scheme id.
    pub fn build(self, id: SchemeId) -> SchemeDef {
        assert!(
            !self.attrs.is_empty(),
            "scheme needs at least one attribute"
        );
        let space = ContentSpace::new(
            self.attrs
                .iter()
                .map(|&(_, lo, hi)| hypersub_lph::space::Domain::new(lo, hi))
                .collect(),
        );
        let subschemes: Vec<Vec<usize>> = if self.subschemes.is_empty() {
            vec![(0..self.attrs.len()).collect()]
        } else {
            self.subschemes
        };
        assert!(subschemes.len() <= u8::MAX as usize, "too many subschemes");
        let defs = subschemes
            .iter()
            .enumerate()
            .map(|(i, attrs)| {
                assert!(!attrs.is_empty(), "subscheme {i} is empty");
                for &a in attrs {
                    assert!(a < self.attrs.len(), "subscheme {i}: bad attribute {a}");
                }
                let space = ContentSpace::new(
                    attrs
                        .iter()
                        .map(|&a| {
                            hypersub_lph::space::Domain::new(self.attrs[a].1, self.attrs[a].2)
                        })
                        .collect(),
                );
                let rotation = if self.rotation {
                    rotation_offset(&format!("{}#{}", self.name, i))
                } else {
                    0
                };
                SubschemeDef {
                    attrs: attrs.clone(),
                    space,
                    rotation,
                }
            })
            .collect();
        SchemeDef {
            id,
            name: self.name,
            attr_names: self.attrs.iter().map(|a| a.0.clone()).collect(),
            space,
            subschemes: defs,
        }
    }
}

/// All schemes known to a network; shared immutably by every node.
#[derive(Debug, Clone)]
pub struct Registry {
    schemes: Vec<SchemeDef>,
}

impl Registry {
    /// Builds a registry; scheme ids must equal their index.
    pub fn new(schemes: Vec<SchemeDef>) -> Self {
        for (i, s) in schemes.iter().enumerate() {
            assert_eq!(s.id as usize, i, "scheme id must equal its index");
        }
        Self { schemes }
    }

    /// Looks up a scheme.
    pub fn scheme(&self, id: SchemeId) -> &SchemeDef {
        &self.schemes[id as usize]
    }

    /// All schemes.
    pub fn schemes(&self) -> &[SchemeDef] {
        &self.schemes
    }

    /// Number of schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// True when no schemes are registered.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }
}

impl Encode for SubId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.nid);
        w.put_u32(self.iid);
    }
}

impl Decode for SubId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(SubId {
            nid: r.take_u64()?,
            iid: r.take_u32()?,
        })
    }
}

impl Encode for SubTarget {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.nid);
        self.iid.encode(w);
    }
}

impl Decode for SubTarget {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(SubTarget {
            nid: r.take_u64()?,
            iid: Option::<u32>::decode(r)?,
        })
    }
}

impl Encode for Event {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        self.point.encode(w);
    }
}

impl Decode for Event {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(Event {
            id: r.take_u64()?,
            point: Point::decode(r)?,
        })
    }
}

impl Encode for Subscription {
    fn encode(&self, w: &mut Writer) {
        self.rect.encode(w);
    }
}

impl Decode for Subscription {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(Subscription {
            rect: Rect::decode(r)?,
        })
    }
}

impl Encode for SubschemeDef {
    fn encode(&self, w: &mut Writer) {
        self.attrs.encode(w);
        self.space.encode(w);
        w.put_u64(self.rotation);
    }
}

impl Decode for SubschemeDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(SubschemeDef {
            attrs: Vec::<usize>::decode(r)?,
            space: ContentSpace::decode(r)?,
            rotation: r.take_u64()?,
        })
    }
}

impl Encode for SchemeDef {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.id);
        self.name.encode(w);
        self.attr_names.encode(w);
        self.space.encode(w);
        self.subschemes.encode(w);
    }
}

impl Decode for SchemeDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(SchemeDef {
            id: r.take_u32()?,
            name: String::decode(r)?,
            attr_names: Vec::<String>::decode(r)?,
            space: ContentSpace::decode(r)?,
            subschemes: Vec::<SubschemeDef>::decode(r)?,
        })
    }
}

impl Encode for Registry {
    fn encode(&self, w: &mut Writer) {
        self.schemes.encode(w);
    }
}

impl Decode for Registry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let schemes = Vec::<SchemeDef>::decode(r)?;
        for (i, s) in schemes.iter().enumerate() {
            if s.id as usize != i {
                return Err(Error::InvalidValue("registry scheme id/index"));
            }
        }
        Ok(Registry { schemes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quote_scheme() -> SchemeDef {
        SchemeDef::builder("quotes")
            .attribute("price", 0.0, 100.0)
            .attribute("volume", 0.0, 1000.0)
            .build(0)
    }

    #[test]
    fn builder_defaults_single_full_subscheme() {
        let s = quote_scheme();
        assert_eq!(s.subschemes.len(), 1);
        assert_eq!(s.subschemes[0].attrs, vec![0, 1]);
        assert_ne!(s.subschemes[0].rotation, 0);
    }

    #[test]
    fn without_rotation_zeroes_offset() {
        let s = SchemeDef::builder("x")
            .attribute("a", 0.0, 1.0)
            .without_rotation()
            .build(0);
        assert_eq!(s.subschemes[0].rotation, 0);
    }

    #[test]
    fn from_predicates_defaults_and_intersects() {
        let s = quote_scheme();
        let sub = Subscription::from_predicates(&s.space, &[(0, 10.0, 20.0), (0, 15.0, 30.0)]);
        assert_eq!(sub.rect.lo, vec![15.0, 0.0]);
        assert_eq!(sub.rect.hi, vec![20.0, 1000.0]);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn contradictory_predicates_panic() {
        let s = quote_scheme();
        Subscription::from_predicates(&s.space, &[(0, 10.0, 20.0), (0, 30.0, 40.0)]);
    }

    #[test]
    fn matching_is_closed() {
        let s = quote_scheme();
        let sub = Subscription::from_predicates(&s.space, &[(0, 10.0, 20.0)]);
        let ev = |p: f64, v: f64| Event {
            id: 0,
            point: Point(vec![p, v]),
        };
        assert!(sub.matches(&ev(10.0, 0.0)));
        assert!(sub.matches(&ev(20.0, 1000.0)));
        assert!(!sub.matches(&ev(20.1, 500.0)));
    }

    #[test]
    fn projection() {
        let s = SchemeDef::builder("s")
            .attribute("a", 0.0, 1.0)
            .attribute("b", 0.0, 2.0)
            .attribute("c", 0.0, 3.0)
            .subscheme(&[0, 2])
            .subscheme(&[1])
            .build(0);
        let p = Point(vec![0.5, 1.5, 2.5]);
        assert_eq!(s.project_point(0, &p), Point(vec![0.5, 2.5]));
        assert_eq!(s.project_point(1, &p), Point(vec![1.5]));
        let r = Rect::new(vec![0.1, 0.2, 0.3], vec![0.9, 1.8, 2.7]);
        let pr = s.project_rect(1, &r);
        assert_eq!(pr.lo, vec![0.2]);
        assert_eq!(pr.hi, vec![1.8]);
    }

    #[test]
    fn choose_subscheme_prefers_most_constrained() {
        let s = SchemeDef::builder("s")
            .attribute("a", 0.0, 1.0)
            .attribute("b", 0.0, 1.0)
            .attribute("c", 0.0, 1.0)
            .subscheme(&[0])
            .subscheme(&[1, 2])
            .build(0);
        // Constrains only b and c.
        let sub = Subscription::from_predicates(&s.space, &[(1, 0.1, 0.2), (2, 0.1, 0.2)]);
        assert_eq!(s.choose_subscheme(&sub), 1);
        // Constrains only a.
        let sub = Subscription::from_predicates(&s.space, &[(0, 0.1, 0.2)]);
        assert_eq!(s.choose_subscheme(&sub), 0);
        // Constrains nothing: first subscheme.
        let sub = Subscription::from_predicates(&s.space, &[]);
        assert_eq!(s.choose_subscheme(&sub), 0);
    }

    #[test]
    fn rendezvous_target_roundtrip() {
        let t = SubTarget::rendezvous(42);
        assert_eq!(t.iid, None);
        let id = SubId { nid: 7, iid: 3 };
        let t = SubTarget::sub(id);
        assert_eq!(t.nid, 7);
        assert_eq!(t.iid, Some(3));
    }

    #[test]
    #[should_panic(expected = "id must equal its index")]
    fn registry_checks_ids() {
        Registry::new(vec![SchemeDef::builder("x")
            .attribute("a", 0.0, 1.0)
            .build(5)]);
    }
}
