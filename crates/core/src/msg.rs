//! HyperSub wire messages and their size model.
//!
//! §5.1: "The size of each event message is modeled in bytes as: 20 bytes
//! for packet header, 100 bytes for event, and 9 bytes for each SubID (8
//! bytes for subscriber's nodeID, and 1 byte for internalID) carried in
//! the message." Control messages use the same 20-byte header plus the
//! natural serialized size of their fields (8-byte floats, 9-byte SubIds,
//! 9-byte zone codes).

use crate::model::{Event, SchemeId, SubId, SubTarget, SubschemeId};
use crate::repo::{RepoKey, StoredSub};
use hypersub_chord::proto::ChordMsg;
use hypersub_chord::Peer;
use hypersub_lph::{Rect, ZoneCode};
use hypersub_simnet::{Payload, WireMsg};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use std::sync::Arc;

/// 20-byte packet header (paper's model).
pub const HEADER_BYTES: usize = 20;
/// 100-byte event body (paper's model).
pub const EVENT_BYTES: usize = 100;
/// 9-byte SubID: 8-byte nodeID + 1-byte internalID (paper's model).
pub const SUBID_BYTES: usize = 9;
/// Zone code on the wire: 8-byte code + 1-byte level.
pub const ZONE_BYTES: usize = 9;

fn rect_bytes(r: &Rect) -> usize {
    2 * 8 * r.dims()
}

/// A payload routed greedily to the successor of `key` (subscription
/// installation and surrogate registration both use this wrapper).
#[derive(Debug, Clone)]
pub enum Routed {
    /// Algorithm 2: register a subscription at its zone's surrogate node.
    Register {
        /// Scheme the subscription belongs to.
        scheme: SchemeId,
        /// Subscheme it was installed into.
        ss: SubschemeId,
        /// The zone LPH mapped it to.
        zone: ZoneCode,
        /// Subscription id `(subscriber nodeID, internalID)`.
        subid: SubId,
        /// Full-space hypercuboid.
        full: Rect,
        /// Projection onto the subscheme space.
        proj: Rect,
    },
    /// Removes a subscription from its zone repository (unsubscribe).
    /// The zone's summary filter stays conservative (it may now
    /// over-cover), which preserves delivery correctness; it is rebuilt
    /// exactly on the next soft-state refresh.
    Unregister {
        /// Scheme.
        scheme: SchemeId,
        /// Subscheme the subscription was installed into.
        ss: SubschemeId,
        /// Zone it was registered at.
        zone: ZoneCode,
        /// The subscription to remove.
        subid: SubId,
    },
    /// Algorithm 3: register/update a summary-filter subdivision at a
    /// child zone as a surrogate subscription.
    RegisterSurrogate {
        /// Scheme.
        scheme: SchemeId,
        /// Subscheme.
        ss: SubschemeId,
        /// The child zone being registered into.
        zone: ZoneCode,
        /// Points back at the parent zone's repository.
        owner: SubId,
        /// The subdivision rect (projected space).
        proj: Rect,
    },
}

impl Routed {
    fn body_size(&self) -> usize {
        match self {
            Routed::Register { full, proj, .. } => {
                4 + 1 + ZONE_BYTES + SUBID_BYTES + rect_bytes(full) + rect_bytes(proj)
            }
            Routed::Unregister { .. } => 4 + 1 + ZONE_BYTES + SUBID_BYTES,
            Routed::RegisterSurrogate { proj, .. } => {
                4 + 1 + ZONE_BYTES + SUBID_BYTES + rect_bytes(proj)
            }
        }
    }
}

/// An event message: the event plus its SubID list (Algorithm 4/5).
#[derive(Debug, Clone)]
pub struct DeliveryMsg {
    /// Scheme of the event.
    pub scheme: SchemeId,
    /// Which subscheme's rendezvous chain this copy serves.
    pub ss: SubschemeId,
    /// The event itself. Shared via `Arc`: one event fans out into one
    /// message per subscheme and then one per DHT hop, and every copy
    /// carries the identical immutable body — cloning the pointer instead
    /// of the `Vec<f64>` point makes forwarding allocation-free. The wire
    /// size model is unaffected (the modeled 100-byte body rides every
    /// copy).
    pub event: Arc<Event>,
    /// Network hops this copy has traversed.
    pub hops: u32,
    /// The forwarding node — piggybacked DHT maintenance (§3.2: "the
    /// maintenance of DHT links can be piggybacked onto the event
    /// delivery message"): receivers treat the sender as a live routing
    /// candidate, refreshing predecessor/successor knowledge for free.
    /// Fits in the 20-byte packet header, so it adds no modeled bytes.
    pub sender: Option<Peer>,
    /// The SubID list.
    pub targets: Vec<SubTarget>,
}

/// One batch of a migration: entries leaving a specific zone repository.
#[derive(Debug, Clone)]
pub struct MigBatch {
    /// Repository the entries are migrating out of.
    pub source: RepoKey,
    /// `(subid, full rect)` pairs.
    pub entries: Vec<(SubId, Rect)>,
}

/// Acknowledgement for one accepted batch.
#[derive(Debug, Clone)]
pub struct MigAck {
    /// Repository the batch came from.
    pub source: RepoKey,
    /// Internal id the acceptor allocated for the hosted repo.
    pub iid: u32,
    /// Projected cover of the accepted entries — installed back at the
    /// origin as a surrogate subscription.
    pub proj_summary: Rect,
}

/// One zone repository's worth of replicated entries (self-healing plane).
#[derive(Debug, Clone)]
pub struct ReplicaBatch {
    /// Repository the entries belong to at the origin.
    pub key: RepoKey,
    /// The replicated entries, sorted by id for deterministic iteration.
    pub entries: Vec<(SubId, StoredSub)>,
}

/// All HyperSub traffic.
#[derive(Debug, Clone)]
pub enum HyperMsg {
    /// Greedy-routed control payload.
    Route {
        /// Destination key (already rotation-adjusted).
        key: u64,
        /// The payload.
        inner: Routed,
    },
    /// Event delivery (Algorithm 5).
    Delivery(DeliveryMsg),
    /// Load-balancing probe (§4); `ttl > 1` probes neighbors' neighbors.
    LoadProbe {
        /// Node collecting the samples.
        origin: Peer,
        /// Remaining probe depth.
        ttl: u8,
    },
    /// Probe answer.
    LoadReply {
        /// The responder's current load (stored subscriptions).
        load: u64,
    },
    /// Subscription migration offer from an overloaded node.
    Migrate {
        /// The overloaded node.
        origin: Peer,
        /// Per-repository batches.
        batches: Vec<MigBatch>,
    },
    /// Migration acceptance.
    MigrateAck {
        /// The accepting node (the origin installs surrogate subscriptions
        /// pointing at this peer).
        me: Peer,
        /// One ack per accepted batch.
        acks: Vec<MigAck>,
    },
    /// Successor replication of rendezvous state (self-healing plane).
    /// `full` snapshots carry the origin's entire repository set and
    /// replace the receiver's replica of that origin (anti-entropy);
    /// incremental updates merge single entries as they register.
    ReplicaUpdate {
        /// The rendezvous node whose state this replicates.
        origin: Peer,
        /// Replace (`true`, periodic snapshot) vs merge (`false`,
        /// incremental) semantics at the receiver.
        full: bool,
        /// Per-repository entry batches.
        repos: Vec<ReplicaBatch>,
    },
    /// Embedded Chord maintenance traffic.
    Chord(ChordMsg),
    /// A request-shaped message sent with ack/retransmit protection: the
    /// receiver acks `token` to the sender, then processes `inner`. An
    /// 8-byte token rides along on the wire.
    Reliable {
        /// Sender-unique retransmission token.
        token: u64,
        /// The protected message.
        inner: Box<HyperMsg>,
    },
    /// Receipt acknowledgement for a [`HyperMsg::Reliable`] transmission.
    Ack {
        /// The acknowledged token.
        token: u64,
    },
}

impl Payload for HyperMsg {
    fn wire_size(&self) -> usize {
        match self {
            HyperMsg::Route { inner, .. } => HEADER_BYTES + 8 + inner.body_size(),
            HyperMsg::Delivery(d) => HEADER_BYTES + EVENT_BYTES + SUBID_BYTES * d.targets.len(),
            HyperMsg::LoadProbe { .. } => HEADER_BYTES + 13,
            HyperMsg::LoadReply { .. } => HEADER_BYTES + 8,
            HyperMsg::Migrate { batches, .. } => {
                HEADER_BYTES
                    + 12
                    + batches
                        .iter()
                        .map(|b| {
                            ZONE_BYTES
                                + 5
                                + b.entries
                                    .iter()
                                    .map(|(_, r)| SUBID_BYTES + rect_bytes(r))
                                    .sum::<usize>()
                        })
                        .sum::<usize>()
            }
            HyperMsg::MigrateAck { acks, .. } => {
                HEADER_BYTES
                    + 12
                    + acks
                        .iter()
                        .map(|a| ZONE_BYTES + 5 + 4 + rect_bytes(&a.proj_summary))
                        .sum::<usize>()
            }
            HyperMsg::ReplicaUpdate { repos, .. } => {
                HEADER_BYTES
                    + 12
                    + 1
                    + repos
                        .iter()
                        .map(|b| {
                            ZONE_BYTES
                                + 5
                                + b.entries
                                    .iter()
                                    .map(|(_, s)| {
                                        SUBID_BYTES
                                            + match s {
                                                StoredSub::Real { full, proj } => {
                                                    rect_bytes(full) + rect_bytes(proj)
                                                }
                                                StoredSub::Surrogate { proj } => rect_bytes(proj),
                                            }
                                    })
                                    .sum::<usize>()
                        })
                        .sum::<usize>()
            }
            HyperMsg::Chord(m) => m.wire_size(),
            HyperMsg::Reliable { inner, .. } => 8 + inner.wire_size(),
            HyperMsg::Ack { .. } => HEADER_BYTES + 8,
        }
    }

    fn flow(&self) -> Option<u64> {
        match self {
            HyperMsg::Delivery(d) => Some(d.event.id),
            HyperMsg::Reliable { inner, .. } => inner.flow(),
            _ => None,
        }
    }
}

impl Encode for Routed {
    fn encode(&self, w: &mut Writer) {
        match self {
            Routed::Register {
                scheme,
                ss,
                zone,
                subid,
                full,
                proj,
            } => {
                w.put_u8(0);
                w.put_u32(*scheme);
                w.put_u8(*ss);
                zone.encode(w);
                subid.encode(w);
                full.encode(w);
                proj.encode(w);
            }
            Routed::Unregister {
                scheme,
                ss,
                zone,
                subid,
            } => {
                w.put_u8(1);
                w.put_u32(*scheme);
                w.put_u8(*ss);
                zone.encode(w);
                subid.encode(w);
            }
            Routed::RegisterSurrogate {
                scheme,
                ss,
                zone,
                owner,
                proj,
            } => {
                w.put_u8(2);
                w.put_u32(*scheme);
                w.put_u8(*ss);
                zone.encode(w);
                owner.encode(w);
                proj.encode(w);
            }
        }
    }
}

impl Decode for Routed {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => Routed::Register {
                scheme: r.take_u32()?,
                ss: r.take_u8()?,
                zone: ZoneCode::decode(r)?,
                subid: SubId::decode(r)?,
                full: Rect::decode(r)?,
                proj: Rect::decode(r)?,
            },
            1 => Routed::Unregister {
                scheme: r.take_u32()?,
                ss: r.take_u8()?,
                zone: ZoneCode::decode(r)?,
                subid: SubId::decode(r)?,
            },
            2 => Routed::RegisterSurrogate {
                scheme: r.take_u32()?,
                ss: r.take_u8()?,
                zone: ZoneCode::decode(r)?,
                owner: SubId::decode(r)?,
                proj: Rect::decode(r)?,
            },
            _ => return Err(Error::InvalidValue("routed tag")),
        })
    }
}

impl Encode for DeliveryMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.scheme);
        w.put_u8(self.ss);
        self.event.as_ref().encode(w);
        w.put_u32(self.hops);
        self.sender.encode(w);
        self.targets.encode(w);
    }
}

impl Decode for DeliveryMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(DeliveryMsg {
            scheme: r.take_u32()?,
            ss: r.take_u8()?,
            event: Arc::new(Event::decode(r)?),
            hops: r.take_u32()?,
            sender: Option::<Peer>::decode(r)?,
            targets: Vec::<SubTarget>::decode(r)?,
        })
    }
}

impl Encode for MigBatch {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.entries.encode(w);
    }
}

impl Decode for MigBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(MigBatch {
            source: RepoKey::decode(r)?,
            entries: Vec::<(SubId, Rect)>::decode(r)?,
        })
    }
}

impl Encode for MigAck {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        w.put_u32(self.iid);
        self.proj_summary.encode(w);
    }
}

impl Decode for MigAck {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(MigAck {
            source: RepoKey::decode(r)?,
            iid: r.take_u32()?,
            proj_summary: Rect::decode(r)?,
        })
    }
}

impl Encode for ReplicaBatch {
    fn encode(&self, w: &mut Writer) {
        self.key.encode(w);
        self.entries.encode(w);
    }
}

impl Decode for ReplicaBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(ReplicaBatch {
            key: RepoKey::decode(r)?,
            entries: Vec::<(SubId, StoredSub)>::decode(r)?,
        })
    }
}

impl Encode for HyperMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            HyperMsg::Route { key, inner } => {
                w.put_u8(0);
                w.put_u64(*key);
                inner.encode(w);
            }
            HyperMsg::Delivery(d) => {
                w.put_u8(1);
                d.encode(w);
            }
            HyperMsg::LoadProbe { origin, ttl } => {
                w.put_u8(2);
                origin.encode(w);
                w.put_u8(*ttl);
            }
            HyperMsg::LoadReply { load } => {
                w.put_u8(3);
                w.put_u64(*load);
            }
            HyperMsg::Migrate { origin, batches } => {
                w.put_u8(4);
                origin.encode(w);
                batches.encode(w);
            }
            HyperMsg::MigrateAck { me, acks } => {
                w.put_u8(5);
                me.encode(w);
                acks.encode(w);
            }
            HyperMsg::ReplicaUpdate {
                origin,
                full,
                repos,
            } => {
                w.put_u8(6);
                origin.encode(w);
                full.encode(w);
                repos.encode(w);
            }
            HyperMsg::Chord(m) => {
                w.put_u8(7);
                m.encode(w);
            }
            HyperMsg::Reliable { token, inner } => {
                w.put_u8(8);
                w.put_u64(*token);
                inner.as_ref().encode(w);
            }
            HyperMsg::Ack { token } => {
                w.put_u8(9);
                w.put_u64(*token);
            }
        }
    }
}

impl Decode for HyperMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => HyperMsg::Route {
                key: r.take_u64()?,
                inner: Routed::decode(r)?,
            },
            1 => HyperMsg::Delivery(DeliveryMsg::decode(r)?),
            2 => HyperMsg::LoadProbe {
                origin: Peer::decode(r)?,
                ttl: r.take_u8()?,
            },
            3 => HyperMsg::LoadReply {
                load: r.take_u64()?,
            },
            4 => HyperMsg::Migrate {
                origin: Peer::decode(r)?,
                batches: Vec::<MigBatch>::decode(r)?,
            },
            5 => HyperMsg::MigrateAck {
                me: Peer::decode(r)?,
                acks: Vec::<MigAck>::decode(r)?,
            },
            6 => HyperMsg::ReplicaUpdate {
                origin: Peer::decode(r)?,
                full: bool::decode(r)?,
                repos: Vec::<ReplicaBatch>::decode(r)?,
            },
            7 => HyperMsg::Chord(ChordMsg::decode(r)?),
            8 => HyperMsg::Reliable {
                token: r.take_u64()?,
                inner: Box::new(HyperMsg::decode(r)?),
            },
            9 => HyperMsg::Ack {
                token: r.take_u64()?,
            },
            _ => return Err(Error::InvalidValue("hypermsg tag")),
        })
    }
}

/// The live-transport framing of [`HyperMsg`]: version byte 1 followed by
/// the snapshot-codec encoding above. The golden wire-bytes test pins the
/// exact bytes so live framing can't drift silently; any layout change to
/// an existing variant must bump `WIRE_VERSION` (appending variants under
/// fresh tags is compatible — see the `WireMsg` versioning rules).
impl WireMsg for HyperMsg {
    const WIRE_VERSION: u8 = 1;

    fn wire_encode(&self, w: &mut Writer) {
        self.encode(w);
    }

    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Self::decode(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_lph::Point;

    #[test]
    fn delivery_size_matches_paper_model() {
        let msg = HyperMsg::Delivery(DeliveryMsg {
            scheme: 0,
            ss: 0,
            event: Arc::new(Event {
                id: 1,
                point: Point(vec![1.0, 2.0]),
            }),
            hops: 0,
            sender: Some(Peer { id: 9, idx: 4 }),
            targets: vec![
                SubTarget::rendezvous(1),
                SubTarget::sub(SubId { nid: 2, iid: 3 }),
            ],
        });
        // 20 header + 100 event + 2 * 9 subids.
        assert_eq!(msg.wire_size(), 138);
        assert_eq!(msg.flow(), Some(1));
    }

    #[test]
    fn control_messages_have_no_flow() {
        let msg = HyperMsg::LoadReply { load: 10 };
        assert_eq!(msg.flow(), None);
        assert_eq!(msg.wire_size(), 28);
    }

    #[test]
    fn register_size_scales_with_dims() {
        let r4 = Rect::new(vec![0.0; 4], vec![1.0; 4]);
        let msg = HyperMsg::Route {
            key: 0,
            inner: Routed::Register {
                scheme: 0,
                ss: 0,
                zone: ZoneCode::ROOT,
                subid: SubId { nid: 1, iid: 2 },
                full: r4.clone(),
                proj: r4,
            },
        };
        // 20 + 8 + (4 + 1 + 9 + 9 + 64 + 64)
        assert_eq!(msg.wire_size(), 179);
    }

    #[test]
    fn reliable_wrapper_adds_token_and_keeps_flow() {
        let inner = HyperMsg::Delivery(DeliveryMsg {
            scheme: 0,
            ss: 0,
            event: Arc::new(Event {
                id: 7,
                point: Point(vec![1.0, 2.0]),
            }),
            hops: 0,
            sender: None,
            targets: vec![SubTarget::rendezvous(1)],
        });
        let bare = inner.wire_size();
        let wrapped = HyperMsg::Reliable {
            token: 99,
            inner: Box::new(inner),
        };
        assert_eq!(wrapped.wire_size(), bare + 8);
        assert_eq!(wrapped.flow(), Some(7));
        let ack = HyperMsg::Ack { token: 99 };
        assert_eq!(ack.wire_size(), 28);
        assert_eq!(ack.flow(), None);
    }

    #[test]
    fn replica_update_size_counts_entries() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let msg = HyperMsg::ReplicaUpdate {
            origin: Peer { id: 1, idx: 0 },
            full: true,
            repos: vec![ReplicaBatch {
                key: (0, 0, ZoneCode::ROOT),
                entries: vec![
                    (
                        SubId { nid: 1, iid: 1 },
                        StoredSub::Real {
                            full: r.clone(),
                            proj: r.clone(),
                        },
                    ),
                    (SubId { nid: 2, iid: 1 }, StoredSub::Surrogate { proj: r }),
                ],
            }],
        };
        // 20 + 12 + 1 + (9 + 5 + (9 + 64) + (9 + 32))
        assert_eq!(msg.wire_size(), 161);
        assert_eq!(msg.flow(), None);
    }

    #[test]
    fn migrate_size_counts_entries() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let msg = HyperMsg::Migrate {
            origin: Peer { id: 1, idx: 0 },
            batches: vec![MigBatch {
                source: (0, 0, ZoneCode::ROOT),
                entries: vec![
                    (SubId { nid: 1, iid: 1 }, r.clone()),
                    (SubId { nid: 2, iid: 1 }, r),
                ],
            }],
        };
        // 20 + 12 + (9 + 5 + 2*(9+32))
        assert_eq!(msg.wire_size(), 128);
    }

    /// §5.1 size-model audit: the paper models "20 bytes for packet
    /// header, 100 bytes for event, and 9 bytes for each SubID (8 bytes
    /// for subscriber's nodeID, and 1 byte for internalID)". Bandwidth
    /// accounting (Fig 2d, Fig 3) is computed from these constants, so
    /// they are pinned literally, and an event message's size must scale
    /// at exactly 9 bytes per carried SubID.
    #[test]
    fn wire_sizes_follow_paper_model() {
        assert_eq!(HEADER_BYTES, 20);
        assert_eq!(EVENT_BYTES, 100);
        assert_eq!(SUBID_BYTES, 9);
        assert_eq!(ZONE_BYTES, 9);

        for k in 0..8usize {
            let msg = HyperMsg::Delivery(DeliveryMsg {
                scheme: 0,
                ss: 0,
                event: Arc::new(Event {
                    id: 1,
                    point: Point(vec![0.5, 0.5]),
                }),
                hops: 3,
                sender: None,
                targets: (0..k)
                    .map(|i| {
                        SubTarget::sub(SubId {
                            nid: i as u64,
                            iid: 1,
                        })
                    })
                    .collect(),
            });
            assert_eq!(
                msg.wire_size(),
                HEADER_BYTES + EVENT_BYTES + SUBID_BYTES * k
            );
        }

        // Control messages: the same 20-byte header plus the natural
        // serialized size of their fields.
        let probe = HyperMsg::LoadProbe {
            origin: Peer { id: 1, idx: 0 },
            ttl: 3,
        };
        assert_eq!(probe.wire_size(), HEADER_BYTES + 12 + 1); // peer + ttl
        let reply = HyperMsg::LoadReply { load: 7 };
        assert_eq!(reply.wire_size(), HEADER_BYTES + 8);
        let ack = HyperMsg::Ack { token: 1 };
        assert_eq!(ack.wire_size(), HEADER_BYTES + 8);
        // The reliable envelope adds exactly its 8-byte token.
        let wrapped = HyperMsg::Reliable {
            token: 1,
            inner: Box::new(HyperMsg::LoadReply { load: 7 }),
        };
        assert_eq!(wrapped.wire_size(), reply.wire_size() + 8);
        // Chord maintenance rides the same header model (12-byte peers).
        let chord = HyperMsg::Chord(ChordMsg::Notify {
            peer: Peer { id: 1, idx: 0 },
        });
        assert_eq!(chord.wire_size(), HEADER_BYTES + 12);
    }
}
