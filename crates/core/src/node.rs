//! The HyperSub node: Chord state plus pub/sub repositories.

use crate::config::SystemConfig;
use crate::model::{Registry, SchemeId, SubId, Subscription};
use crate::msg::HyperMsg;
use crate::repo::{HostedRepo, RepoKey, ZoneRepo};
use crate::world::HyperWorld;
use hypersub_chord::proto::MaintState;
use hypersub_chord::ChordState;
use hypersub_simnet::{FxHashMap, Node, NodeRuntime};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use std::sync::Arc;

/// A capacity-bounded first-in-first-out set used to process each
/// `(event, repository)` pair at most once per node.
///
/// In the paper's literal design an event climbs the zone tree strictly
/// level by level, touching each zone once. Our chain-collapse
/// optimization (see `install.rs`) lets a surrogate chain re-enter a node
/// whose rendezvous walk already matched an ancestor repository; this
/// cache restores the visit-once invariant. Entries age out FIFO — events
/// finish delivery within seconds of simulated time, so a bounded window
/// is safe.
#[derive(Debug, Clone)]
pub struct DedupCache {
    // Membership-only (never iterated), so the fixed-seed fast hasher is
    // safe; eviction order is carried by the explicit FIFO queue.
    set: FxHashSet<(u64, u32)>,
    order: std::collections::VecDeque<(u64, u32)>,
    capacity: usize,
}

impl DedupCache {
    /// Creates a cache remembering up to `capacity` pairs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            set: FxHashSet::default(),
            order: std::collections::VecDeque::new(),
            capacity,
        }
    }

    /// Inserts the pair; returns `true` if it was new.
    pub fn insert(&mut self, pair: (u64, u32)) -> bool {
        if !self.set.insert(pair) {
            return false;
        }
        self.order.push_back(pair);
        if self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    /// Number of remembered pairs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

impl Default for DedupCache {
    fn default() -> Self {
        Self::new(1 << 17)
    }
}

use hypersub_simnet::FxHashSet;

/// What a node-local internal id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IidTarget {
    /// A subscription made by this node's application.
    Local,
    /// One of this node's zone repositories.
    Repo(RepoKey),
    /// A repository of subscriptions accepted via migration.
    Hosted,
}

/// Timer token: load-balancing round (probe + evaluate).
pub const TOKEN_LB: u64 = 1;
/// Timer token: Chord stabilize (churn scenarios only).
pub const TOKEN_STABILIZE: u64 = 2;
/// Timer token: Chord fix-fingers (churn scenarios only).
pub const TOKEN_FIX_FINGERS: u64 = 3;
/// Timer token: soft-state lease tick (self-healing only; see `heal.rs`).
pub const TOKEN_LEASE: u64 = 4;
/// Timer tokens in `[PUBLISH_BASE, RETRY_BASE)` publish scripted event
/// `token - PUBLISH_BASE`.
pub const TOKEN_PUBLISH_BASE: u64 = 1 << 32;
/// Timer tokens at or above this fire the retransmit check for reliable
/// send `token - RETRY_BASE` (see `retry.rs`).
pub const TOKEN_RETRY_BASE: u64 = 1 << 48;

/// A HyperSub node.
#[derive(Debug, Clone)]
pub struct HyperSubNode {
    /// Chord routing + maintenance state.
    pub maint: MaintState,
    /// Shared scheme definitions.
    pub registry: Arc<Registry>,
    /// Shared system configuration.
    pub cfg: Arc<SystemConfig>,
    /// Zone repositories this node is surrogate for. Looked up by key on
    /// the delivery hot path (one probe per zone-tree level per
    /// rendezvous target), hence the fixed-seed fast hasher; every
    /// iteration site sorts collected keys before acting, so order can
    /// never leak into message traffic.
    pub repos: FxHashMap<RepoKey, ZoneRepo>,
    /// Reverse index: internal id → meaning. Same hot-lookup/sorted-
    /// iteration regime as `repos`.
    pub iids: FxHashMap<u32, IidTarget>,
    /// Subscriptions made by this node's application.
    pub local_subs: FxHashMap<u32, (SchemeId, Subscription)>,
    /// Migrated-in repositories, by their internal id.
    pub hosted: FxHashMap<u32, HostedRepo>,
    /// Load-balancer round state.
    pub lb: crate::loadbal::LbState,
    /// Whether Chord maintenance timers self-rearm (churn scenarios).
    pub maintenance: bool,
    /// Visit-once guard for `(event, repository)` pairs.
    pub dedup: DedupCache,
    /// Reusable Algorithm 5 buffers (see `delivery.rs`).
    pub(crate) scratch: crate::delivery::DeliveryScratch,
    /// Ack/retransmit state for reliable sends (see `retry.rs`).
    pub rel: crate::retry::RelState,
    /// Replicated rendezvous state held on behalf of predecessors, keyed
    /// by origin index (self-healing plane; see `heal.rs`).
    pub replicas: FxHashMap<usize, crate::heal::ReplicaSet>,
    /// Relative capacity of this node (§4: each node's threshold factor
    /// "is based on the node's capacity"). 1.0 = baseline; a node with
    /// capacity 2.0 tolerates twice the average load before migrating.
    pub capacity: f64,
    next_iid: u32,
}

impl HyperSubNode {
    /// Creates a node from pre-built Chord state.
    pub fn new(chord: ChordState, registry: Arc<Registry>, cfg: Arc<SystemConfig>) -> Self {
        Self {
            maint: MaintState::new(chord),
            registry,
            cfg,
            repos: FxHashMap::default(),
            iids: FxHashMap::default(),
            local_subs: FxHashMap::default(),
            hosted: FxHashMap::default(),
            lb: crate::loadbal::LbState::default(),
            maintenance: false,
            dedup: DedupCache::default(),
            scratch: crate::delivery::DeliveryScratch::default(),
            rel: crate::retry::RelState::default(),
            replicas: FxHashMap::default(),
            capacity: 1.0,
            next_iid: 1, // the paper's internal IDs are positive integers
        }
    }

    /// Convenience accessor for the Chord routing state.
    pub fn chord(&self) -> &ChordState {
        &self.maint.chord
    }

    /// Allocates a fresh internal id bound to `target`.
    pub fn alloc_iid(&mut self, target: IidTarget) -> u32 {
        let iid = self.next_iid;
        self.next_iid += 1;
        self.iids.insert(iid, target);
        iid
    }

    /// This node's load: the number of subscriptions it stores (its own
    /// zone repositories' real entries plus migrated-in entries) — the
    /// unit of §4 and Figure 4.
    pub fn load(&self) -> u64 {
        let repo_subs: usize = self.repos.values().map(|r| r.real_count()).sum();
        let hosted_subs: usize = self.hosted.values().map(|h| h.entries.len()).sum();
        (repo_subs + hosted_subs) as u64
    }

    /// Total stored entries including surrogate subscriptions (for memory
    /// accounting and ablations).
    pub fn stored_entries(&self) -> u64 {
        let repo_entries: usize = self.repos.values().map(|r| r.entries.len()).sum();
        let hosted: usize = self.hosted.values().map(|h| h.entries.len()).sum();
        (repo_entries + hosted) as u64
    }

    /// Matching-index diagnostics summed over this node's zone
    /// repositories — see [`crate::repo::ZoneRepo::index_diag`].
    pub fn index_diag(&self) -> crate::index::IndexDiag {
        let mut d = crate::index::IndexDiag::default();
        for repo in self.repos.values() {
            d.merge(&repo.index_diag());
        }
        d
    }

    /// The subscription ids of this node's local subscriptions.
    pub fn local_sub_ids(&self) -> Vec<SubId> {
        let mut v: Vec<SubId> = self
            .local_subs
            .keys()
            .map(|&iid| SubId {
                nid: self.maint.chord.id,
                iid,
            })
            .collect();
        v.sort_unstable();
        v
    }
}

impl Node<HyperMsg, HyperWorld> for HyperSubNode {
    /// Fail-stop recovery: evict the dead peer from routing state, then
    /// re-route traffic that must not be lost (deliveries and
    /// registrations take the next-best hop; probes and maintenance are
    /// periodic and simply retry next round).
    fn on_send_failed<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        dst: usize,
        msg: HyperMsg,
    ) {
        self.maint.note_dead(dst);
        // Fail-stop evidence of a dead peer: re-home any subscriptions we
        // migrated to it (no-op unless self-healing is on).
        self.heal_on_peer_dead(ctx, dst);
        match msg {
            HyperMsg::Reliable { token, inner } => {
                // Fail-stop beats the retransmit timer: resolve the pending
                // send now and recover the payload on the repaired routing
                // state (the timer finds nothing pending and no-ops).
                self.rel.pending.remove(&token);
                self.on_send_failed(ctx, dst, *inner);
            }
            HyperMsg::Delivery(d) => self.handle_delivery(ctx, d),
            HyperMsg::Route { key, inner } => self.handle_route(ctx, key, inner),
            HyperMsg::Migrate { batches, .. } => {
                // Abort the offer: entries were not yet removed (removal
                // happens on ack), so just clear the bookkeeping and let a
                // later round retry with a live target.
                for b in batches {
                    if let Some(items) = self.lb.in_flight.remove(&(dst, b.source)) {
                        for item in items {
                            self.lb.pending.remove(&(b.source, item.subid));
                        }
                    }
                }
            }
            // Periodic (probes, maintenance) or origin-dead (acks): drop.
            _ => {}
        }
    }

    fn on_message<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        from: usize,
        msg: HyperMsg,
    ) {
        match msg {
            HyperMsg::Route { key, inner } => self.handle_route(ctx, key, inner),
            HyperMsg::Delivery(d) => self.handle_delivery(ctx, d),
            HyperMsg::LoadProbe { origin, ttl } => self.handle_load_probe(ctx, origin, ttl),
            HyperMsg::LoadReply { load } => self.handle_load_reply(from, load),
            HyperMsg::Migrate { origin, batches } => self.handle_migrate(ctx, origin, batches),
            HyperMsg::MigrateAck { me, acks } => self.handle_migrate_ack(ctx, from, me, acks),
            HyperMsg::Chord(m) => {
                let out = self.maint.handle(from, m);
                debug_assert!(out.app_lookup.is_none(), "core uses recursive routing");
                for (dst, m) in out.sends {
                    ctx.send(dst, HyperMsg::Chord(m));
                }
                if out.neighborhood_changed {
                    // Ownership handoff: a predecessor change may extend
                    // our responsibility arc over a dead origin's keys.
                    self.heal_check_promotions(ctx);
                }
            }
            HyperMsg::ReplicaUpdate {
                origin,
                full,
                repos,
            } => self.handle_replica(ctx, origin, full, repos),
            HyperMsg::Reliable { token, inner } => self.handle_reliable(ctx, from, token, *inner),
            HyperMsg::Ack { token } => self.handle_ack(ctx, token),
        }
    }

    fn on_timer<R: NodeRuntime<HyperMsg, HyperWorld>>(&mut self, ctx: &mut R, token: u64) {
        if token >= TOKEN_RETRY_BASE {
            self.retry_fire(ctx, token - TOKEN_RETRY_BASE);
            return;
        }
        if token >= TOKEN_PUBLISH_BASE {
            let idx = (token - TOKEN_PUBLISH_BASE) as usize;
            let (scheme, event) = ctx.world().take_scripted(idx);
            self.publish_event(ctx, scheme, event);
            return;
        }
        match token {
            TOKEN_LB => self.lb_tick(ctx),
            TOKEN_LEASE if self.cfg.heal.enabled => self.lease_tick(ctx),
            TOKEN_STABILIZE if self.maintenance => {
                ctx.set_timer(hypersub_chord::proto::STABILIZE_PERIOD, TOKEN_STABILIZE);
                for (dst, m) in self.maint.stabilize_tick() {
                    ctx.send(dst, HyperMsg::Chord(m));
                }
            }
            TOKEN_FIX_FINGERS if self.maintenance => {
                ctx.set_timer(hypersub_chord::proto::FIX_FINGERS_PERIOD, TOKEN_FIX_FINGERS);
                for (dst, m) in self.maint.fix_fingers_tick() {
                    ctx.send(dst, HyperMsg::Chord(m));
                }
            }
            _ => {}
        }
    }
}

impl Encode for DedupCache {
    fn encode(&self, w: &mut Writer) {
        self.capacity.encode(w);
        // FIFO order is the authoritative state; the membership set is
        // derived from it on decode.
        w.put_u64(self.order.len() as u64);
        for pair in &self.order {
            pair.encode(w);
        }
    }
}

impl Decode for DedupCache {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let capacity = usize::decode(r)?;
        if capacity == 0 {
            return Err(Error::InvalidValue("dedup cache capacity"));
        }
        let n = r.take_u64()? as usize;
        if n > capacity {
            return Err(Error::InvalidValue("dedup cache overfull"));
        }
        let mut order = std::collections::VecDeque::with_capacity(n);
        let mut set = FxHashSet::default();
        for _ in 0..n {
            let pair = <(u64, u32)>::decode(r)?;
            if !set.insert(pair) {
                return Err(Error::InvalidValue("dedup cache duplicate"));
            }
            order.push_back(pair);
        }
        Ok(DedupCache {
            set,
            order,
            capacity,
        })
    }
}

impl Encode for IidTarget {
    fn encode(&self, w: &mut Writer) {
        match self {
            IidTarget::Local => w.put_u8(0),
            IidTarget::Repo(key) => {
                w.put_u8(1);
                key.encode(w);
            }
            IidTarget::Hosted => w.put_u8(2),
        }
    }
}

impl Decode for IidTarget {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => IidTarget::Local,
            1 => IidTarget::Repo(RepoKey::decode(r)?),
            2 => IidTarget::Hosted,
            _ => return Err(Error::InvalidValue("iid target tag")),
        })
    }
}

impl HyperSubNode {
    /// Encodes this node's complete protocol state. The shared `registry`
    /// and `cfg` are *not* written here — the network snapshot encodes
    /// them once and hands the shared `Arc`s back in on decode.
    pub fn snapshot_encode(&self, w: &mut Writer) {
        self.maint.encode(w);
        crate::repo::encode_map_sorted(&self.repos, w);
        crate::repo::encode_map_sorted(&self.iids, w);
        crate::repo::encode_map_sorted(&self.local_subs, w);
        crate::repo::encode_map_sorted(&self.hosted, w);
        self.lb.encode(w);
        self.maintenance.encode(w);
        self.dedup.encode(w);
        self.rel.encode(w);
        crate::repo::encode_map_sorted(&self.replicas, w);
        self.capacity.encode(w);
        w.put_u32(self.next_iid);
        // Delivery scratch buffers are transient per-`step` storage and
        // never survive a quiesce point; a fresh default is equivalent.
    }

    /// Decodes a node encoded by [`Self::snapshot_encode`].
    pub fn snapshot_decode(
        r: &mut Reader<'_>,
        registry: Arc<Registry>,
        cfg: Arc<SystemConfig>,
    ) -> Result<Self, Error> {
        Ok(HyperSubNode {
            maint: MaintState::decode(r)?,
            registry,
            cfg,
            repos: crate::repo::decode_map(r)?,
            iids: crate::repo::decode_map(r)?,
            local_subs: crate::repo::decode_map(r)?,
            hosted: crate::repo::decode_map(r)?,
            lb: crate::loadbal::LbState::decode(r)?,
            maintenance: bool::decode(r)?,
            dedup: DedupCache::decode(r)?,
            scratch: crate::delivery::DeliveryScratch::default(),
            rel: crate::retry::RelState::decode(r)?,
            replicas: crate::repo::decode_map(r)?,
            capacity: f64::decode(r)?,
            next_iid: r.take_u32()?,
        })
    }
}

/// Returns `true` if `x` lies in the clockwise half-open interval `[a, b)`.
pub(crate) fn in_closed_open(a: u64, x: u64, b: u64) -> bool {
    if a == b {
        return true; // full ring
    }
    x.wrapping_sub(a) < b.wrapping_sub(a)
}

/// A default value placeholder used by tests in sibling modules.
#[cfg(test)]
pub(crate) fn test_registry() -> Arc<Registry> {
    use crate::model::SchemeDef;
    Arc::new(Registry::new(vec![SchemeDef::builder("test")
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .build(0)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_allocation_is_dense_and_tracked() {
        let chord = ChordState::new(42, 0, 4);
        let mut n = HyperSubNode::new(chord, test_registry(), Arc::new(SystemConfig::default()));
        let a = n.alloc_iid(IidTarget::Local);
        let b = n.alloc_iid(IidTarget::Hosted);
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(n.iids[&a], IidTarget::Local);
        assert_eq!(n.iids[&b], IidTarget::Hosted);
    }

    #[test]
    fn fresh_node_has_zero_load() {
        let chord = ChordState::new(42, 0, 4);
        let n = HyperSubNode::new(chord, test_registry(), Arc::new(SystemConfig::default()));
        assert_eq!(n.load(), 0);
        assert_eq!(n.stored_entries(), 0);
    }

    #[test]
    fn closed_open_interval() {
        assert!(in_closed_open(10, 10, 20));
        assert!(in_closed_open(10, 19, 20));
        assert!(!in_closed_open(10, 20, 20));
        // Wrap.
        assert!(in_closed_open(u64::MAX - 1, 0, 5));
        assert!(in_closed_open(7, 7, 7), "degenerate = full ring");
    }

    #[test]
    fn dedup_cache_fifo_eviction() {
        let mut d = DedupCache::new(2);
        assert!(d.insert((1, 1)));
        assert!(!d.insert((1, 1)));
        assert!(d.insert((1, 2)));
        assert!(d.insert((1, 3))); // evicts (1, 1)
        assert!(d.insert((1, 1)), "evicted pair is insertable again");
        assert_eq!(d.len(), 2);
    }
}
