//! Per-zone subscription repositories on surrogate nodes (§3.3).
//!
//! "Each node might serve as surrogate nodes for more than one content
//! zone. In this case, content zones are managed individually, with the
//! node regarded as a few virtual nodes. Each content zone cz maintains a
//! summary filter sf which is defined as the smallest hypercuboid that can
//! exactly cover all subscriptions registered in cz."
//!
//! A repository stores two kinds of entries:
//! * **Real** subscriptions, installed by Algorithm 2 — these carry the
//!   full-space rect (for exact matching) and its subscheme projection
//!   (for zone geometry);
//! * **Surrogate** subscriptions, pushed down from the parent zone by
//!   Algorithm 3 — these carry only a projected rect, and their [`SubId`]
//!   points at the parent zone's repository, forming the chain events
//!   climb during delivery.

use crate::index::{GridIndex, HybridIndex, IndexDiag, IndexMode, INDEX_THRESHOLD};
use crate::model::{SchemeId, SubId, SubschemeId};
use hypersub_lph::{Point, Rect, ZoneCode};
use hypersub_simnet::FxHashMap;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// Identifies one zone repository: `(scheme, subscheme, zone)`.
pub type RepoKey = (SchemeId, SubschemeId, ZoneCode);

/// One stored subscription.
#[derive(Debug, Clone)]
pub enum StoredSub {
    /// A subscriber's real subscription.
    Real {
        /// Full-space hypercuboid (exact matching).
        full: Rect,
        /// Projection onto the subscheme space (zone geometry).
        proj: Rect,
    },
    /// A summary-filter subdivision registered by the parent zone (or by a
    /// migration target summarizing subscriptions it accepted).
    Surrogate {
        /// Projected covering rect.
        proj: Rect,
    },
}

impl StoredSub {
    /// The projected rect (present for both kinds).
    pub fn proj(&self) -> &Rect {
        match self {
            StoredSub::Real { proj, .. } => proj,
            StoredSub::Surrogate { proj } => proj,
        }
    }

    /// Is this a real subscription?
    pub fn is_real(&self) -> bool {
        matches!(self, StoredSub::Real { .. })
    }
}

/// The structure a repository built past the index threshold — chosen by
/// [`IndexMode`], identical match results either way.
#[derive(Debug, Clone)]
enum BuiltIndex {
    Grid(GridIndex),
    Hybrid(HybridIndex),
}

/// A zone repository on a surrogate node.
#[derive(Debug, Clone)]
pub struct ZoneRepo {
    /// This repository's local internal id — surrogate subscriptions in
    /// child zones point back here as `(node_id, iid)`.
    pub iid: u32,
    /// Stored entries keyed by subscription id.
    pub entries: FxHashMap<SubId, StoredSub>,
    /// Smallest projected hypercuboid covering all entries.
    pub summary: Option<Rect>,
    /// What we last registered at each child zone (the "changed
    /// subdivision" dedup of Algorithm 3).
    pub pushed: FxHashMap<ZoneCode, Rect>,
    /// Local matching index (§3.3), built lazily once the repository is
    /// large. Maintained incrementally: inserts register into the
    /// existing structure, removals unregister (hybrid) or leave stale
    /// ids behind (grid; filtered out by the exact verification pass),
    /// and the index is rebuilt from scratch only when the mutation
    /// count has drifted more than 25% from the build-time entry count.
    index: Option<BuiltIndex>,
    /// Entry count when `index` was built.
    index_built_at: usize,
    /// Mutations absorbed by `index` since its build.
    index_drift: usize,
    /// Cumulative candidates examined by indexed `match_point` calls
    /// (diagnostics; not snapshot state).
    scanned: u64,
}

impl ZoneRepo {
    /// An empty repository with the given internal id.
    pub fn new(iid: u32) -> Self {
        Self {
            iid,
            entries: FxHashMap::default(),
            summary: None,
            pushed: FxHashMap::default(),
            index: None,
            index_built_at: 0,
            index_drift: 0,
            scanned: 0,
        }
    }

    /// Counts one absorbed mutation against the live index and drops it
    /// once cumulative drift exceeds 25% of the build-time size (the
    /// next `match_point` rebuilds fresh, folding overflow/stale slots
    /// back into a tight structure).
    fn bump_drift(&mut self) {
        self.index_drift += 1;
        if self.index_drift * 4 > self.index_built_at.max(1) {
            self.index = None;
        }
    }

    /// Inserts or updates an entry; returns `true` when the summary filter
    /// grew (meaning subdivisions may need re-pushing).
    ///
    /// Re-inserting an id whose projected rect is unchanged (soft-state
    /// lease refreshes, replica replays) is index-neutral: it neither
    /// re-registers the entry nor counts as drift — the fix for the
    /// historical double-registration bug that inflated candidate lists
    /// and `registrations()` on every refresh.
    pub fn insert(&mut self, id: SubId, sub: StoredSub) -> bool {
        let proj = sub.proj().clone();
        let prior = self.entries.insert(id, sub);
        let same_rect = prior.as_ref().is_some_and(|p| p.proj() == &proj);
        if !same_rect {
            if let Some(ix) = self.index.as_mut() {
                let mutated = match ix {
                    // The grid cannot unregister, so a changed rect just
                    // registers the new geometry on top (the old cells
                    // decay into stale candidates, exactness preserved
                    // by verification).
                    BuiltIndex::Grid(g) => {
                        g.register(id, &proj);
                        true
                    }
                    BuiltIndex::Hybrid(h) => h.insert(id, &proj),
                };
                if mutated {
                    self.bump_drift();
                }
            }
        }
        match &mut self.summary {
            None => {
                self.summary = Some(proj);
                true
            }
            Some(s) => {
                let grown = s.cover(&proj);
                if &grown != s {
                    *s = grown;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes an entry (migration); the summary is deliberately *not*
    /// shrunk — the migration target's surrogate subscription covers the
    /// removed entries, so the old summary stays valid.
    pub fn remove(&mut self, id: &SubId) -> Option<StoredSub> {
        let removed = self.entries.remove(id);
        if removed.is_some() {
            if let Some(ix) = self.index.as_mut() {
                match ix {
                    // Stale grid registrations stay behind; `match_point`
                    // filters candidates through `entries`, so they can
                    // only cost a wasted probe, never a wrong result.
                    BuiltIndex::Grid(_) => {}
                    BuiltIndex::Hybrid(h) => {
                        h.remove(id);
                    }
                }
                self.bump_drift();
            }
        }
        removed
    }

    fn check_entry(sub: &StoredSub, full: &Point, proj: &Point) -> bool {
        match sub {
            StoredSub::Real { full: f, .. } => f.contains_point(full),
            StoredSub::Surrogate { proj: p } => p.contains_point(proj),
        }
    }

    /// All entries matching an event: real entries match against the full
    /// point, surrogates against the projection. Results are sorted by
    /// SubId for deterministic message construction. Large repositories
    /// consult the index selected by `mode` (candidates are verified
    /// exactly, so index choice never changes results — the differential
    /// oracle proptest pins this).
    pub fn match_point(&mut self, full: &Point, proj: &Point, mode: IndexMode) -> Vec<SubId> {
        if self.index.is_none()
            && mode != IndexMode::Linear
            && self.entries.len() >= INDEX_THRESHOLD
        {
            let entries = self.entries.iter().map(|(id, s)| (id, s.proj()));
            self.index = match mode {
                IndexMode::Grid => GridIndex::build(entries).map(BuiltIndex::Grid),
                IndexMode::Hybrid => Some(BuiltIndex::Hybrid(HybridIndex::build(entries))),
                IndexMode::Linear => unreachable!(),
            };
            self.index_built_at = self.entries.len();
            self.index_drift = 0;
        }
        let mut scanned = 0u64;
        let mut out: Vec<SubId> = match &self.index {
            Some(BuiltIndex::Grid(grid)) => {
                let cands = grid.candidates(proj);
                scanned = cands.len() as u64;
                cands
                    .iter()
                    .filter(|id| {
                        self.entries
                            .get(id)
                            .is_some_and(|s| Self::check_entry(s, full, proj))
                    })
                    .copied()
                    .collect()
            }
            Some(BuiltIndex::Hybrid(h)) => {
                let mut v = Vec::new();
                let entries = &self.entries;
                scanned = h.for_candidates(proj, |id| {
                    if entries
                        .get(&id)
                        .is_some_and(|s| Self::check_entry(s, full, proj))
                    {
                        v.push(id);
                    }
                });
                v
            }
            None => self
                .entries
                .iter()
                .filter(|(_, sub)| Self::check_entry(sub, full, proj))
                .map(|(&id, _)| id)
                .collect(),
        };
        self.scanned += scanned;
        out.sort_unstable();
        // Index paths can emit an id more than once (a superseded slot
        // plus its replacement, a stale grid registration plus a fresh
        // one); results must stay a set.
        out.dedup();
        out
    }

    /// Number of *real* subscriptions stored — the node-load unit of §4
    /// and Figure 4.
    pub fn real_count(&self) -> usize {
        self.entries.values().filter(|s| s.is_real()).count()
    }

    /// Index diagnostics for this repository: occupancy (zero when no
    /// index is built) plus the cumulative candidate-scan count.
    pub fn index_diag(&self) -> IndexDiag {
        let mut d = IndexDiag {
            candidates_scanned: self.scanned,
            ..IndexDiag::default()
        };
        match &self.index {
            Some(BuiltIndex::Grid(g)) => {
                d.entries = self.entries.len() as u64;
                d.registrations = g.registrations() as u64;
                d.bytes = g.bytes();
            }
            Some(BuiltIndex::Hybrid(h)) => {
                d.entries = self.entries.len() as u64;
                d.registrations = h.registrations() as u64;
                d.bytes = h.bytes();
                d.covering_collapsed = h.covering_collapsed();
            }
            None => {}
        }
        d
    }
}

/// Subscriptions accepted from an overloaded node during migration (§4).
/// The accepting node matches events against these when the origin's
/// surrogate subscription fires.
#[derive(Debug, Clone)]
pub struct HostedRepo {
    /// This hosted repo's local internal id.
    pub iid: u32,
    /// Simulator index of the node the subscriptions came from.
    pub origin: usize,
    /// The zone repository they were migrated out of.
    pub source: RepoKey,
    /// Migrated subscriptions: full-space rects keyed by SubId.
    pub entries: FxHashMap<SubId, Rect>,
    /// Forwarding covers for entries that migrated *onward* from here:
    /// the SubId names the next acceptor's hosted repo, the rect is the
    /// full-space cover of what moved (conservative — spurious forwards
    /// are filtered by exact matching downstream).
    pub forwards: FxHashMap<SubId, Rect>,
}

impl HostedRepo {
    /// A fresh hosted repo.
    pub fn new(iid: u32, origin: usize, source: RepoKey) -> Self {
        Self {
            iid,
            origin,
            source,
            entries: FxHashMap::default(),
            forwards: FxHashMap::default(),
        }
    }

    /// Matching against the full event point: exact local entries plus
    /// forwarding targets whose cover contains the point.
    pub fn match_point(&self, full: &Point) -> Vec<SubId> {
        let mut out: Vec<SubId> = self
            .entries
            .iter()
            .filter(|(_, r)| r.contains_point(full))
            .map(|(&id, _)| id)
            .collect();
        out.extend(
            self.forwards
                .iter()
                .filter(|(_, r)| r.contains_point(full))
                .map(|(&id, _)| id),
        );
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Encodes a hash map's entries sorted by key — snapshot bytes must not
/// depend on hash iteration order.
pub(crate) fn encode_map_sorted<K, V, S>(map: &std::collections::HashMap<K, V, S>, w: &mut Writer)
where
    K: Ord + Copy + Encode + std::hash::Hash + Eq,
    V: Encode,
    S: std::hash::BuildHasher,
{
    let mut keys: Vec<K> = map.keys().copied().collect();
    keys.sort_unstable();
    w.put_u64(keys.len() as u64);
    for k in keys {
        k.encode(w);
        map[&k].encode(w);
    }
}

pub(crate) fn decode_map<K, V, S>(
    r: &mut Reader<'_>,
) -> Result<std::collections::HashMap<K, V, S>, Error>
where
    K: std::hash::Hash + Eq + Decode,
    V: Decode,
    S: std::hash::BuildHasher + Default,
{
    let n = r.take_u64()? as usize;
    let mut map = std::collections::HashMap::with_capacity_and_hasher(n, S::default());
    for _ in 0..n {
        let k = K::decode(r)?;
        let v = V::decode(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Encodes a hash set's elements in sorted order.
pub(crate) fn encode_set_sorted<T, S>(set: &std::collections::HashSet<T, S>, w: &mut Writer)
where
    T: Ord + Copy + Encode + std::hash::Hash + Eq,
    S: std::hash::BuildHasher,
{
    let mut items: Vec<T> = set.iter().copied().collect();
    items.sort_unstable();
    w.put_u64(items.len() as u64);
    for t in items {
        t.encode(w);
    }
}

pub(crate) fn decode_set<T, S>(r: &mut Reader<'_>) -> Result<std::collections::HashSet<T, S>, Error>
where
    T: std::hash::Hash + Eq + Decode,
    S: std::hash::BuildHasher + Default,
{
    let n = r.take_u64()? as usize;
    let mut set = std::collections::HashSet::with_capacity_and_hasher(n, S::default());
    for _ in 0..n {
        set.insert(T::decode(r)?);
    }
    Ok(set)
}

impl Encode for StoredSub {
    fn encode(&self, w: &mut Writer) {
        match self {
            StoredSub::Real { full, proj } => {
                w.put_u8(0);
                full.encode(w);
                proj.encode(w);
            }
            StoredSub::Surrogate { proj } => {
                w.put_u8(1);
                proj.encode(w);
            }
        }
    }
}

impl Decode for StoredSub {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => StoredSub::Real {
                full: Rect::decode(r)?,
                proj: Rect::decode(r)?,
            },
            1 => StoredSub::Surrogate {
                proj: Rect::decode(r)?,
            },
            _ => return Err(Error::InvalidValue("stored sub tag")),
        })
    }
}

impl Encode for ZoneRepo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.iid);
        encode_map_sorted(&self.entries, w);
        self.summary.encode(w);
        encode_map_sorted(&self.pushed, w);
        // The matching index (grid or hybrid) is a lazily built,
        // observationally neutral cache (candidates are exactly
        // verified): restored repos start without one and rebuild on
        // demand, which cannot change match results. The scan counter is
        // a diagnostic and likewise resets on restore.
    }
}

impl Decode for ZoneRepo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(ZoneRepo {
            iid: r.take_u32()?,
            entries: decode_map(r)?,
            summary: Option::<Rect>::decode(r)?,
            pushed: decode_map(r)?,
            index: None,
            index_built_at: 0,
            index_drift: 0,
            scanned: 0,
        })
    }
}

impl Encode for HostedRepo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.iid);
        self.origin.encode(w);
        self.source.encode(w);
        encode_map_sorted(&self.entries, w);
        encode_map_sorted(&self.forwards, w);
    }
}

impl Decode for HostedRepo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(HostedRepo {
            iid: r.take_u32()?,
            origin: usize::decode(r)?,
            source: RepoKey::decode(r)?,
            entries: decode_map(r)?,
            forwards: decode_map(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: f64, hi: f64) -> Rect {
        Rect::new(vec![lo, lo], vec![hi, hi])
    }

    fn sid(n: u64) -> SubId {
        SubId { nid: n, iid: 0 }
    }

    #[test]
    fn summary_grows_with_inserts() {
        let mut r = ZoneRepo::new(1);
        let grew = r.insert(
            sid(1),
            StoredSub::Real {
                full: rect(2.0, 3.0),
                proj: rect(2.0, 3.0),
            },
        );
        assert!(grew);
        assert_eq!(r.summary, Some(rect(2.0, 3.0)));
        // Contained insert: summary unchanged.
        let grew = r.insert(
            sid(2),
            StoredSub::Real {
                full: rect(2.2, 2.8),
                proj: rect(2.2, 2.8),
            },
        );
        assert!(!grew);
        // Expanding insert.
        let grew = r.insert(
            sid(3),
            StoredSub::Real {
                full: rect(1.0, 2.5),
                proj: rect(1.0, 2.5),
            },
        );
        assert!(grew);
        assert_eq!(r.summary, Some(rect(1.0, 3.0)));
    }

    #[test]
    fn match_point_distinguishes_kinds() {
        let mut r = ZoneRepo::new(1);
        r.insert(
            sid(1),
            StoredSub::Real {
                full: Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]),
                proj: Rect::new(vec![0.0], vec![1.0]),
            },
        );
        r.insert(
            sid(2),
            StoredSub::Surrogate {
                proj: Rect::new(vec![0.5], vec![2.0]),
            },
        );
        // Full point (0.7, 5.0): real entry fails on dim 1 (5.0 > 1.0),
        // surrogate matches on projection 0.7.
        let m = r.match_point(&Point(vec![0.7, 5.0]), &Point(vec![0.7]), IndexMode::Hybrid);
        assert_eq!(m, vec![sid(2)]);
        // Full point inside both.
        let m = r.match_point(&Point(vec![0.7, 0.5]), &Point(vec![0.7]), IndexMode::Hybrid);
        assert_eq!(m, vec![sid(1), sid(2)]);
    }

    #[test]
    fn remove_keeps_summary() {
        let mut r = ZoneRepo::new(1);
        r.insert(
            sid(1),
            StoredSub::Real {
                full: rect(0.0, 4.0),
                proj: rect(0.0, 4.0),
            },
        );
        r.remove(&sid(1));
        assert_eq!(r.summary, Some(rect(0.0, 4.0)));
        assert_eq!(r.real_count(), 0);
    }

    fn drift_rebuild_scenario(mode: IndexMode) {
        let surrogate = |lo: f64| StoredSub::Surrogate {
            proj: Rect::new(vec![lo], vec![lo + 3.0]),
        };
        let mut r = ZoneRepo::new(1);
        for i in 0..80 {
            r.insert(sid(i), surrogate((i as f64 * 1.1) % 50.0));
        }
        let _ = r.match_point(&Point(vec![10.0]), &Point(vec![10.0]), mode);
        assert!(
            r.index_diag().registrations > 0,
            "{mode:?}: index built past the threshold"
        );

        // A few inserts (≤25% drift), some beyond the built dim-0 range:
        // the index absorbs them in place.
        for i in 100..110 {
            r.insert(sid(i), surrogate(40.0 + (i - 100) as f64 * 2.0));
        }
        assert!(
            r.index_diag().registrations > 0,
            "{mode:?}: index survived small drift"
        );
        for x in [0.0, 10.0, 45.0, 57.5] {
            let full = Point(vec![x]);
            let got = r.match_point(&full, &full, mode);
            let mut expect: Vec<SubId> = r
                .entries
                .iter()
                .filter(|(_, s)| s.proj().contains_point(&full))
                .map(|(&id, _)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "{mode:?}: indexed path diverged at x={x}");
        }

        // Enough mutations to exceed 25% of the build-time size: the
        // index is dropped and rebuilt fresh on the next query.
        for i in 200..230 {
            r.insert(sid(i), surrogate((i as f64 * 0.7) % 50.0));
        }
        assert_eq!(
            r.index_diag().registrations,
            0,
            "{mode:?}: drift threshold dropped the index"
        );
        let _ = r.match_point(&Point(vec![10.0]), &Point(vec![10.0]), mode);
        assert!(
            r.index_diag().registrations > 0,
            "{mode:?}: rebuilt on demand"
        );
    }

    #[test]
    fn incremental_index_stays_exact_until_drift_rebuild() {
        drift_rebuild_scenario(IndexMode::Grid);
        drift_rebuild_scenario(IndexMode::Hybrid);
    }

    #[test]
    fn reinsert_same_rect_does_not_reregister() {
        // Regression test for the historical double-registration bug:
        // re-inserting an existing id (lease refresh, replica replay)
        // used to register it into the index again, inflating both the
        // candidate lists and the registration counter.
        let surrogate = |lo: f64| StoredSub::Surrogate {
            proj: Rect::new(vec![lo], vec![lo + 3.0]),
        };
        for mode in [IndexMode::Grid, IndexMode::Hybrid] {
            let mut r = ZoneRepo::new(1);
            for i in 0..80 {
                r.insert(sid(i), surrogate(i as f64));
            }
            let _ = r.match_point(&Point(vec![10.0]), &Point(vec![10.0]), mode);
            let before = r.index_diag().registrations;
            assert!(before > 0, "{mode:?}: index built");
            // Refresh every entry with its identical rect.
            for i in 0..80 {
                r.insert(sid(i), surrogate(i as f64));
            }
            assert_eq!(
                r.index_diag().registrations,
                before,
                "{mode:?}: same-rect re-insert must not re-register"
            );
            let got = r.match_point(&Point(vec![10.0]), &Point(vec![10.0]), mode);
            let mut expect: Vec<SubId> = r
                .entries
                .iter()
                .filter(|(_, s)| s.proj().contains_point(&Point(vec![10.0])))
                .map(|(&id, _)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "{mode:?}: refresh left results exact");
        }
    }

    #[test]
    fn linear_mode_never_builds_an_index() {
        let mut r = ZoneRepo::new(1);
        for i in 0..200 {
            r.insert(
                sid(i),
                StoredSub::Surrogate {
                    proj: Rect::new(vec![i as f64], vec![i as f64 + 1.0]),
                },
            );
        }
        let _ = r.match_point(&Point(vec![10.5]), &Point(vec![10.5]), IndexMode::Linear);
        assert_eq!(r.index_diag().registrations, 0);
        assert_eq!(r.index_diag().bytes, 0);
    }

    #[test]
    fn hosted_repo_matches_full_rects() {
        let mut h = HostedRepo::new(9, 3, (0, 0, hypersub_lph::ZoneCode::ROOT));
        h.entries.insert(sid(1), rect(0.0, 1.0));
        h.entries.insert(sid(2), rect(0.5, 2.0));
        let m = h.match_point(&Point(vec![0.7, 0.7]));
        assert_eq!(m, vec![sid(1), sid(2)]);
        let m = h.match_point(&Point(vec![1.5, 1.5]));
        assert_eq!(m, vec![sid(2)]);
    }
}
