//! Run reports: a serializable summary of one simulation run.
//!
//! A [`Report`] bundles everything needed to compare two runs offline:
//! network size, simulated time, the run digest (the same FNV-1a digest
//! the golden tests pin), per-event delivery aggregates, network
//! counters, the [`ProtoMetrics`](crate::metrics::ProtoMetrics) registry,
//! and — when a flight recorder was installed — the trace summary.
//!
//! The vendored `serde` shim is a no-op marker-trait stand-in, so JSON is
//! hand-rolled: [`Report::to_json`] emits a stable, human-diffable
//! document and [`Report::from_json`] parses it back with a minimal
//! recursive-descent parser. The digest is serialized as a hex *string*
//! (`"0x…"`) because u64 exceeds the f64-safe integer range of JSON
//! numbers.

use crate::metrics::EventStats;
use crate::sim::Network;
use hypersub_simnet::NetStats;

/// Aggregate delivery outcome over all published events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventSummary {
    /// Events published.
    pub published: u64,
    /// Ground-truth expected deliveries, summed over events.
    pub expected: u64,
    /// Distinct deliveries actually made, summed over events.
    pub delivered: u64,
    /// Duplicate deliveries observed (should be 0).
    pub duplicates: u64,
    /// Max hops over all deliveries.
    pub max_hops: u64,
    /// Max delivery latency over all events, in microseconds.
    pub max_latency_us: u64,
}

impl EventSummary {
    /// Aggregates per-event statistics into one summary. Shared by
    /// [`Network::report`] and the non-HyperSub systems of the shoot-out
    /// harness, so every system's report row is computed identically.
    pub fn from_stats(stats: &[EventStats]) -> Self {
        Self {
            published: stats.len() as u64,
            expected: stats.iter().map(|s| s.expected as u64).sum(),
            delivered: stats.iter().map(|s| s.delivered as u64).sum(),
            duplicates: stats.iter().map(|s| s.duplicates as u64).sum(),
            max_hops: stats.iter().map(|s| s.max_hops as u64).max().unwrap_or(0),
            max_latency_us: stats
                .iter()
                .map(|s| s.max_latency.as_micros())
                .max()
                .unwrap_or(0),
        }
    }
}

/// Network-level totals (from `hypersub_simnet::NetStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Messages sent.
    pub total_msgs: u64,
    /// Bytes sent.
    pub total_bytes: u64,
    /// Messages dropped at dead destinations.
    pub dropped: u64,
    /// Messages lost to probabilistic fault injection.
    pub fault_dropped: u64,
    /// Messages dropped by partitions.
    pub partition_dropped: u64,
    /// Duplicate copies injected by fault duplication.
    pub duplicated: u64,
}

impl NetSummary {
    /// Snapshots the global counters of a [`NetStats`].
    pub fn from_net(n: &NetStats) -> Self {
        Self {
            total_msgs: n.total_msgs(),
            total_bytes: n.total_bytes(),
            dropped: n.dropped(),
            fault_dropped: n.fault_dropped(),
            partition_dropped: n.partition_dropped(),
            duplicated: n.duplicated(),
        }
    }
}

/// One exported counter: a total plus the hottest node's share.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSummary {
    /// Sum over all nodes.
    pub total: u64,
    /// Largest single-node count.
    pub max_node: u64,
}

/// One exported histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Log2 bucket counts (trailing zeros trimmed).
    pub buckets: Vec<u64>,
}

/// Flight-recorder summary, present when recording was enabled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Ring-buffer capacity.
    pub capacity: u64,
    /// Events recorded over the run (including evicted ones).
    pub recorded: u64,
    /// Events evicted by the ring bound.
    pub evicted: u64,
    /// Retained-event counts per kind, sorted by kind.
    pub kinds: Vec<(String, u64)>,
}

/// A serializable summary of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Number of nodes.
    pub nodes: u64,
    /// Final simulated time, in microseconds.
    pub time_us: u64,
    /// Simulator events processed.
    pub steps: u64,
    /// The run digest (delivery trace + network counters).
    pub digest: u64,
    /// Delivery aggregates.
    pub events: EventSummary,
    /// Network totals.
    pub net: NetSummary,
    /// Named protocol counters, in registry order.
    pub counters: Vec<(String, CounterSummary)>,
    /// Named protocol histograms, in registry order.
    pub histograms: Vec<(String, HistSummary)>,
    /// Trace summary when a flight recorder was installed.
    pub trace: Option<TraceSummary>,
}

impl Network {
    /// Snapshots this run into a [`Report`].
    pub fn report(&self) -> Report {
        let stats = self.event_stats();
        let events = EventSummary::from_stats(&stats);
        let net = NetSummary::from_net(self.net());
        let proto = &self.metrics().proto;
        let mut counters: Vec<(String, CounterSummary)> = proto
            .counters()
            .iter()
            .map(|&(name, c)| {
                (
                    name.to_string(),
                    CounterSummary {
                        total: c.total(),
                        max_node: c.max(),
                    },
                )
            })
            .collect();
        // Matching-index occupancy, summed over every node's zone repos.
        // The ratio registrations/entries is the *duplication factor* the
        // hotpath bench prints; exporting both sides lets `report diff`
        // guard its drift between pinned runs (and cap it in CI).
        // `bytes` is resident index memory, `covering_collapsed` the
        // entries absorbed under a coverer, `candidates_scanned` the
        // cumulative verification probes indexed queries performed.
        let mut per_node = Vec::with_capacity(5);
        for _ in 0..5 {
            per_node.push(CounterSummary::default());
        }
        for n in self.nodes() {
            let d = n.index_diag();
            for (slot, v) in per_node.iter_mut().zip([
                d.entries,
                d.registrations,
                d.bytes,
                d.covering_collapsed,
                d.candidates_scanned,
            ]) {
                slot.total += v;
                slot.max_node = slot.max_node.max(v);
            }
        }
        for (name, summary) in [
            "index.entries",
            "index.registrations",
            "index.bytes",
            "index.covering_collapsed",
            "index.candidates_scanned",
        ]
        .into_iter()
        .zip(per_node)
        {
            counters.push((name.to_string(), summary));
        }
        let histograms = proto
            .histograms()
            .iter()
            .map(|&(name, h)| {
                (
                    name.to_string(),
                    HistSummary {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        buckets: h.buckets().to_vec(),
                    },
                )
            })
            .collect();
        let trace = self.recorder().map(|r| TraceSummary {
            capacity: r.capacity() as u64,
            recorded: r.recorded(),
            evicted: r.evicted(),
            kinds: r
                .kind_counts()
                .into_iter()
                .map(|(k, c)| (k.to_string(), c))
                .collect(),
        });
        Report {
            nodes: self.len() as u64,
            time_us: self.time().as_micros(),
            steps: self.steps(),
            digest: self.run_digest(),
            events,
            net,
            counters,
            histograms,
            trace,
        }
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Report {
    /// Total of the named counter, or 0 when the report predates it —
    /// keeps old baselines comparable as the counter registry grows.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.total)
            .unwrap_or(0)
    }

    /// Serializes to a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(2048);
        o.push_str("{\n");
        o.push_str("  \"version\": 1,\n");
        o.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        o.push_str(&format!("  \"time_us\": {},\n", self.time_us));
        o.push_str(&format!("  \"steps\": {},\n", self.steps));
        o.push_str(&format!("  \"digest\": \"{:#018x}\",\n", self.digest));
        let e = &self.events;
        o.push_str(&format!(
            "  \"events\": {{\"published\": {}, \"expected\": {}, \"delivered\": {}, \
             \"duplicates\": {}, \"max_hops\": {}, \"max_latency_us\": {}}},\n",
            e.published, e.expected, e.delivered, e.duplicates, e.max_hops, e.max_latency_us
        ));
        let n = &self.net;
        o.push_str(&format!(
            "  \"net\": {{\"total_msgs\": {}, \"total_bytes\": {}, \"dropped\": {}, \
             \"fault_dropped\": {}, \"partition_dropped\": {}, \"duplicated\": {}}},\n",
            n.total_msgs,
            n.total_bytes,
            n.dropped,
            n.fault_dropped,
            n.partition_dropped,
            n.duplicated
        ));
        o.push_str("  \"counters\": {");
        for (i, (name, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("\n    ");
            push_str(&mut o, name);
            o.push_str(&format!(
                ": {{\"total\": {}, \"max_node\": {}}}",
                c.total, c.max_node
            ));
        }
        o.push_str("\n  },\n");
        o.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            o.push_str("\n    ");
            push_str(&mut o, name);
            o.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}",
                h.count,
                h.sum,
                h.max,
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        o.push_str("\n  },\n");
        match &self.trace {
            None => o.push_str("  \"trace\": null\n"),
            Some(t) => {
                o.push_str(&format!(
                    "  \"trace\": {{\"capacity\": {}, \"recorded\": {}, \"evicted\": {}, \
                     \"kinds\": {{",
                    t.capacity, t.recorded, t.evicted
                ));
                for (i, (k, c)) in t.kinds.iter().enumerate() {
                    if i > 0 {
                        o.push_str(", ");
                    }
                    push_str(&mut o, k);
                    o.push_str(&format!(": {c}"));
                }
                o.push_str("}}\n");
            }
        }
        o.push('}');
        o
    }

    /// Parses a document produced by [`Report::to_json`] (any JSON with
    /// the same shape works — field order and whitespace are free).
    ///
    /// # Errors
    /// A human-readable description of the first syntax or shape problem.
    pub fn from_json(s: &str) -> Result<Report, String> {
        let v = Json::parse(s)?;
        let top = v.obj("report")?;
        let events = {
            let e = get(top, "events")?.obj("events")?;
            EventSummary {
                published: num(e, "published")?,
                expected: num(e, "expected")?,
                delivered: num(e, "delivered")?,
                duplicates: num(e, "duplicates")?,
                max_hops: num(e, "max_hops")?,
                max_latency_us: num(e, "max_latency_us")?,
            }
        };
        let net = {
            let n = get(top, "net")?.obj("net")?;
            NetSummary {
                total_msgs: num(n, "total_msgs")?,
                total_bytes: num(n, "total_bytes")?,
                dropped: num(n, "dropped")?,
                fault_dropped: num(n, "fault_dropped")?,
                partition_dropped: num(n, "partition_dropped")?,
                duplicated: num(n, "duplicated")?,
            }
        };
        let counters = get(top, "counters")?
            .obj("counters")?
            .iter()
            .map(|(name, v)| {
                let c = v.obj(name)?;
                Ok((
                    name.clone(),
                    CounterSummary {
                        total: num(c, "total")?,
                        max_node: num(c, "max_node")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let histograms = get(top, "histograms")?
            .obj("histograms")?
            .iter()
            .map(|(name, v)| {
                let h = v.obj(name)?;
                Ok((
                    name.clone(),
                    HistSummary {
                        count: num(h, "count")?,
                        sum: num(h, "sum")?,
                        max: num(h, "max")?,
                        buckets: get(h, "buckets")?
                            .arr("buckets")?
                            .iter()
                            .map(|b| b.num("bucket"))
                            .collect::<Result<Vec<_>, String>>()?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let trace = match get(top, "trace")? {
            Json::Null => None,
            v => {
                let t = v.obj("trace")?;
                Some(TraceSummary {
                    capacity: num(t, "capacity")?,
                    recorded: num(t, "recorded")?,
                    evicted: num(t, "evicted")?,
                    kinds: get(t, "kinds")?
                        .obj("kinds")?
                        .iter()
                        .map(|(k, c)| Ok((k.clone(), c.num(k)?)))
                        .collect::<Result<Vec<_>, String>>()?,
                })
            }
        };
        let digest_s = get(top, "digest")?.str("digest")?;
        let digest = u64::from_str_radix(digest_s.trim_start_matches("0x"), 16)
            .map_err(|e| format!("bad digest {digest_s:?}: {e}"))?;
        Ok(Report {
            nodes: num(top, "nodes")?,
            time_us: num(top, "time_us")?,
            steps: num(top, "steps")?,
            digest,
            events,
            net,
            counters,
            histograms,
            trace,
        })
    }
}

/// Minimal JSON value for [`Report::from_json`]. Objects keep insertion
/// order (a `Vec` of pairs) so round-trips preserve registry ordering.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    get(obj, key)?.num(key)
}

impl Json {
    fn obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(o) => Ok(o),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn num(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    /// Recursive-descent parser over the subset of JSON reports use:
    /// objects, arrays, strings (with the escapes `to_json` emits),
    /// non-negative integers, and `null`.
    fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = Self::value(b, &mut pos)?;
        Self::ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        Self::ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut o = Vec::new();
                Self::ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(o));
                }
                loop {
                    Self::ws(b, pos);
                    let k = Self::string(b, pos)?;
                    Self::ws(b, pos);
                    Self::expect(b, pos, b':')?;
                    o.push((k, Self::value(b, pos)?));
                    Self::ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Json::Obj(o));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut a = Vec::new();
                Self::ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(a));
                }
                loop {
                    a.push(Self::value(b, pos)?);
                    Self::ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Json::Arr(a));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(Self::string(b, pos)?)),
            Some(b'n') => {
                if b[*pos..].starts_with(b"null") {
                    *pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {pos}"))
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while *pos < b.len() && b[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .unwrap()
                    .parse()
                    .map(Json::Num)
                    .map_err(|e| format!("bad number at byte {start}: {e}"))
            }
            _ => Err(format!("unexpected input at byte {pos}")),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        Self::expect(b, pos, b'"')?;
        let mut out = String::new();
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {pos}"))?;
                            let cp = u32::from_str_radix(std::str::from_utf8(hex).unwrap(), 16)
                                .map_err(|e| format!("bad \\u escape at byte {pos}: {e}"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad codepoint at byte {pos}"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                c => {
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(
                        std::str::from_utf8(&b[*pos..*pos + ch_len])
                            .map_err(|e| format!("bad utf8 at byte {pos}: {e}"))?,
                    );
                    *pos += ch_len;
                }
            }
        }
        Err("unterminated string".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            nodes: 16,
            time_us: 123_456,
            steps: 789,
            digest: 0xdead_beef_cafe_f00d,
            events: EventSummary {
                published: 10,
                expected: 20,
                delivered: 20,
                duplicates: 0,
                max_hops: 5,
                max_latency_us: 91_000,
            },
            net: NetSummary {
                total_msgs: 400,
                total_bytes: 123_000,
                dropped: 1,
                fault_dropped: 2,
                partition_dropped: 3,
                duplicated: 4,
            },
            counters: vec![
                (
                    "retry.attempts".into(),
                    CounterSummary {
                        total: 7,
                        max_node: 3,
                    },
                ),
                (
                    "lb.migrated_subs".into(),
                    CounterSummary {
                        total: 0,
                        max_node: 0,
                    },
                ),
            ],
            histograms: vec![(
                "delivery.fanout".into(),
                HistSummary {
                    count: 12,
                    sum: 30,
                    max: 6,
                    buckets: vec![0, 4, 6, 2],
                },
            )],
            trace: Some(TraceSummary {
                capacity: 4096,
                recorded: 5000,
                evicted: 904,
                kinds: vec![("net.deliver".into(), 2000), ("net.send".into(), 2096)],
            }),
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let r = sample();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_round_trip_without_trace() {
        let r = Report {
            trace: None,
            ..sample()
        };
        let parsed = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert!(r.to_json().contains("\"trace\": null"));
    }

    #[test]
    fn digest_survives_as_hex_string() {
        // 0xdead_beef_cafe_f00d > 2^53: a float round-trip would corrupt
        // it, the hex-string encoding must not.
        let r = sample();
        assert!(r.to_json().contains("\"digest\": \"0xdeadbeefcafef00d\""));
        assert_eq!(
            Report::from_json(&r.to_json()).unwrap().digest,
            0xdead_beef_cafe_f00d
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{").is_err());
        assert!(Report::from_json("{}").is_err(), "missing fields");
        assert!(Report::from_json("{} garbage").is_err());
        let truncated = &sample().to_json()[..100];
        assert!(Report::from_json(truncated).is_err());
    }

    #[test]
    fn escaped_names_round_trip() {
        let mut r = sample();
        r.counters.push((
            "weird\"name\\with\nescapes".into(),
            CounterSummary {
                total: 1,
                max_node: 1,
            },
        ));
        assert_eq!(Report::from_json(&r.to_json()).unwrap(), r);
    }
}
