//! Ack + bounded-exponential-backoff retransmission for request-shaped
//! protocol messages.
//!
//! The fail-stop path (`on_send_failed`) only covers *dead destinations*;
//! a lossy network (see `hypersub-simnet`'s fault plane) loses messages
//! silently. This layer makes the request-shaped steps — subscription
//! registration (Algorithm 2), unsubscription, summary-filter chain
//! pushes (Algorithm 3), event-delivery hops (Algorithm 5) and the load
//! balancer's migration handoff (§4) — survive such loss:
//!
//! * The sender wraps the message in [`HyperMsg::Reliable`] with a
//!   sender-unique token, remembers it in [`RelState::pending`], and arms
//!   a retransmit timer. Unacked messages are re-sent with the timeout
//!   doubling each attempt, up to `retry.max_attempts` transmissions.
//! * The receiver acks every `Reliable` it sees, but *processes* each
//!   `(sender, token)` at most once ([`RelState::seen`]) — so
//!   retransmissions (and fault-plane duplicates) are exactly-once even
//!   for handlers that are not idempotent, like migration acceptance.
//! * Periodic traffic (load probes, Chord maintenance) is *not*
//!   protected: it re-sends itself every period by construction, and the
//!   Chord layer tolerates missed rounds via its strike counter.
//!
//! Give-up is explicit: registrations are re-established by soft-state
//! refresh, deliveries accept the residual loss (bounded by
//! `loss^max_attempts` per hop), and an abandoned migration offer clears
//! its bookkeeping exactly like a dead-acceptor abort.

use crate::msg::HyperMsg;
use crate::node::{DedupCache, HyperSubNode, TOKEN_RETRY_BASE};
use crate::world::HyperWorld;
use hypersub_simnet::{FxHashMap, NodeRuntime, ProtoEvent, SimTime};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// One unacked reliable transmission.
#[derive(Debug, Clone)]
pub struct PendingSend {
    /// Destination node index.
    pub dst: usize,
    /// The unwrapped message (re-wrapped with the same token on re-send).
    pub msg: HyperMsg,
    /// Transmissions so far (first send counts).
    pub attempts: u32,
    /// When the first transmission left (ack latency is measured from
    /// here, spanning any retransmissions in between).
    pub sent_at: SimTime,
}

/// Per-node reliable-transmission state.
#[derive(Debug, Clone)]
pub struct RelState {
    /// Outstanding sends by token. Keyed lookups only (never iterated),
    /// so the fixed-seed fast hasher is safe.
    pub pending: FxHashMap<u64, PendingSend>,
    /// `(token, sender)` pairs already processed — dedups retransmissions
    /// and fault-injected duplicates.
    pub seen: DedupCache,
    next_token: u64,
}

impl Default for RelState {
    fn default() -> Self {
        Self {
            pending: FxHashMap::default(),
            seen: DedupCache::default(),
            next_token: 1,
        }
    }
}

impl RelState {
    fn alloc_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }
}

impl HyperSubNode {
    /// Sends `msg` to `dst` with ack/retransmit protection when retries
    /// are enabled; plain send otherwise (and always for self-sends,
    /// which cannot be lost).
    pub(crate) fn send_reliable<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        dst: usize,
        msg: HyperMsg,
    ) {
        if !self.cfg.retry.enabled || dst == ctx.me() {
            ctx.send(dst, msg);
            return;
        }
        let token = self.rel.alloc_token();
        self.rel.pending.insert(
            token,
            PendingSend {
                dst,
                msg: msg.clone(),
                attempts: 1,
                sent_at: ctx.now(),
            },
        );
        ctx.send(
            dst,
            HyperMsg::Reliable {
                token,
                inner: Box::new(msg),
            },
        );
        ctx.set_timer(self.cfg.retry.base_timeout, TOKEN_RETRY_BASE + token);
    }

    /// Receiver side: ack the transmission, then process the payload
    /// exactly once per `(sender, token)`.
    pub(crate) fn handle_reliable<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        from: usize,
        token: u64,
        inner: HyperMsg,
    ) {
        ctx.send(from, HyperMsg::Ack { token });
        if self.rel_seen_insert(token, from) {
            use hypersub_simnet::Node;
            self.on_message(ctx, from, inner);
        }
    }

    /// Sender side: the destination confirmed receipt.
    pub(crate) fn handle_ack<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        token: u64,
    ) {
        if let Some(p) = self.rel.pending.remove(&token) {
            let latency = ctx.now().saturating_sub(p.sent_at);
            let me = ctx.me();
            let m = &mut ctx.world().metrics.proto;
            m.acks.inc(me);
            m.ack_latency_us.observe(latency.as_micros());
            ctx.trace(|| ProtoEvent {
                kind: "retry.ack",
                flow: None,
                a: token,
                b: latency.as_micros(),
            });
        }
    }

    /// Retransmit-timer expiry for `token`: re-send with doubled timeout,
    /// or give up after the configured attempts.
    pub(crate) fn retry_fire<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        token: u64,
    ) {
        let Some(p) = self.rel.pending.get_mut(&token) else {
            return; // acked (or resolved via SendFailed) in the meantime
        };
        if p.attempts >= self.cfg.retry.max_attempts {
            let p = self.rel.pending.remove(&token).expect("present");
            self.give_up(ctx, p, token);
            return;
        }
        p.attempts += 1;
        let exponent = p.attempts - 1; // 2nd transmission waits 2x base, ...
        let attempts = p.attempts;
        let dst = p.dst;
        let msg = p.msg.clone();
        let me = ctx.me();
        ctx.world().metrics.proto.retry_attempts.inc(me);
        ctx.trace(|| ProtoEvent {
            kind: "retry.xmit",
            flow: None,
            a: token,
            b: attempts as u64,
        });
        ctx.send(
            dst,
            HyperMsg::Reliable {
                token,
                inner: Box::new(msg),
            },
        );
        let timeout = SimTime::from_micros(
            self.cfg
                .retry
                .base_timeout
                .as_micros()
                .saturating_mul(1u64 << exponent.min(32)),
        );
        ctx.set_timer(timeout, TOKEN_RETRY_BASE + token);
    }

    /// All retransmissions exhausted without an ack.
    fn give_up<R: NodeRuntime<HyperMsg, HyperWorld>>(
        &mut self,
        ctx: &mut R,
        p: PendingSend,
        token: u64,
    ) {
        let me = ctx.me();
        ctx.world().metrics.proto.retry_give_ups.inc(me);
        ctx.trace(|| ProtoEvent {
            kind: "retry.give_up",
            flow: None,
            a: token,
            b: p.attempts as u64,
        });
        if let HyperMsg::Migrate { batches, .. } = &p.msg {
            // Abort the offer like a dead-acceptor abort: entries were not
            // removed yet (removal happens on MigrateAck), so clearing the
            // bookkeeping returns them to the migratable pool.
            for b in batches {
                if let Some(items) = self.lb.in_flight.remove(&(p.dst, b.source)) {
                    for item in items {
                        self.lb.pending.remove(&(b.source, item.subid));
                    }
                }
            }
        }
        // A silent host (dead but never fail-stop-detected, e.g. behind a
        // partition) holding subscriptions we migrated to it: re-home them
        // (no-op unless self-healing is on).
        self.heal_on_peer_dead(ctx, p.dst);
        // Registrations: the soft-state lease re-installs. Deliveries: the
        // residual loss after max_attempts is the accepted failure floor.
    }

    fn rel_seen_insert(&mut self, token: u64, from: usize) -> bool {
        // The dedup cache stores (u64, u32) pairs; node indices fit u32.
        self.rel.seen.insert((token, from as u32))
    }
}

impl Encode for PendingSend {
    fn encode(&self, w: &mut Writer) {
        self.dst.encode(w);
        self.msg.encode(w);
        w.put_u32(self.attempts);
        self.sent_at.encode(w);
    }
}

impl Decode for PendingSend {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(PendingSend {
            dst: usize::decode(r)?,
            msg: HyperMsg::decode(r)?,
            attempts: r.take_u32()?,
            sent_at: SimTime::decode(r)?,
        })
    }
}

impl Encode for RelState {
    fn encode(&self, w: &mut Writer) {
        crate::repo::encode_map_sorted(&self.pending, w);
        self.seen.encode(w);
        w.put_u64(self.next_token);
    }
}

impl Decode for RelState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(RelState {
            pending: crate::repo::decode_map(r)?,
            seen: DedupCache::decode(r)?,
            next_token: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_dense() {
        let mut r = RelState::default();
        assert_eq!(r.alloc_token(), 1);
        assert_eq!(r.alloc_token(), 2);
        assert_eq!(r.alloc_token(), 3);
    }
}
