//! High-level driver: build a HyperSub network, install subscriptions,
//! publish events, collect metrics.

use crate::config::SystemConfig;
use crate::error::{HyperSubError, Result};
use crate::metrics::{DeliveryRecord, EventStats, Metrics};
use crate::model::{Event, Registry, SchemeId, SubId, Subscription};
use crate::msg::HyperMsg;
use crate::node::{
    HyperSubNode, IidTarget, TOKEN_FIX_FINGERS, TOKEN_LB, TOKEN_LEASE, TOKEN_PUBLISH_BASE,
    TOKEN_STABILIZE,
};
use crate::world::HyperWorld;
use hypersub_chord::builder::{build_ring, RingConfig};
use hypersub_lph::Point;
use hypersub_simnet::{
    FlightRecorder, KingLikeTopology, NetStats, Sim, SimSnapshot, SimTime, Topology,
    UniformTopology,
};
use hypersub_snapshot::{Decode, Encode, Reader, Writer};
use std::sync::Arc;

/// How to build the latency model.
#[derive(Clone)]
pub enum TopologyKind {
    /// Constant one-way latency (unit tests, microbenches).
    Uniform(SimTime),
    /// Synthetic King-dataset-like Internet latencies with the given mean
    /// RTT (the paper's 1740-node network averages ~180 ms).
    KingLike(SimTime),
    /// Caller-provided topology.
    Custom(Arc<dyn Topology>),
}

impl std::fmt::Debug for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyKind::Uniform(t) => write!(f, "Uniform({t})"),
            TopologyKind::KingLike(t) => write!(f, "KingLike(mean_rtt={t})"),
            TopologyKind::Custom(_) => write!(f, "Custom"),
        }
    }
}

/// Opt-in checkpoint/restore support (see `DESIGN.md`,
/// "Checkpoint/restore"). Off by default: a network built without it
/// refuses [`Network::snapshot`], and nothing about the run changes
/// either way — enabling snapshots only stashes the topology descriptor
/// needed to rebuild the latency model at restore time.
#[derive(Debug, Clone, Default)]
pub struct SnapshotConfig {
    /// Master switch.
    pub enabled: bool,
}

impl SnapshotConfig {
    /// Snapshots on.
    pub fn enabled() -> Self {
        Self { enabled: true }
    }
}

/// How to regenerate the topology at restore time. Uniform and King-like
/// topologies are pure functions of their parameters, so the snapshot
/// records the recipe instead of the full latency matrix; custom
/// topologies have no recipe and are rejected at build time when
/// snapshots are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoDescriptor {
    /// `UniformTopology::new(nodes, latency)`.
    Uniform { nodes: usize, latency: SimTime },
    /// `KingLikeTopology::generate(nodes, mean_rtt, seed)`.
    KingLike {
        nodes: usize,
        mean_rtt: SimTime,
        seed: u64,
    },
}

impl TopoDescriptor {
    fn nodes(&self) -> usize {
        match self {
            TopoDescriptor::Uniform { nodes, .. } => *nodes,
            TopoDescriptor::KingLike { nodes, .. } => *nodes,
        }
    }

    fn build(&self) -> Arc<dyn Topology> {
        match self {
            TopoDescriptor::Uniform { nodes, latency } => {
                Arc::new(UniformTopology::new(*nodes, *latency))
            }
            TopoDescriptor::KingLike {
                nodes,
                mean_rtt,
                seed,
            } => Arc::new(KingLikeTopology::generate(*nodes, *mean_rtt, *seed)),
        }
    }
}

impl Encode for TopoDescriptor {
    fn encode(&self, w: &mut Writer) {
        match self {
            TopoDescriptor::Uniform { nodes, latency } => {
                w.put_u8(0);
                nodes.encode(w);
                latency.encode(w);
            }
            TopoDescriptor::KingLike {
                nodes,
                mean_rtt,
                seed,
            } => {
                w.put_u8(1);
                nodes.encode(w);
                mean_rtt.encode(w);
                w.put_u64(*seed);
            }
        }
    }
}

impl Decode for TopoDescriptor {
    fn decode(r: &mut Reader<'_>) -> Result<Self, hypersub_snapshot::Error> {
        Ok(match r.take_u8()? {
            0 => TopoDescriptor::Uniform {
                nodes: usize::decode(r)?,
                latency: SimTime::decode(r)?,
            },
            1 => TopoDescriptor::KingLike {
                nodes: usize::decode(r)?,
                mean_rtt: SimTime::decode(r)?,
                seed: r.take_u64()?,
            },
            _ => {
                return Err(hypersub_snapshot::Error::InvalidValue(
                    "topology descriptor tag",
                ))
            }
        })
    }
}

/// Fluent constructor for [`Network`], obtained from
/// [`Network::builder`], so
/// `Network::builder(n).build()?` is the minimal happy path:
///
/// ```
/// use hypersub_core::prelude::*;
///
/// let net = Network::builder(8)
///     .registry(Registry::new(Vec::new()))
///     .latency(SimTime::from_millis(5))
///     .seed(42)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(net.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    nodes: usize,
    registry: Registry,
    config: SystemConfig,
    topology: TopologyKind,
    ring: RingConfig,
    seed: u64,
    recorder_capacity: Option<usize>,
    snapshot: SnapshotConfig,
}

impl NetworkBuilder {
    /// Scheme definitions the network serves.
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// System configuration (zone parameters, load balancing, retries).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Master seed (node ids, topology, simulator randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uniform topology with the given constant one-way latency.
    pub fn latency(mut self, one_way: SimTime) -> Self {
        self.topology = TopologyKind::Uniform(one_way);
        self
    }

    /// Synthetic King-dataset-like topology with the given mean RTT.
    pub fn king_like(mut self, mean_rtt: SimTime) -> Self {
        self.topology = TopologyKind::KingLike(mean_rtt);
        self
    }

    /// Explicit topology model (covers the custom-matrix case).
    pub fn topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Chord ring construction parameters.
    pub fn ring(mut self, ring: RingConfig) -> Self {
        self.ring = ring;
        self
    }

    /// Installs a flight recorder capturing the most recent `capacity`
    /// trace events (see `hypersub_simnet::trace`). Off by default;
    /// recording never changes run behavior.
    pub fn flight_recorder(mut self, capacity: usize) -> Self {
        self.recorder_capacity = Some(capacity);
        self
    }

    /// Checkpoint/restore support (see [`SnapshotConfig`]). Off by
    /// default; enabling it never changes run behavior or digests.
    pub fn snapshots(mut self, snapshot: SnapshotConfig) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Builds the stabilized network: topology, Chord ring (with PNS
    /// fingers), one HyperSub node per slot. Load-balancing timers are
    /// armed (staggered) when the config enables LB.
    pub fn build(self) -> Result<Network> {
        if self.nodes == 0 {
            return Err(HyperSubError::InvalidConfig(
                "network needs at least one node",
            ));
        }
        if let TopologyKind::Custom(t) = &self.topology {
            if t.len() != self.nodes {
                return Err(HyperSubError::InvalidConfig(
                    "custom topology size does not match node count",
                ));
            }
        }
        if self.recorder_capacity == Some(0) {
            return Err(HyperSubError::InvalidConfig(
                "flight recorder capacity must be positive",
            ));
        }
        if self.config.lb.enabled && self.config.lb.period == SimTime::ZERO {
            return Err(HyperSubError::InvalidConfig(
                "load balancing requires a nonzero period",
            ));
        }
        if self.config.retry.enabled && self.config.retry.max_attempts == 0 {
            return Err(HyperSubError::InvalidConfig(
                "retries require max_attempts >= 1",
            ));
        }
        if self.config.heal.enabled && self.config.heal.lease_period == SimTime::ZERO {
            return Err(HyperSubError::InvalidConfig(
                "self-healing requires a nonzero lease period",
            ));
        }
        let topo_desc = if self.snapshot.enabled {
            Some(match &self.topology {
                TopologyKind::Uniform(t) => TopoDescriptor::Uniform {
                    nodes: self.nodes,
                    latency: *t,
                },
                TopologyKind::KingLike(rtt) => TopoDescriptor::KingLike {
                    nodes: self.nodes,
                    mean_rtt: *rtt,
                    seed: self.seed ^ 0x7090,
                },
                TopologyKind::Custom(_) => {
                    return Err(HyperSubError::Snapshot(
                        hypersub_snapshot::Error::Unsupported(
                            "snapshots cannot capture a custom topology",
                        ),
                    ))
                }
            })
        } else {
            None
        };
        let topo: Arc<dyn Topology> = match &self.topology {
            TopologyKind::Uniform(t) => Arc::new(UniformTopology::new(self.nodes, *t)),
            TopologyKind::KingLike(rtt) => Arc::new(KingLikeTopology::generate(
                self.nodes,
                *rtt,
                self.seed ^ 0x7090,
            )),
            TopologyKind::Custom(t) => Arc::clone(t),
        };
        let states = build_ring(&self.ring, topo.as_ref(), self.seed);
        let registry = Arc::new(self.registry);
        let cfg = Arc::new(self.config);
        let nodes: Vec<HyperSubNode> = states
            .into_iter()
            .map(|st| HyperSubNode::new(st, Arc::clone(&registry), Arc::clone(&cfg)))
            .collect();
        let mut sim = Sim::new(topo, nodes, HyperWorld::default(), self.seed ^ 0x51ed);
        if let Some(capacity) = self.recorder_capacity {
            sim.enable_recording(capacity);
        }
        if cfg.lb.enabled {
            // Stagger first ticks across the period so probe bursts do not
            // synchronize.
            let period_us = cfg.lb.period.as_micros().max(1);
            for i in 0..self.nodes {
                let offset = SimTime::from_micros((i as u64).wrapping_mul(7919) % period_us);
                sim.schedule_timer(cfg.lb.period + offset, i, TOKEN_LB);
            }
        }
        if cfg.heal.enabled {
            // Same stagger trick for lease ticks: a jittered start keeps
            // re-push/replication bursts from synchronizing across nodes.
            let period_us = cfg.heal.lease_period.as_micros().max(1);
            for i in 0..self.nodes {
                let offset = SimTime::from_micros((i as u64).wrapping_mul(7919) % period_us);
                sim.schedule_timer(cfg.heal.lease_period + offset, i, TOKEN_LEASE);
            }
        }
        Ok(Network {
            sim,
            next_event_id: 1,
            scheduled_events: 0,
            topo_desc,
        })
    }
}

/// A running HyperSub network.
pub struct Network {
    pub(crate) sim: Sim<HyperSubNode, HyperMsg, HyperWorld>,
    next_event_id: u64,
    scheduled_events: u64,
    /// Recipe for regenerating the topology at restore time; `Some` iff
    /// the network was built with [`SnapshotConfig`] enabled.
    topo_desc: Option<TopoDescriptor>,
}

impl Network {
    /// Starts building an `nodes`-node network; see [`NetworkBuilder`]
    /// for the knobs. Defaults: empty registry, default
    /// [`SystemConfig`], uniform 10 ms links, default ring, seed 0, no
    /// flight recorder.
    pub fn builder(nodes: usize) -> NetworkBuilder {
        NetworkBuilder {
            nodes,
            registry: Registry::new(Vec::new()),
            config: SystemConfig::default(),
            topology: TopologyKind::Uniform(SimTime::from_millis(10)),
            ring: RingConfig::default(),
            seed: 0,
            recorder_capacity: None,
            snapshot: SnapshotConfig::default(),
        }
    }

    /// Installs a subscription from `node` (Algorithm 2 starts here).
    /// Run the network afterwards to let registration traffic settle.
    pub fn subscribe(&mut self, node: usize, scheme: SchemeId, sub: Subscription) -> SubId {
        self.sim
            .with_node_ctx(node, |n, ctx| n.subscribe(ctx, scheme, sub))
    }

    /// Cancels a subscription previously returned by [`Network::subscribe`].
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index,
    /// [`HyperSubError::DeadNode`] when `node` is failed,
    /// [`HyperSubError::ForeignSubscription`] when `subid` belongs to a
    /// different node, and [`HyperSubError::UnknownSubscription`] when it
    /// is not (or no longer) a live local subscription.
    pub fn unsubscribe(&mut self, node: usize, subid: SubId) -> Result<()> {
        self.check_node(node)?;
        if !self.sim.is_alive(node) {
            return Err(HyperSubError::DeadNode { node });
        }
        if self.sim.node(node).chord().id != subid.nid {
            return Err(HyperSubError::ForeignSubscription { node, sub: subid });
        }
        let live = self
            .sim
            .with_node_ctx(node, |n, ctx| n.unsubscribe(ctx, subid.iid));
        if live {
            Ok(())
        } else {
            Err(HyperSubError::UnknownSubscription { sub: subid })
        }
    }

    /// Publishes an event from `node` right now. Returns the event id.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn publish(&mut self, node: usize, scheme: SchemeId, point: Point) -> Result<u64> {
        self.check_node(node)?;
        let id = self.alloc_event_id();
        self.sim.with_node_ctx(node, |n, ctx| {
            n.publish_event(ctx, scheme, Event { id, point })
        });
        Ok(id)
    }

    /// Publishes through the deep-cloning reference path
    /// ([`HyperSubNode::publish_event_owned`]) instead of the shared-`Arc`
    /// fast path. Exists for differential tests proving the two paths are
    /// observationally identical.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn publish_owned(&mut self, node: usize, scheme: SchemeId, point: Point) -> Result<u64> {
        self.check_node(node)?;
        let id = self.alloc_event_id();
        self.sim.with_node_ctx(node, |n, ctx| {
            n.publish_event_owned(ctx, scheme, Event { id, point })
        });
        Ok(id)
    }

    /// Schedules an event publication at absolute simulated time `at`.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn schedule_publish(
        &mut self,
        at: SimTime,
        node: usize,
        scheme: SchemeId,
        point: Point,
    ) -> Result<u64> {
        self.check_node(node)?;
        let id = self.alloc_event_id();
        let idx = self.sim.world().script.len();
        self.sim
            .world_mut()
            .script
            .push(Some((scheme, Event { id, point })));
        self.sim
            .schedule_timer(at, node, TOKEN_PUBLISH_BASE + idx as u64);
        self.scheduled_events += 1;
        Ok(id)
    }

    fn check_node(&self, node: usize) -> Result<()> {
        let nodes = self.sim.len();
        if node >= nodes {
            return Err(HyperSubError::NodeOutOfRange { node, nodes });
        }
        Ok(())
    }

    fn alloc_event_id(&mut self) -> u64 {
        let id = self.next_event_id;
        self.next_event_id += 1;
        id
    }

    /// Enables Chord maintenance (stabilize/fix-fingers) on every node —
    /// needed for churn scenarios.
    pub fn enable_maintenance(&mut self) {
        for i in 0..self.sim.len() {
            self.sim.node_mut(i).maintenance = true;
            self.sim.schedule_timer(
                self.time() + hypersub_chord::proto::STABILIZE_PERIOD,
                i,
                TOKEN_STABILIZE,
            );
            self.sim.schedule_timer(
                self.time() + hypersub_chord::proto::FIX_FINGERS_PERIOD,
                i,
                TOKEN_FIX_FINGERS,
            );
        }
    }

    /// Fails a node (messages to it are dropped).
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index,
    /// [`HyperSubError::DeadNode`] when the node is already failed.
    pub fn fail(&mut self, node: usize) -> Result<()> {
        self.check_node(node)?;
        if !self.sim.is_alive(node) {
            return Err(HyperSubError::DeadNode { node });
        }
        self.sim.fail(node);
        Ok(())
    }

    /// Revives a failed node.
    ///
    /// The engine silently discards timer events addressed to dead nodes,
    /// so every enabled periodic timer (maintenance, load balancing,
    /// leases) is re-armed here. With self-healing enabled the node also
    /// *rejoins fresh*: its pre-failure rendezvous state (repositories,
    /// hosted entries, replicas, volatile LB and retry bookkeeping) is
    /// stale — successors promoted it while the node was down — and is
    /// dropped; leases and stabilization rebuild what the node should own.
    /// Local subscriptions and Chord identity survive (the application
    /// did not crash away its intent, and the ring id is the node). With
    /// self-healing disabled the legacy semantics hold: state unchanged.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index,
    /// [`HyperSubError::AliveNode`] when the node is not failed.
    pub fn revive(&mut self, node: usize) -> Result<()> {
        self.check_node(node)?;
        if self.sim.is_alive(node) {
            return Err(HyperSubError::AliveNode { node });
        }
        self.sim.revive(node);
        let n = self.sim.node(node);
        let heal = n.cfg.heal.enabled;
        let lb = n.cfg.lb.enabled;
        let lease_period = n.cfg.heal.lease_period;
        let lb_period = n.cfg.lb.period;
        let maintenance = n.maintenance;
        if heal {
            self.sim.with_node_ctx(node, |n, ctx| {
                // Liveness observations predate the downtime: stale
                // tombstones would make this node refuse the very gossip
                // that re-knits its neighborhood (see
                // `MaintState::rejoin_reset`).
                n.maint.rejoin_reset();
                n.repos.clear();
                n.hosted.clear();
                n.replicas.clear();
                n.iids.retain(|_, t| matches!(t, IidTarget::Local));
                n.lb.samples.clear();
                n.lb.pending.clear();
                n.lb.in_flight.clear();
                n.lb.migrated_index.clear();
                n.rel.pending.clear();
                let me = ctx.me as u64;
                ctx.trace(|| hypersub_simnet::ProtoEvent {
                    kind: "repair.rejoin",
                    flow: None,
                    a: me,
                    b: 0,
                });
            });
        }
        let now = self.time();
        if maintenance {
            self.sim.schedule_timer(
                now + hypersub_chord::proto::STABILIZE_PERIOD,
                node,
                TOKEN_STABILIZE,
            );
            self.sim.schedule_timer(
                now + hypersub_chord::proto::FIX_FINGERS_PERIOD,
                node,
                TOKEN_FIX_FINGERS,
            );
        }
        if lb {
            self.sim.schedule_timer(now + lb_period, node, TOKEN_LB);
        }
        if heal {
            self.sim
                .schedule_timer(now + lease_period, node, TOKEN_LEASE);
        }
        Ok(())
    }

    /// Installs a fault plane on the underlying simulator (loss,
    /// duplication, delay, partitions — see `hypersub_simnet::FaultPlane`).
    pub fn install_fault_plane(&mut self, plane: hypersub_simnet::FaultPlane) {
        self.sim.install_fault_plane(plane);
    }

    /// Mutable access to the installed fault plane, if any.
    pub fn fault_plane_mut(&mut self) -> Option<&mut hypersub_simnet::FaultPlane> {
        self.sim.fault_plane_mut()
    }

    /// Serializes the complete network state — every node's protocol
    /// state, the world (metrics, oracle, script), and the engine
    /// (event queue, per-node liveness, RNG streams, fault plane, flight
    /// recorder) — into a self-checking versioned byte envelope.
    ///
    /// The snapshot is taken at a *quiesce point*: call it between
    /// [`Network::run_until`] / [`Network::run_to_quiescence`] calls, not
    /// from inside a node callback. Restoring with [`Network::restore`]
    /// in a fresh process and running to the same end time produces
    /// bit-identical deliveries, network counters, digests and reports.
    ///
    /// # Errors
    /// [`HyperSubError::SnapshotsDisabled`] when the network was built
    /// without [`SnapshotConfig`] enabled.
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        let desc = self.topo_desc.ok_or(HyperSubError::SnapshotsDisabled)?;
        let mut w = Writer::new();
        desc.encode(&mut w);
        // The registry and config are shared by every node: encode them
        // once and re-share the `Arc`s on restore.
        self.sim.node(0).registry.encode(&mut w);
        self.sim.node(0).cfg.encode(&mut w);
        w.put_u64(self.sim.len() as u64);
        for node in self.sim.nodes() {
            node.snapshot_encode(&mut w);
        }
        self.sim.world().encode(&mut w);
        self.sim.export_state().encode(&mut w);
        w.put_u64(self.next_event_id);
        w.put_u64(self.scheduled_events);
        Ok(hypersub_snapshot::seal(w.into_vec()))
    }

    /// Reconstructs a network from bytes produced by
    /// [`Network::snapshot`], with snapshots still enabled on the result.
    ///
    /// # Errors
    /// [`HyperSubError::Snapshot`] when the bytes are corrupt, truncated,
    /// from a different format version, or internally inconsistent.
    pub fn restore(bytes: &[u8]) -> Result<Network> {
        let payload = hypersub_snapshot::unseal(bytes)?;
        let mut r = Reader::new(payload);
        let desc = TopoDescriptor::decode(&mut r)?;
        let registry = Arc::new(Registry::decode(&mut r)?);
        let cfg = Arc::new(SystemConfig::decode(&mut r)?);
        let n = r.take_u64()? as usize;
        if n != desc.nodes() || n == 0 {
            return Err(HyperSubError::Snapshot(
                hypersub_snapshot::Error::InvalidValue("snapshot node count"),
            ));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(HyperSubNode::snapshot_decode(
                &mut r,
                Arc::clone(&registry),
                Arc::clone(&cfg),
            )?);
        }
        let world = HyperWorld::decode(&mut r)?;
        let snap = SimSnapshot::<HyperMsg>::decode(&mut r)?;
        if snap.alive.len() != n {
            return Err(HyperSubError::Snapshot(
                hypersub_snapshot::Error::InvalidValue("snapshot liveness length"),
            ));
        }
        let next_event_id = r.take_u64()?;
        let scheduled_events = r.take_u64()?;
        r.finish().map_err(HyperSubError::Snapshot)?;
        let sim = Sim::from_snapshot(desc.build(), nodes, world, snap);
        Ok(Network {
            sim,
            next_event_id,
            scheduled_events,
            topo_desc: Some(desc),
        })
    }

    /// Runs until the event queue drains (messages and scripted timers
    /// all processed).
    ///
    /// # Panics
    /// Panics when load balancing, Chord maintenance, or self-healing is
    /// enabled — their periodic timers re-arm forever, so the queue never
    /// drains; drive such networks with [`Network::run_until`] instead.
    pub fn run_to_quiescence(&mut self) {
        let n0 = self.sim.node(0);
        assert!(
            !n0.cfg.lb.enabled && !n0.maintenance && !n0.cfg.heal.enabled,
            "run_to_quiescence would never return with periodic timers \
             (LB/maintenance/leases) armed; use run_until"
        );
        self.sim.run(u64::MAX / 2);
    }

    /// Runs until simulated time `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.sim.time()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// True for an empty network (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Per-event statistics (Figure 2's dataset).
    pub fn event_stats(&self) -> Vec<EventStats> {
        let total = self.sim.world().oracle.len();
        self.sim.world().metrics.event_stats(total, self.sim.net())
    }

    /// Per-node load (stored subscriptions) — Figure 4's dataset.
    pub fn node_loads(&self) -> Vec<u64> {
        self.sim.nodes().iter().map(|n| n.load()).collect()
    }

    /// Network counters (Figure 3's dataset).
    pub fn net(&self) -> &NetStats {
        self.sim.net()
    }

    /// Ground-truth match set for a hypothetical event (testing).
    pub fn expected_matches(&self, scheme: SchemeId, point: &Point) -> Vec<SubId> {
        self.sim.world().oracle.expected_matches(scheme, point)
    }

    /// Immutable access to a node.
    ///
    /// # Errors
    /// [`HyperSubError::NodeOutOfRange`] for a bad index.
    pub fn node(&self, i: usize) -> Result<&HyperSubNode> {
        self.check_node(i)?;
        Ok(self.sim.node(i))
    }

    /// All nodes, indexed by simulator slot.
    pub fn nodes(&self) -> &[HyperSubNode] {
        self.sim.nodes()
    }

    /// The metric sink (publishes, deliveries, protocol counters).
    pub fn metrics(&self) -> &Metrics {
        &self.sim.world().metrics
    }

    /// Raw per-subscriber delivery records, in delivery order — the trace
    /// the run digest is computed over.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        self.sim.world().metrics.deliveries()
    }

    /// The run digest over the delivery trace and network counters (see
    /// [`crate::digest`]).
    pub fn run_digest(&self) -> u64 {
        crate::digest::run_digest(self.deliveries(), self.sim.net())
    }

    /// Simulator events processed so far.
    pub fn steps(&self) -> u64 {
        self.sim.steps()
    }

    /// The latency model.
    pub fn topology(&self) -> &Arc<dyn Topology> {
        self.sim.topology()
    }

    /// Installs a flight recorder mid-run (capturing the most recent
    /// `capacity` events from here on). Usually set up front via
    /// [`NetworkBuilder::flight_recorder`].
    pub fn enable_recording(&mut self, capacity: usize) {
        self.sim.enable_recording(capacity);
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.sim.recorder()
    }

    /// Removes the flight recorder, returning the captured trace.
    pub fn disable_recording(&mut self) -> Option<FlightRecorder> {
        self.sim.disable_recording()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SchemeDef;
    use hypersub_lph::Rect;

    fn registry() -> Registry {
        Registry::new(vec![SchemeDef::builder("t")
            .attribute("x", 0.0, 100.0)
            .attribute("y", 0.0, 100.0)
            .build(0)])
    }

    fn small_net(nodes: usize, seed: u64) -> Network {
        Network::builder(nodes)
            .registry(registry())
            .seed(seed)
            .build()
            .expect("valid test network")
    }

    #[test]
    fn subscribe_then_publish_delivers() {
        let mut net = small_net(8, 1);
        let sub = Subscription::new(Rect::new(vec![10.0, 10.0], vec![20.0, 20.0]));
        let subid = net.subscribe(3, 0, sub);
        net.run_to_quiescence();
        let ev = net.publish(5, 0, Point(vec![15.0, 15.0])).unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].event, ev);
        assert_eq!(stats[0].expected, 1);
        assert_eq!(stats[0].delivered, 1, "subscriber must receive the event");
        assert_eq!(stats[0].duplicates, 0);
        let _ = subid;
    }

    #[test]
    fn non_matching_event_delivers_nothing() {
        let mut net = small_net(8, 2);
        net.subscribe(
            3,
            0,
            Subscription::new(Rect::new(vec![10.0, 10.0], vec![20.0, 20.0])),
        );
        net.run_to_quiescence();
        net.publish(5, 0, Point(vec![90.0, 90.0])).unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        assert_eq!(stats[0].expected, 0);
        assert_eq!(stats[0].delivered, 0);
    }

    #[test]
    fn delivered_set_equals_bruteforce_many_subs() {
        let mut net = small_net(16, 3);
        // A spread of subscriptions, including boundary-straddling ones.
        let rects = [
            ([0.0, 0.0], [100.0, 100.0]), // matches everything
            ([40.0, 40.0], [60.0, 60.0]),
            ([50.0, 0.0], [50.0, 100.0]), // degenerate plane at x=50
            ([0.0, 45.0], [100.0, 55.0]),
            ([70.0, 70.0], [80.0, 80.0]),
            ([49.0, 49.0], [51.0, 51.0]),
        ];
        for (i, (lo, hi)) in rects.iter().enumerate() {
            net.subscribe(
                i % 16,
                0,
                Subscription::new(Rect::new(lo.to_vec(), hi.to_vec())),
            );
        }
        net.run_to_quiescence();
        for (j, point) in [
            Point(vec![50.0, 50.0]), // the hot corner: matches many
            Point(vec![75.0, 75.0]),
            Point(vec![1.0, 1.0]),
            Point(vec![50.0, 10.0]),
        ]
        .into_iter()
        .enumerate()
        {
            let expected = net.expected_matches(0, &point);
            let ev = net.publish((j * 3) % 16, 0, point).unwrap();
            net.run_to_quiescence();
            let stats = net.event_stats();
            let s = stats.iter().find(|s| s.event == ev).unwrap();
            assert_eq!(
                s.delivered,
                expected.len(),
                "event {ev}: delivered {} != expected {}",
                s.delivered,
                expected.len()
            );
            assert_eq!(s.duplicates, 0, "event {ev} had duplicate deliveries");
        }
    }

    #[test]
    fn scheduled_publish_fires() {
        let mut net = small_net(8, 4);
        net.subscribe(
            1,
            0,
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        );
        net.run_to_quiescence();
        net.schedule_publish(SimTime::from_secs(5), 2, 0, Point(vec![5.0, 5.0]))
            .unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].delivered, 1);
        assert!(stats[0].publish_time >= SimTime::from_secs(5));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut net = small_net(12, 21);
        let keep = net.subscribe(
            2,
            0,
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        );
        let cancel = net.subscribe(
            5,
            0,
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        );
        net.run_to_quiescence();
        let e1 = net.publish(7, 0, Point(vec![50.0, 50.0])).unwrap();
        net.run_to_quiescence();
        assert_eq!(net.unsubscribe(5, cancel), Ok(()));
        assert_eq!(
            net.unsubscribe(5, cancel),
            Err(HyperSubError::UnknownSubscription { sub: cancel }),
            "double unsubscribe reports the dead id"
        );
        net.run_to_quiescence();
        let e2 = net.publish(7, 0, Point(vec![51.0, 51.0])).unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        let s1 = stats.iter().find(|s| s.event == e1).unwrap();
        let s2 = stats.iter().find(|s| s.event == e2).unwrap();
        assert_eq!(s1.delivered, 2, "before unsubscribe both fire");
        assert_eq!(s2.delivered, 1, "after unsubscribe only one fires");
        assert_eq!(s2.expected, 1);
        let _ = keep;
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = small_net(12, seed);
            for i in 0..12 {
                let lo = i as f64 * 5.0;
                net.subscribe(
                    i,
                    0,
                    Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0])),
                );
            }
            net.run_to_quiescence();
            for i in 0..6 {
                net.publish(i, 0, Point(vec![i as f64 * 17.0 % 100.0, 50.0]))
                    .unwrap();
            }
            net.run_to_quiescence();
            net.event_stats()
                .iter()
                .map(|s| (s.event, s.delivered, s.max_hops, s.bandwidth_bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn builder_validates_configuration() {
        assert_eq!(
            Network::builder(0).build().err(),
            Some(HyperSubError::InvalidConfig(
                "network needs at least one node"
            ))
        );
        assert_eq!(
            Network::builder(4).flight_recorder(0).build().err(),
            Some(HyperSubError::InvalidConfig(
                "flight recorder capacity must be positive"
            ))
        );
        let topo: Arc<dyn Topology> = Arc::new(UniformTopology::new(3, SimTime::from_millis(1)));
        assert_eq!(
            Network::builder(4)
                .topology(TopologyKind::Custom(topo))
                .build()
                .err(),
            Some(HyperSubError::InvalidConfig(
                "custom topology size does not match node count"
            ))
        );
    }

    #[test]
    fn out_of_range_operations_are_errors_not_panics() {
        let mut net = small_net(4, 11);
        assert_eq!(
            net.node(4).err(),
            Some(HyperSubError::NodeOutOfRange { node: 4, nodes: 4 })
        );
        assert_eq!(
            net.publish(99, 0, Point(vec![1.0, 1.0])).err(),
            Some(HyperSubError::NodeOutOfRange { node: 99, nodes: 4 })
        );
        assert_eq!(
            net.schedule_publish(SimTime::from_secs(1), 4, 0, Point(vec![1.0, 1.0]))
                .err(),
            Some(HyperSubError::NodeOutOfRange { node: 4, nodes: 4 })
        );
        let sub = SubId { nid: 1, iid: 1 };
        assert_eq!(
            net.unsubscribe(7, sub).err(),
            Some(HyperSubError::NodeOutOfRange { node: 7, nodes: 4 })
        );
    }

    #[test]
    fn unsubscribe_distinguishes_dead_node_and_foreign_sub() {
        let mut net = small_net(6, 12);
        let sub = net.subscribe(
            2,
            0,
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![10.0, 10.0])),
        );
        net.run_to_quiescence();
        // Addressed to the wrong node: the id names node 2's ring id.
        assert_eq!(
            net.unsubscribe(3, sub),
            Err(HyperSubError::ForeignSubscription { node: 3, sub })
        );
        net.fail(2).unwrap();
        assert_eq!(
            net.unsubscribe(2, sub),
            Err(HyperSubError::DeadNode { node: 2 })
        );
        net.revive(2).unwrap();
        assert_eq!(net.unsubscribe(2, sub), Ok(()));
    }

    #[test]
    fn fail_and_revive_are_typed() {
        let mut net = small_net(4, 14);
        assert_eq!(
            net.fail(9).err(),
            Some(HyperSubError::NodeOutOfRange { node: 9, nodes: 4 })
        );
        assert_eq!(
            net.revive(9).err(),
            Some(HyperSubError::NodeOutOfRange { node: 9, nodes: 4 })
        );
        assert_eq!(
            net.revive(2).err(),
            Some(HyperSubError::AliveNode { node: 2 }),
            "reviving a live node is an error"
        );
        net.fail(1).unwrap();
        assert_eq!(
            net.fail(1).err(),
            Some(HyperSubError::DeadNode { node: 1 }),
            "double fail is an error"
        );
        net.revive(1).unwrap();
        net.fail(1).unwrap();
    }

    #[test]
    fn heal_requires_nonzero_lease_period() {
        let mut cfg = SystemConfig::default().with_self_healing();
        cfg.heal.lease_period = SimTime::ZERO;
        assert_eq!(
            Network::builder(4)
                .registry(registry())
                .config(cfg)
                .build()
                .err(),
            Some(HyperSubError::InvalidConfig(
                "self-healing requires a nonzero lease period"
            ))
        );
    }

    #[test]
    #[should_panic(expected = "use run_until")]
    fn quiescence_panics_with_self_healing_enabled() {
        let mut net = Network::builder(4)
            .registry(registry())
            .config(SystemConfig::default().with_self_healing())
            .build()
            .unwrap();
        net.run_to_quiescence();
    }

    #[test]
    fn snapshot_requires_opt_in() {
        let net = small_net(4, 15);
        assert_eq!(net.snapshot().err(), Some(HyperSubError::SnapshotsDisabled));
        let net = Network::builder(4)
            .registry(registry())
            .snapshots(SnapshotConfig::enabled())
            .build()
            .unwrap();
        assert!(net.snapshot().is_ok());
    }

    #[test]
    fn snapshot_rejects_custom_topology() {
        let topo: Arc<dyn Topology> = Arc::new(UniformTopology::new(4, SimTime::from_millis(1)));
        assert_eq!(
            Network::builder(4)
                .topology(TopologyKind::Custom(topo))
                .snapshots(SnapshotConfig::enabled())
                .build()
                .err(),
            Some(HyperSubError::Snapshot(
                hypersub_snapshot::Error::Unsupported("snapshots cannot capture a custom topology")
            ))
        );
    }

    #[test]
    fn snapshot_restore_round_trips_mid_run() {
        let build = || {
            Network::builder(12)
                .registry(registry())
                .seed(31)
                .snapshots(SnapshotConfig::enabled())
                .build()
                .unwrap()
        };
        let drive = |net: &mut Network, from: usize| {
            for i in from..6 {
                net.schedule_publish(
                    SimTime::from_secs(20 + i as u64),
                    i * 2,
                    0,
                    Point(vec![(i as f64 * 19.0) % 100.0, 50.0]),
                )
                .unwrap();
            }
        };
        // Straight-through reference run.
        let mut reference = build();
        for i in 0..12 {
            let lo = i as f64 * 7.0 % 90.0;
            reference.subscribe(
                i,
                0,
                Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0])),
            );
        }
        drive(&mut reference, 0);
        reference.run_to_quiescence();
        // Split run: identical setup, snapshot mid-way, restore, finish.
        let mut first = build();
        for i in 0..12 {
            let lo = i as f64 * 7.0 % 90.0;
            first.subscribe(
                i,
                0,
                Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 10.0, 100.0])),
            );
        }
        drive(&mut first, 0);
        first.run_until(SimTime::from_secs(22));
        let bytes = first.snapshot().unwrap();
        drop(first);
        let mut resumed = Network::restore(&bytes).unwrap();
        assert_eq!(resumed.time(), SimTime::from_secs(22));
        resumed.run_to_quiescence();
        assert_eq!(resumed.run_digest(), reference.run_digest());
        assert_eq!(resumed.deliveries(), reference.deliveries());
        assert_eq!(resumed.net(), reference.net());
    }

    #[test]
    fn restore_rejects_corrupt_bytes() {
        let net = Network::builder(4)
            .registry(registry())
            .snapshots(SnapshotConfig::enabled())
            .build()
            .unwrap();
        let mut bytes = net.snapshot().unwrap();
        let last = bytes.len() - 9; // flip a payload bit, not the checksum
        bytes[last] ^= 0x40;
        assert!(matches!(
            Network::restore(&bytes),
            Err(HyperSubError::Snapshot(
                hypersub_snapshot::Error::ChecksumMismatch { .. }
            ))
        ));
        assert!(Network::restore(&[]).is_err());
    }

    #[test]
    fn builder_recorder_is_off_by_default_and_installable() {
        let net = small_net(4, 13);
        assert!(net.recorder().is_none(), "recording must be opt-in");
        let mut net = Network::builder(4)
            .registry(registry())
            .flight_recorder(1 << 12)
            .build()
            .unwrap();
        assert!(net.recorder().is_some());
        net.run_to_quiescence();
        let rec = net.disable_recording().unwrap();
        assert_eq!(rec.capacity(), 1 << 12);
    }
}
