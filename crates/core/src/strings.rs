//! String attributes as numeric ranges (§3.1).
//!
//! "Note that the prefix and suffix predicates on string type attributes
//! can be converted to numerical ranges." This module is that conversion:
//! an order-preserving encoding of byte strings into `f64`, plus helpers
//! that turn equality/prefix/range/suffix predicates into the closed
//! numeric intervals HyperSub subscriptions are made of.
//!
//! ## Encoding
//!
//! The first [`SIGNIFICANT_BYTES`] (= 6) bytes are packed big-endian into
//! the 52-bit mantissa of an `f64` (6 bytes = 48 bits, exactly
//! representable), so byte-wise lexicographic order of the significant
//! prefix maps to numeric order. Strings that share their first 6 bytes
//! alias to the same point — matching is then coarser than exact string
//! comparison, which trades a bounded false-positive rate for fixed-width
//! keys (the application filters the residue; the paper's model makes the
//! same move implicitly by treating all attributes as numeric).
//!
//! Suffix predicates are handled the standard way: a *reversed* companion
//! attribute encodes `s.reverse()`, on which a suffix becomes a prefix.

/// Bytes of a string that participate in the encoding.
pub const SIGNIFICANT_BYTES: usize = 6;

/// Upper bound (inclusive) of the string domain: `256^6 - 1`.
pub const DOMAIN_MAX: f64 = ((1u64 << (8 * SIGNIFICANT_BYTES as u32)) - 1) as f64;

/// Encodes a string order-preservingly into `[0, DOMAIN_MAX]`.
pub fn encode(s: &str) -> f64 {
    encode_bytes(s.as_bytes())
}

/// Encodes the reversed string — the companion attribute for suffix
/// predicates.
pub fn encode_reversed(s: &str) -> f64 {
    let rev: Vec<u8> = s.as_bytes().iter().rev().copied().collect();
    encode_bytes(&rev)
}

fn encode_bytes(b: &[u8]) -> f64 {
    let mut v: u64 = 0;
    for i in 0..SIGNIFICANT_BYTES {
        v = (v << 8) | *b.get(i).unwrap_or(&0) as u64;
    }
    v as f64
}

/// The closed numeric interval matching exactly the strings whose
/// significant prefix equals `s`'s.
pub fn exact(s: &str) -> (f64, f64) {
    let e = encode(s);
    (e, e)
}

/// The closed numeric interval of all strings starting with `prefix`.
pub fn prefix(prefix: &str) -> (f64, f64) {
    let lo = encode(prefix);
    let free = SIGNIFICANT_BYTES.saturating_sub(prefix.len());
    let span = if free == 0 {
        0.0
    } else {
        ((1u64 << (8 * free as u32)) - 1) as f64
    };
    (lo, lo + span)
}

/// The closed interval of all strings ending with `suffix`, expressed in
/// the *reversed* attribute's domain (use with an `encode_reversed`
/// event attribute).
pub fn suffix(suffix: &str) -> (f64, f64) {
    let rev: String = suffix.chars().rev().collect();
    prefix(&rev)
}

/// Lexicographic closed range `[a, b]`.
pub fn range(a: &str, b: &str) -> (f64, f64) {
    let (lo, hi) = (encode(a), encode(b));
    assert!(lo <= hi, "string range bounds out of order: {a:?} > {b:?}");
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encoding_is_order_preserving() {
        let words = ["", "a", "aa", "ab", "b", "ba", "zebra", "zz"];
        for w in words.windows(2) {
            assert!(encode(w[0]) < encode(w[1]), "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn domain_bounds() {
        assert_eq!(encode(""), 0.0);
        assert_eq!(encode("\u{7f}\u{7f}"), encode("\u{7f}\u{7f}\0"));
        assert!(encode("zzzzzz") <= DOMAIN_MAX);
        let all_ff = String::from_utf8(vec![0x7f; 12]).unwrap();
        assert!(encode(&all_ff) <= DOMAIN_MAX);
    }

    #[test]
    fn prefix_interval_contains_extensions() {
        let (lo, hi) = prefix("abc");
        for s in ["abc", "abcd", "abczzz", "abc\0"] {
            let e = encode(s);
            assert!(e >= lo && e <= hi, "{s:?} not in prefix interval");
        }
        for s in ["abd", "ab", "xabc", "ABC"] {
            let e = encode(s);
            assert!(!(e >= lo && e <= hi), "{s:?} wrongly in prefix interval");
        }
    }

    #[test]
    fn long_prefix_degenerates_to_exact() {
        let (lo, hi) = prefix("abcdefgh");
        assert_eq!(lo, hi);
        assert_eq!(lo, encode("abcdefgh"));
    }

    #[test]
    fn suffix_matches_in_reversed_space() {
        let (lo, hi) = suffix(".com");
        for s in ["example.com", "a.com", ".com"] {
            let e = encode_reversed(s);
            assert!(e >= lo && e <= hi, "{s:?} not matched by suffix");
        }
        for s in ["example.org", "comx", "com."] {
            let e = encode_reversed(s);
            assert!(!(e >= lo && e <= hi), "{s:?} wrongly matched");
        }
    }

    #[test]
    fn lexicographic_range() {
        let (lo, hi) = range("apple", "banana");
        assert!(encode("avocado") >= lo && encode("avocado") <= hi);
        assert!(encode("cherry") > hi);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_range_panics() {
        range("b", "a");
    }

    proptest! {
        #[test]
        fn prop_order_preserved(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            // Lexicographic order on the significant prefix must map to
            // numeric order.
            let ta: &str = &a[..a.len().min(SIGNIFICANT_BYTES)];
            let tb: &str = &b[..b.len().min(SIGNIFICANT_BYTES)];
            // Compare padded significant prefixes byte-wise.
            let mut pa = [0u8; SIGNIFICANT_BYTES];
            let mut pb = [0u8; SIGNIFICANT_BYTES];
            pa[..ta.len()].copy_from_slice(ta.as_bytes());
            pb[..tb.len()].copy_from_slice(tb.as_bytes());
            match pa.cmp(&pb) {
                std::cmp::Ordering::Less => prop_assert!(encode(&a) < encode(&b)),
                std::cmp::Ordering::Greater => prop_assert!(encode(&a) > encode(&b)),
                std::cmp::Ordering::Equal => prop_assert_eq!(encode(&a), encode(&b)),
            }
        }

        #[test]
        fn prop_prefix_range_sound(p in "[a-z]{1,5}", ext in "[a-z]{0,8}") {
            let s = format!("{p}{ext}");
            let (lo, hi) = prefix(&p);
            let e = encode(&s);
            prop_assert!(e >= lo && e <= hi, "{} not in prefix({}) range", s, p);
        }
    }
}
