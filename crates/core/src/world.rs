//! The shared simulation world: metric sinks, the ground-truth oracle and
//! the publish script.

use crate::metrics::Metrics;
use crate::model::{Event, SchemeId, SubId, Subscription};
use hypersub_lph::Point;

/// Ground truth: every subscription in the system, for computing expected
/// match sets (tests) and the matched-percentage metric (Figure 2a/5a).
#[derive(Debug, Default)]
pub struct Oracle {
    subs: Vec<(SchemeId, SubId, Subscription)>,
}

impl Oracle {
    /// Registers a subscription.
    pub fn add(&mut self, scheme: SchemeId, subid: SubId, sub: Subscription) {
        self.subs.push((scheme, subid, sub));
    }

    /// Removes a subscription (unsubscribe). Returns whether it existed.
    pub fn remove(&mut self, subid: SubId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|(_, id, _)| *id != subid);
        self.subs.len() != before
    }

    /// Total subscriptions across all schemes.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when no subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The exact set of subscriptions matching `point` in `scheme`.
    pub fn expected_matches(&self, scheme: SchemeId, point: &Point) -> Vec<SubId> {
        let ev = Event {
            id: 0,
            point: point.clone(),
        };
        let mut out: Vec<SubId> = self
            .subs
            .iter()
            .filter(|(s, _, sub)| *s == scheme && sub.matches(&ev))
            .map(|(_, id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }
}

/// The shared world threaded through the simulator.
#[derive(Debug, Default)]
pub struct HyperWorld {
    /// Metric sink.
    pub metrics: Metrics,
    /// Ground-truth subscription registry.
    pub oracle: Oracle,
    /// Scripted events, consumed by publish timers (indexed by the timer
    /// token's low bits).
    pub script: Vec<Option<(SchemeId, Event)>>,
}

impl HyperWorld {
    /// Takes scripted event `idx` (panics if fired twice — each scripted
    /// publish must run exactly once).
    pub fn take_scripted(&mut self, idx: usize) -> (SchemeId, Event) {
        self.script[idx]
            .take()
            .expect("scripted event fired twice or never scheduled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_lph::{ContentSpace, Rect};

    #[test]
    fn oracle_matches_brute_force() {
        let space = ContentSpace::uniform(2, 0.0, 10.0);
        let mut o = Oracle::default();
        let sub_a = Subscription::new(Rect::new(vec![0.0, 0.0], vec![5.0, 5.0]));
        let sub_b = Subscription::new(Rect::new(vec![4.0, 4.0], vec![9.0, 9.0]));
        let _ = space;
        o.add(0, SubId { nid: 1, iid: 1 }, sub_a);
        o.add(0, SubId { nid: 2, iid: 1 }, sub_b.clone());
        o.add(1, SubId { nid: 3, iid: 1 }, sub_b);
        let m = o.expected_matches(0, &Point(vec![4.5, 4.5]));
        assert_eq!(m.len(), 2);
        let m = o.expected_matches(0, &Point(vec![8.0, 8.0]));
        assert_eq!(m, vec![SubId { nid: 2, iid: 1 }]);
        // Scheme 1 is separate.
        let m = o.expected_matches(1, &Point(vec![8.0, 8.0]));
        assert_eq!(m, vec![SubId { nid: 3, iid: 1 }]);
    }

    #[test]
    fn script_take_once() {
        let mut w = HyperWorld::default();
        w.script.push(Some((
            0,
            Event {
                id: 7,
                point: Point(vec![1.0]),
            },
        )));
        let (s, e) = w.take_scripted(0);
        assert_eq!(s, 0);
        assert_eq!(e.id, 7);
    }

    #[test]
    #[should_panic(expected = "fired twice")]
    fn script_double_take_panics() {
        let mut w = HyperWorld::default();
        w.script.push(None);
        w.take_scripted(0);
    }
}
