//! The shared simulation world: metric sinks, the ground-truth oracle and
//! the publish script.

use crate::metrics::Metrics;
use crate::model::{Event, SchemeId, SubId, Subscription};
use hypersub_lph::Point;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// Ground truth: every subscription in the system, for computing expected
/// match sets (tests) and the matched-percentage metric (Figure 2a/5a).
#[derive(Debug, Default)]
pub struct Oracle {
    subs: Vec<(SchemeId, SubId, Subscription)>,
    /// Lazy bucketing of `subs` by their leading attribute intervals,
    /// rebuilt on demand after any add/remove. The oracle is
    /// consulted once per published event; without this the linear scan
    /// over every subscription dominated the publish hot path.
    grid: Option<OracleGrid>,
}

/// Buckets subscription indices by their intervals on the first one or
/// two attributes (two when every registered rect has ≥ 2 dimensions). A
/// point query reads exactly one cell, so a subscription registered into
/// several cells can never produce a duplicate candidate.
#[derive(Debug)]
struct OracleGrid {
    /// Cells per axis; `dims` axes are active, the rest are single-cell.
    dims: usize,
    lo: [f64; 2],
    width: [f64; 2],
    cells: Vec<Vec<u32>>,
}

impl OracleGrid {
    /// Cells per active axis (32² = 1024 cells in the 2-D case).
    const AXIS_CELLS: usize = 32;

    fn axis(subs: &[(SchemeId, SubId, Subscription)], d: usize) -> (f64, f64) {
        let lo = subs
            .iter()
            .map(|(_, _, s)| s.rect.lo[d])
            .fold(f64::INFINITY, f64::min);
        let hi = subs
            .iter()
            .map(|(_, _, s)| s.rect.hi[d])
            .fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        // Degenerate spans (no subs, one value) collapse to one bucket.
        let width = if span.is_finite() && span > 0.0 {
            span / Self::AXIS_CELLS as f64
        } else {
            1.0
        };
        (if lo.is_finite() { lo } else { 0.0 }, width)
    }

    fn build(subs: &[(SchemeId, SubId, Subscription)]) -> Self {
        let min_rect_dims = subs
            .iter()
            .map(|(_, _, s)| s.rect.lo.len())
            .min()
            .unwrap_or(0);
        let dims = min_rect_dims.min(2);
        let mut lo = [0.0; 2];
        let mut width = [1.0; 2];
        let mut n = [1usize; 2];
        for d in 0..dims {
            let (l, w) = Self::axis(subs, d);
            lo[d] = l;
            width[d] = w;
            n[d] = Self::AXIS_CELLS;
        }
        let clamp = |x: f64, d: usize| {
            // Negative-to-usize casts saturate to 0, clamping
            // out-of-range coordinates to the edge cells.
            (((x - lo[d]) / width[d]) as usize).min(n[d] - 1)
        };
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); n[0] * n[1]];
        for (i, (_, _, s)) in subs.iter().enumerate() {
            let i = u32::try_from(i).expect("oracle sub index exceeds u32");
            let (x0, x1) = if dims >= 1 {
                (clamp(s.rect.lo[0], 0), clamp(s.rect.hi[0], 0))
            } else {
                (0, 0)
            };
            let (y0, y1) = if dims == 2 {
                (clamp(s.rect.lo[1], 1), clamp(s.rect.hi[1], 1))
            } else {
                (0, 0)
            };
            for x in x0..=x1 {
                for cell in cells.iter_mut().skip(x * n[1] + y0).take(y1 - y0 + 1) {
                    cell.push(i);
                }
            }
        }
        Self {
            dims,
            lo,
            width,
            cells,
        }
    }

    /// The candidate cell for `point`, or `None` when the point has fewer
    /// dimensions than the grid axes (caller falls back to the scan).
    fn cell(&self, point: &Point) -> Option<&[u32]> {
        if point.0.len() < self.dims {
            return None;
        }
        if self.dims == 0 {
            return Some(&self.cells[0]);
        }
        let c = |x: f64, d: usize| ((x - self.lo[d]) / self.width[d]) as usize;
        let x = c(point.0[0], 0).min(Self::AXIS_CELLS - 1);
        let y = if self.dims == 2 {
            c(point.0[1], 1).min(Self::AXIS_CELLS - 1)
        } else {
            0
        };
        let ny = if self.dims == 2 { Self::AXIS_CELLS } else { 1 };
        Some(&self.cells[x * ny + y])
    }
}

impl Oracle {
    /// Registers a subscription.
    pub fn add(&mut self, scheme: SchemeId, subid: SubId, sub: Subscription) {
        self.subs.push((scheme, subid, sub));
        self.grid = None;
    }

    /// Removes a subscription (unsubscribe). Returns whether it existed.
    pub fn remove(&mut self, subid: SubId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|(_, id, _)| *id != subid);
        self.grid = None;
        self.subs.len() != before
    }

    /// Total subscriptions across all schemes.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when no subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The exact set of subscriptions matching `point` in `scheme`.
    pub fn expected_matches(&self, scheme: SchemeId, point: &Point) -> Vec<SubId> {
        let ev = Event {
            id: 0,
            point: point.clone(),
        };
        let mut out: Vec<SubId> = self
            .subs
            .iter()
            .filter(|(s, _, sub)| *s == scheme && sub.matches(&ev))
            .map(|(_, id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    /// `expected_matches(..).len()` without materializing the id list:
    /// candidates come from the grid cell covering `point`
    /// and each is verified with the exact containment test, so the count
    /// is identical to the linear scan's. `&mut self` only because the
    /// grid builds lazily on first use.
    pub fn expected_count(&mut self, scheme: SchemeId, point: &Point) -> usize {
        if self.grid.is_none() {
            self.grid = Some(OracleGrid::build(&self.subs));
        }
        let grid = self.grid.as_ref().expect("just built");
        match grid.cell(point) {
            Some(cell) => cell
                .iter()
                .filter(|&&i| {
                    let (s, _, sub) = &self.subs[i as usize];
                    *s == scheme && sub.rect.contains_point(point)
                })
                .count(),
            None => self.expected_matches(scheme, point).len(),
        }
    }
}

/// The shared world threaded through the simulator.
#[derive(Debug, Default)]
pub struct HyperWorld {
    /// Metric sink.
    pub metrics: Metrics,
    /// Ground-truth subscription registry.
    pub oracle: Oracle,
    /// Scripted events, consumed by publish timers (indexed by the timer
    /// token's low bits).
    pub script: Vec<Option<(SchemeId, Event)>>,
}

impl HyperWorld {
    /// Takes scripted event `idx` (panics if fired twice — each scripted
    /// publish must run exactly once).
    pub fn take_scripted(&mut self, idx: usize) -> (SchemeId, Event) {
        self.script[idx]
            .take()
            .expect("scripted event fired twice or never scheduled")
    }
}

impl Encode for Oracle {
    fn encode(&self, w: &mut Writer) {
        // Registration order matters (`expected_count` indexes into it);
        // the lazy grid is a derived cache and rebuilds on demand.
        w.put_u64(self.subs.len() as u64);
        for (scheme, subid, sub) in &self.subs {
            w.put_u32(*scheme);
            subid.encode(w);
            sub.encode(w);
        }
    }
}

impl Decode for Oracle {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = r.take_u64()? as usize;
        let mut subs = Vec::with_capacity(n);
        for _ in 0..n {
            let scheme = r.take_u32()?;
            let subid = SubId::decode(r)?;
            let sub = Subscription::decode(r)?;
            subs.push((scheme, subid, sub));
        }
        Ok(Oracle { subs, grid: None })
    }
}

impl Encode for HyperWorld {
    fn encode(&self, w: &mut Writer) {
        self.metrics.encode(w);
        self.oracle.encode(w);
        w.put_u64(self.script.len() as u64);
        for slot in &self.script {
            match slot {
                Some((scheme, event)) => {
                    w.put_u8(1);
                    w.put_u32(*scheme);
                    event.encode(w);
                }
                None => w.put_u8(0),
            }
        }
    }
}

impl Decode for HyperWorld {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let metrics = Metrics::decode(r)?;
        let oracle = Oracle::decode(r)?;
        let n = r.take_u64()? as usize;
        let mut script = Vec::with_capacity(n);
        for _ in 0..n {
            script.push(match r.take_u8()? {
                0 => None,
                1 => Some((r.take_u32()?, Event::decode(r)?)),
                _ => return Err(Error::InvalidValue("script slot tag")),
            });
        }
        Ok(HyperWorld {
            metrics,
            oracle,
            script,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersub_lph::{ContentSpace, Rect};

    #[test]
    fn oracle_matches_brute_force() {
        let space = ContentSpace::uniform(2, 0.0, 10.0);
        let mut o = Oracle::default();
        let sub_a = Subscription::new(Rect::new(vec![0.0, 0.0], vec![5.0, 5.0]));
        let sub_b = Subscription::new(Rect::new(vec![4.0, 4.0], vec![9.0, 9.0]));
        let _ = space;
        o.add(0, SubId { nid: 1, iid: 1 }, sub_a);
        o.add(0, SubId { nid: 2, iid: 1 }, sub_b.clone());
        o.add(1, SubId { nid: 3, iid: 1 }, sub_b);
        let m = o.expected_matches(0, &Point(vec![4.5, 4.5]));
        assert_eq!(m.len(), 2);
        let m = o.expected_matches(0, &Point(vec![8.0, 8.0]));
        assert_eq!(m, vec![SubId { nid: 2, iid: 1 }]);
        // Scheme 1 is separate.
        let m = o.expected_matches(1, &Point(vec![8.0, 8.0]));
        assert_eq!(m, vec![SubId { nid: 3, iid: 1 }]);
    }

    #[test]
    fn expected_count_equals_linear_scan() {
        let mut o = Oracle::default();
        // Empty oracle (degenerate grid span).
        assert_eq!(o.expected_count(0, &Point(vec![3.0, 3.0])), 0);
        for i in 0..50u64 {
            let x = (i * 7 % 100) as f64;
            let y = (i * 13 % 100) as f64;
            o.add(
                (i % 2) as SchemeId,
                SubId { nid: i, iid: 1 },
                Subscription::new(Rect::new(
                    vec![x * 0.9, y * 0.9],
                    vec![(x + 5.0).min(100.0), (y + 9.0).min(100.0)],
                )),
            );
        }
        let probe = |o: &mut Oracle| {
            for px in [0.0, 13.0, 49.5, 77.0, 100.0, 120.0, -5.0] {
                for py in [0.0, 42.0, 88.8] {
                    let p = Point(vec![px, py]);
                    for scheme in 0..2 {
                        assert_eq!(
                            o.expected_count(scheme, &p),
                            o.expected_matches(scheme, &p).len(),
                            "scheme {scheme} point {px},{py}"
                        );
                    }
                }
            }
        };
        probe(&mut o);
        // Mutations invalidate the grid; counts must stay exact after.
        assert!(o.remove(SubId { nid: 7, iid: 1 }));
        o.add(
            0,
            SubId { nid: 99, iid: 1 },
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        );
        probe(&mut o);
    }

    #[test]
    fn script_take_once() {
        let mut w = HyperWorld::default();
        w.script.push(Some((
            0,
            Event {
                id: 7,
                point: Point(vec![1.0]),
            },
        )));
        let (s, e) = w.take_scripted(0);
        assert_eq!(s, 0);
        assert_eq!(e.id, 7);
    }

    #[test]
    #[should_panic(expected = "fired twice")]
    fn script_double_take_panics() {
        let mut w = HyperWorld::default();
        w.script.push(None);
        w.take_scripted(0);
    }
}
