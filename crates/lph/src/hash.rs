//! Algorithm 1 — the locality-preserving hash function.
//!
//! Given a subscription (hypercuboid) the function recursively subdivides
//! the content space until no single β-part of the current splitting
//! dimension completely covers the subscription's range on that dimension;
//! the zone reached at that point is "the smallest content zone which can
//! completely cover the range" (§3.2). Given an event (point) the
//! subdivision always succeeds, so events reach maximum-level (leaf) zones.

use crate::space::{ContentSpace, Point, Rect};
use crate::zone::{ZoneCode, ZoneParams};

/// Which β-part of `[lo, hi]` contains value `v`, using half-open cells
/// `[lo + p·w, lo + (p+1)·w)` with the final cell closed at `hi`.
fn part_of(lo: f64, hi: f64, base: u64, v: f64) -> u64 {
    debug_assert!(v >= lo && v <= hi, "value {v} outside [{lo}, {hi}]");
    let w = (hi - lo) / base as f64;
    let p = ((v - lo) / w) as u64;
    p.min(base - 1)
}

/// Maps an event point to its maximum-level content zone (Algorithm 1 for
/// points; the loop never breaks because a point always lies in exactly
/// one subrange).
///
/// # Panics
/// Panics if the point lies outside the space.
pub fn lph_point(params: &ZoneParams, space: &ContentSpace, point: &Point) -> ZoneCode {
    assert!(
        space.contains_point(point),
        "event point outside content space"
    );
    let d = space.dims();
    let mut rect = space.bounding_rect();
    let mut zone = ZoneCode::ROOT;
    for i in 0..params.max_level() {
        let j = i as usize % d;
        let p = part_of(rect.lo[j], rect.hi[j], params.base(), point.0[j]);
        let w = (rect.hi[j] - rect.lo[j]) / params.base() as f64;
        rect.lo[j] += w * p as f64;
        rect.hi[j] = rect.lo[j] + w;
        zone = zone.child(params, p);
    }
    zone
}

/// Maps a subscription hypercuboid to the smallest zone completely
/// covering it (Algorithm 1). The subdivision on dimension `j` keeps part
/// `p` only when `[r.lo[j], r.hi[j]]` falls entirely inside that part;
/// a range touching an internal cell boundary from below straddles (its
/// upper endpoint belongs to the next half-open cell) and stops the
/// descent, mirroring the closed-interval semantics of matching.
///
/// # Panics
/// Panics if the rect is not fully inside the space.
pub fn lph_rect(params: &ZoneParams, space: &ContentSpace, r: &Rect) -> ZoneCode {
    assert!(
        space.bounding_rect().contains_rect(r),
        "subscription rect outside content space"
    );
    let d = space.dims();
    let mut rect = space.bounding_rect();
    let mut zone = ZoneCode::ROOT;
    for i in 0..params.max_level() {
        let j = i as usize % d;
        let p_lo = part_of(rect.lo[j], rect.hi[j], params.base(), r.lo[j]);
        let p_hi = part_of(rect.lo[j], rect.hi[j], params.base(), r.hi[j]);
        if p_lo != p_hi {
            break; // straddles a cell boundary: this zone is the answer
        }
        let w = (rect.hi[j] - rect.lo[j]) / params.base() as f64;
        rect.lo[j] += w * p_lo as f64;
        rect.hi[j] = rect.lo[j] + w;
        zone = zone.child(params, p_lo);
    }
    zone
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn space2() -> ContentSpace {
        ContentSpace::uniform(2, 0.0, 16.0)
    }

    #[test]
    fn point_reaches_max_level() {
        let params = ZoneParams::base2_level20();
        let z = lph_point(&params, &space2(), &Point(vec![3.7, 12.1]));
        assert_eq!(z.level, 20);
        assert!(z
            .extent(&params, &space2())
            .contains_point(&Point(vec![3.7, 12.1])));
    }

    #[test]
    fn point_at_domain_top_is_in_last_cell() {
        let params = ZoneParams::base4_level10();
        let z = lph_point(&params, &space2(), &Point(vec![16.0, 16.0]));
        assert_eq!(z.level, 10);
        let e = z.extent(&params, &space2());
        assert_eq!(e.hi, vec![16.0, 16.0]);
    }

    #[test]
    fn rect_zone_covers_rect() {
        let params = ZoneParams::base2_level20();
        let r = Rect::new(vec![1.0, 9.0], vec![2.5, 10.0]);
        let z = lph_rect(&params, &space2(), &r);
        assert!(z.extent(&params, &space2()).contains_rect(&r));
    }

    #[test]
    fn straddling_rect_stays_at_root() {
        let params = ZoneParams::base2_level20();
        // Straddles the first split (x = 8).
        let r = Rect::new(vec![7.9, 0.0], vec![8.1, 1.0]);
        let z = lph_rect(&params, &space2(), &r);
        assert_eq!(z, ZoneCode::ROOT);
    }

    #[test]
    fn tight_rect_descends_deep() {
        let params = ZoneParams::base2_level20();
        let r = Rect::new(vec![0.001, 0.001], vec![0.002, 0.002]);
        let z = lph_rect(&params, &space2(), &r);
        assert!(z.level >= 10, "tiny rect should map deep, got {}", z.level);
    }

    #[test]
    fn full_domain_rect_maps_to_root() {
        let params = ZoneParams::base4_level10();
        let r = space2().bounding_rect();
        assert_eq!(lph_rect(&params, &space2(), &r), ZoneCode::ROOT);
    }

    #[test]
    fn boundary_touching_rect_stops_at_straddle() {
        let params = ZoneParams::base2_level20();
        // Upper endpoint exactly on the first split boundary: the value 8.0
        // belongs to the upper half-open cell, so the rect straddles.
        let r = Rect::new(vec![7.0, 0.0], vec![8.0, 1.0]);
        assert_eq!(lph_rect(&params, &space2(), &r), ZoneCode::ROOT);
    }

    #[test]
    fn zone_of_point_is_descendant_of_zone_of_covering_rect() {
        let params = ZoneParams::base2_level20();
        let space = space2();
        let r = Rect::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        let zr = lph_rect(&params, &space, &r);
        let zp = lph_point(&params, &space, &Point(vec![2.5, 2.5]));
        assert!(zr.is_ancestor_of(&params, &zp));
    }

    proptest! {
        #[test]
        fn prop_point_zone_contains_point(
            x in 0.0f64..=16.0,
            y in 0.0f64..=16.0,
            base_bits in 1u8..=2,
        ) {
            let params = ZoneParams::new(base_bits, 20);
            let space = space2();
            let p = Point(vec![x, y]);
            let z = lph_point(&params, &space, &p);
            prop_assert_eq!(z.level, params.max_level());
            prop_assert!(z.extent(&params, &space).contains_point(&p));
        }

        #[test]
        fn prop_rect_zone_covers_rect(
            x0 in 0.0f64..16.0,
            y0 in 0.0f64..16.0,
            wx in 0.0f64..4.0,
            wy in 0.0f64..4.0,
            base_bits in 1u8..=2,
        ) {
            let params = ZoneParams::new(base_bits, 20);
            let space = space2();
            let r = Rect::new(
                vec![x0, y0],
                vec![(x0 + wx).min(16.0), (y0 + wy).min(16.0)],
            );
            let z = lph_rect(&params, &space, &r);
            prop_assert!(z.extent(&params, &space).contains_rect(&r));
        }

        #[test]
        fn prop_rect_zone_is_smallest(
            x0 in 0.0f64..16.0,
            y0 in 0.0f64..16.0,
            wx in 0.0f64..4.0,
            wy in 0.0f64..4.0,
        ) {
            let params = ZoneParams::base2_level20();
            let space = space2();
            let r = Rect::new(
                vec![x0, y0],
                vec![(x0 + wx).min(16.0), (y0 + wy).min(16.0)],
            );
            let z = lph_rect(&params, &space, &r);
            // No child of z covers r (otherwise z wouldn't be smallest).
            for c in z.children(&params) {
                prop_assert!(!c.extent(&params, &space).contains_rect(&r));
            }
        }

        #[test]
        fn prop_events_in_rect_map_under_rect_zone(
            x0 in 0.0f64..15.0,
            y0 in 0.0f64..15.0,
            px in 0.0f64..=1.0,
            py in 0.0f64..=1.0,
        ) {
            let params = ZoneParams::base2_level20();
            let space = space2();
            let r = Rect::new(vec![x0, y0], vec![x0 + 1.0, y0 + 1.0]);
            let z = lph_rect(&params, &space, &r);
            let point = Point(vec![x0 + px, y0 + py]);
            let zp = lph_point(&params, &space, &point);
            // Locality: any event inside the subscription's rect maps to a
            // zone under the subscription's zone.
            prop_assert!(z.is_ancestor_of(&params, &zp));
        }
    }
}
