//! Locality-preserving hashing (LPH) — the key component of HyperSub.
//!
//! §3.2 of the paper: a d-dimensional content space Ω is recursively
//! subdivided, k-d-tree style, into *content zones*. The i-th division
//! splits dimension `i mod d` into β equal parts (β = 2^b is the base of
//! the key digits); a zone at level `l` is identified by an `l`-digit
//! β-based code, and is assigned the 64-bit Chord key obtained by padding
//! the code with (β−1)-digits on the right:
//!
//! ```text
//! key(cz) = (code(cz) + 1) · β^(m − level(cz)) − 1
//! ```
//!
//! A *subscription* (a hypercuboid of interest) maps to the smallest zone
//! that completely covers it; an *event* (a point) maps to a maximum-level
//! zone. Nearby data therefore lands on the same or neighboring keys,
//! which is what makes installation and publication cheap.
//!
//! The paper's simulations use 64-bit identifiers with the first 20 bits
//! for zone codes: base 2 → max level 20, base 4 → max level 10 (the
//! "Base 2, level 20" / "Base 4, level 10" configurations of Figure 2).

pub mod hash;
pub mod rotation;
pub mod space;
pub mod zone;

pub use hash::{lph_point, lph_rect};
pub use rotation::rotation_offset;
pub use space::{ContentSpace, Point, Rect};
pub use zone::{ZoneCode, ZoneParams};
