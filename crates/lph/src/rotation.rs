//! Zone mapping rotation (§4, "Zone Mapping Rotation").
//!
//! HyperSub supports many pub/sub schemes at once. Zones with identical
//! codes for different schemes would hash to identical keys and pile up on
//! the same nodes (the root zone of *every* scheme maps to key
//! `β^m − 1`!). Each scheme/subscheme is therefore given "a random
//! rotation offset φ", derived by hashing its name with a consistent hash
//! function, and zone `cz` maps to `successor(key(cz) + φ)` — arithmetic
//! modulo 2^64, i.e. `wrapping_add`.

/// Derives the rotation offset φ for a scheme/subscheme name.
///
/// FNV-1a over the name bytes, finalized with a 64-bit avalanche mix —
/// deterministic across runs and platforms, which stands in for the
/// paper's "consistent hash function, e.g. SHA".
pub fn rotation_offset(scheme_name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in scheme_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64-style finalizer for avalanche.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Applies a rotation offset to a zone key (modulo-2^64 addition).
pub fn rotate_key(key: u64, offset: u64) -> u64 {
    key.wrapping_add(offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(rotation_offset("stock"), rotation_offset("stock"));
    }

    #[test]
    fn different_names_differ() {
        let names = ["stock", "weather", "auction", "sensor", "s", ""];
        let offsets: Vec<u64> = names.iter().map(|n| rotation_offset(n)).collect();
        for i in 0..offsets.len() {
            for j in (i + 1)..offsets.len() {
                assert_ne!(offsets[i], offsets[j], "{} vs {}", names[i], names[j]);
            }
        }
    }

    #[test]
    fn rotation_is_modular() {
        assert_eq!(rotate_key(u64::MAX, 1), 0);
        assert_eq!(rotate_key(5, 10), 15);
    }

    #[test]
    fn rotation_spreads_identical_keys() {
        // Root zones of different schemes (all key u64::MAX) must spread.
        let k1 = rotate_key(u64::MAX, rotation_offset("scheme-a"));
        let k2 = rotate_key(u64::MAX, rotation_offset("scheme-b"));
        assert_ne!(k1, k2);
    }
}
