//! Content spaces, points and hypercuboids.
//!
//! §3.1: "HyperSub models the content space of each pub/sub scheme as a
//! multi-dimensional space, where each dimension represents an attribute.
//! An event can be described as a point in the space, while a subscription
//! is defined as a hypercuboid. An event matches a subscription if it is
//! within the corresponding hypercuboid."
//!
//! Intervals are *closed* on both ends: a subscription `[lo, hi]` matches
//! events with values equal to either bound (prefix/suffix string
//! predicates, which the paper converts to numeric ranges, produce exactly
//! such closed ranges).

use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use serde::{Deserialize, Serialize};

/// The domain of one attribute: the closed interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Domain {
    /// Creates a domain, validating `lo < hi` and finiteness.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid domain [{lo}, {hi}]"
        );
        Self { lo, hi }
    }

    /// Domain width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A d-dimensional content space Ω: one [`Domain`] per attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentSpace {
    dims: Vec<Domain>,
}

impl ContentSpace {
    /// Creates a space from per-attribute domains.
    pub fn new(dims: Vec<Domain>) -> Self {
        assert!(!dims.is_empty(), "content space needs at least 1 dimension");
        Self { dims }
    }

    /// A space of `d` identical `[lo, hi]` dimensions.
    pub fn uniform(d: usize, lo: f64, hi: f64) -> Self {
        Self::new(vec![Domain::new(lo, hi); d])
    }

    /// Number of dimensions (attributes).
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// The domain of dimension `j`.
    pub fn domain(&self, j: usize) -> Domain {
        self.dims[j]
    }

    /// The whole space as a [`Rect`].
    pub fn bounding_rect(&self) -> Rect {
        Rect {
            lo: self.dims.iter().map(|d| d.lo).collect(),
            hi: self.dims.iter().map(|d| d.hi).collect(),
        }
    }

    /// Does `p` lie inside the space (all coordinates within domain)?
    pub fn contains_point(&self, p: &Point) -> bool {
        p.0.len() == self.dims() && self.bounding_rect().contains_point(p)
    }
}

/// An event's position: one value per attribute (§3.1: "an event is a set
/// of equalities on all attributes in the scheme").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point(pub Vec<f64>);

impl Point {
    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        self.0.len()
    }
}

/// A closed axis-aligned hypercuboid `[lo_j, hi_j]` per dimension.
///
/// Degenerate rects (`lo_j == hi_j` on some axes) are legal: they arise as
/// equality predicates and as boundary-touching intersections during
/// summary-filter subdivision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Per-dimension lower bounds.
    pub lo: Vec<f64>,
    /// Per-dimension upper bounds.
    pub hi: Vec<f64>,
}

impl Rect {
    /// Creates a rect, validating `lo_j <= hi_j` everywhere.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "rect bound arity mismatch");
        assert!(!lo.is_empty(), "rect needs at least one dimension");
        for j in 0..lo.len() {
            assert!(
                lo[j].is_finite() && hi[j].is_finite() && lo[j] <= hi[j],
                "invalid rect on dim {j}: [{}, {}]",
                lo[j],
                hi[j]
            );
        }
        Self { lo, hi }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Is `p` inside (closed bounds)?
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(p.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(&p.0)
            .all(|((&lo, &hi), &v)| lo <= v && v <= hi)
    }

    /// Does this rect completely cover `other`?
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&slo, &shi), (&olo, &ohi))| slo <= olo && ohi <= shi)
    }

    /// Closed intersection, or `None` when disjoint. Touching boundaries
    /// yield degenerate (zero-width) rects — deliberately, so an event
    /// sitting exactly on a zone boundary still reaches subscriptions in
    /// the neighboring zone (see crate docs on closed semantics).
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        debug_assert_eq!(other.dims(), self.dims());
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for j in 0..self.dims() {
            let l = self.lo[j].max(other.lo[j]);
            let h = self.hi[j].min(other.hi[j]);
            if l > h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(Rect { lo, hi })
    }

    /// Smallest rect covering both — the summary-filter update operation
    /// (§3.3: the summary filter is "the smallest hypercuboid that can
    /// exactly cover all subscriptions registered in cz").
    pub fn cover(&self, other: &Rect) -> Rect {
        debug_assert_eq!(other.dims(), self.dims());
        Rect {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(&a, &b)| a.min(b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Hypervolume (0 for degenerate rects).
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&lo, &hi)| hi - lo)
            .product()
    }
}

// Geometry codecs round-trip raw IEEE-754 bits (see the snapshot crate's
// f64 rule), so decoded values are bit-identical and re-validation of the
// constructor invariants is unnecessary for data we wrote ourselves; the
// envelope checksum covers corruption.
impl Encode for Domain {
    fn encode(&self, w: &mut Writer) {
        self.lo.encode(w);
        self.hi.encode(w);
    }
}

impl Decode for Domain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(Domain {
            lo: f64::decode(r)?,
            hi: f64::decode(r)?,
        })
    }
}

impl Encode for ContentSpace {
    fn encode(&self, w: &mut Writer) {
        self.dims.encode(w);
    }
}

impl Decode for ContentSpace {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let dims = Vec::<Domain>::decode(r)?;
        if dims.is_empty() {
            return Err(Error::InvalidValue("empty content space"));
        }
        Ok(ContentSpace { dims })
    }
}

impl Encode for Point {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for Point {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(Point(Vec::<f64>::decode(r)?))
    }
}

impl Encode for Rect {
    fn encode(&self, w: &mut Writer) {
        self.lo.encode(w);
        self.hi.encode(w);
    }
}

impl Decode for Rect {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let lo = Vec::<f64>::decode(r)?;
        let hi = Vec::<f64>::decode(r)?;
        if lo.len() != hi.len() {
            return Err(Error::InvalidValue("rect bound arity"));
        }
        Ok(Rect { lo, hi })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn point_containment_closed() {
        let rect = r(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(rect.contains_point(&Point(vec![0.0, 1.0])));
        assert!(rect.contains_point(&Point(vec![0.5, 0.5])));
        assert!(!rect.contains_point(&Point(vec![1.0001, 0.5])));
    }

    #[test]
    fn rect_containment() {
        let big = r(&[0.0, 0.0], &[10.0, 10.0]);
        let small = r(&[2.0, 3.0], &[4.0, 5.0]);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.contains_rect(&big), "containment is reflexive");
    }

    #[test]
    fn intersection_including_touching() {
        let a = r(&[0.0], &[5.0]);
        let b = r(&[5.0], &[9.0]);
        let touch = a.intersect(&b).expect("touching rects intersect");
        assert_eq!(touch, r(&[5.0], &[5.0]));
        let c = r(&[5.1], &[9.0]);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn cover_is_smallest_enclosing() {
        let a = r(&[0.0, 4.0], &[1.0, 5.0]);
        let b = r(&[3.0, 0.0], &[4.0, 1.0]);
        let c = a.cover(&b);
        assert_eq!(c, r(&[0.0, 0.0], &[4.0, 5.0]));
        assert!(c.contains_rect(&a) && c.contains_rect(&b));
    }

    #[test]
    fn volume() {
        assert_eq!(r(&[0.0, 0.0], &[2.0, 3.0]).volume(), 6.0);
        assert_eq!(r(&[1.0], &[1.0]).volume(), 0.0);
    }

    #[test]
    fn space_accessors() {
        let s = ContentSpace::uniform(4, 0.0, 10_000.0);
        assert_eq!(s.dims(), 4);
        assert_eq!(s.domain(2).width(), 10_000.0);
        assert!(s.contains_point(&Point(vec![0.0, 1.0, 9_999.0, 10_000.0])));
        assert!(!s.contains_point(&Point(vec![0.0, 1.0, 9_999.0, 10_000.1])));
    }

    #[test]
    #[should_panic(expected = "invalid rect")]
    fn inverted_rect_panics() {
        r(&[2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid domain")]
    fn empty_domain_panics() {
        Domain::new(3.0, 3.0);
    }
}
