//! Content-zone codes and the zone tree.
//!
//! Zones form a β-ary tree over the content space. A zone is identified by
//! `(code, level)`: `level` base-β digits, generated as in Figure 1 of the
//! paper — the digit appended at division `i` is the index `p` of the
//! subrange picked on the splitting dimension `i mod d`.

use crate::space::{ContentSpace, Rect};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use serde::{Deserialize, Serialize};

/// Identifier-space geometry: digit base and how much of the 64-bit key is
/// available for zone codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneParams {
    /// Bits per digit (`b`, so the base is β = 2^b).
    pub base_bits: u8,
    /// Total bits reserved for zone codes ("the first 20 bits" in §5.1).
    pub zone_bits: u8,
}

impl ZoneParams {
    /// Creates parameters; `zone_bits` must be a multiple of `base_bits`
    /// and fit in a 64-bit key.
    pub fn new(base_bits: u8, zone_bits: u8) -> Self {
        assert!((1..=16).contains(&base_bits), "base bits out of range");
        assert!(
            zone_bits >= base_bits && zone_bits <= 63,
            "zone bits out of range"
        );
        assert_eq!(
            zone_bits % base_bits,
            0,
            "zone bits must be a whole number of digits"
        );
        Self {
            base_bits,
            zone_bits,
        }
    }

    /// The paper's default: base 2 (b = 1), 20 zone bits → max level 20.
    pub fn base2_level20() -> Self {
        Self::new(1, 20)
    }

    /// The paper's alternative: base 4 (b = 2), 20 zone bits → max level 10.
    pub fn base4_level10() -> Self {
        Self::new(2, 20)
    }

    /// Digit base β.
    pub fn base(&self) -> u64 {
        1u64 << self.base_bits
    }

    /// Maximum zone level (digits available).
    pub fn max_level(&self) -> u8 {
        self.zone_bits / self.base_bits
    }
}

/// A content zone: `level` base-β digits packed into `code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZoneCode {
    /// Packed digits (most significant digit = first division).
    pub code: u64,
    /// Number of digits.
    pub level: u8,
}

impl ZoneCode {
    /// The root zone (whole content space).
    pub const ROOT: ZoneCode = ZoneCode { code: 0, level: 0 };

    /// The child obtained by appending digit `p`.
    pub fn child(&self, params: &ZoneParams, p: u64) -> ZoneCode {
        assert!(self.level < params.max_level(), "cannot split a leaf zone");
        assert!(p < params.base(), "digit {p} out of base range");
        ZoneCode {
            code: (self.code << params.base_bits) | p,
            level: self.level + 1,
        }
    }

    /// The parent zone (`None` for the root).
    pub fn parent(&self, params: &ZoneParams) -> Option<ZoneCode> {
        if self.level == 0 {
            None
        } else {
            Some(ZoneCode {
                code: self.code >> params.base_bits,
                level: self.level - 1,
            })
        }
    }

    /// All β children (empty for leaves).
    pub fn children(&self, params: &ZoneParams) -> Vec<ZoneCode> {
        if self.level >= params.max_level() {
            return Vec::new();
        }
        (0..params.base()).map(|p| self.child(params, p)).collect()
    }

    /// Digit at position `i` (0 = first division).
    pub fn digit(&self, params: &ZoneParams, i: u8) -> u64 {
        assert!(i < self.level, "digit index out of range");
        let shift = (self.level - 1 - i) as u32 * params.base_bits as u32;
        (self.code >> shift) & (params.base() - 1)
    }

    /// Is `self` an ancestor of (or equal to) `other`?
    pub fn is_ancestor_of(&self, params: &ZoneParams, other: &ZoneCode) -> bool {
        if self.level > other.level {
            return false;
        }
        let shift = (other.level - self.level) as u32 * params.base_bits as u32;
        (other.code >> shift) == self.code
    }

    /// The 64-bit Chord key: code padded on the right with (β−1)-digits,
    /// i.e. `key = (code + 1) · β^(m − level) − 1` from §3.2.
    pub fn key(&self, params: &ZoneParams) -> u64 {
        let used_bits = self.level as u32 * params.base_bits as u32;
        debug_assert!(used_bits <= 64);
        ((((self.code as u128) + 1) << (64 - used_bits)) - 1) as u64
    }

    /// The hypercuboid of content space this zone occupies. Division `i`
    /// splits dimension `i mod d` into β equal parts and keeps part
    /// `digit(i)`.
    pub fn extent(&self, params: &ZoneParams, space: &ContentSpace) -> Rect {
        let d = space.dims();
        let mut rect = space.bounding_rect();
        for i in 0..self.level {
            let j = i as usize % d;
            let p = self.digit(params, i);
            let width = (rect.hi[j] - rect.lo[j]) / params.base() as f64;
            let new_lo = rect.lo[j] + width * p as f64;
            rect.hi[j] = new_lo + width;
            rect.lo[j] = new_lo;
        }
        rect
    }

    /// The splitting dimension used to go from this zone to its children.
    pub fn split_dim(&self, space: &ContentSpace) -> usize {
        self.level as usize % space.dims()
    }
}

impl Encode for ZoneParams {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.base_bits);
        w.put_u8(self.zone_bits);
    }
}

impl Decode for ZoneParams {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let base_bits = r.take_u8()?;
        let zone_bits = r.take_u8()?;
        if !(1..=16).contains(&base_bits)
            || zone_bits < base_bits
            || zone_bits > 63
            || zone_bits % base_bits != 0
        {
            return Err(Error::InvalidValue("zone params"));
        }
        Ok(ZoneParams {
            base_bits,
            zone_bits,
        })
    }
}

impl Encode for ZoneCode {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.code);
        w.put_u8(self.level);
    }
}

impl Decode for ZoneCode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(ZoneCode {
            code: r.take_u64()?,
            level: r.take_u8()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2() -> ZoneParams {
        ZoneParams::base2_level20()
    }

    fn p4() -> ZoneParams {
        ZoneParams::base4_level10()
    }

    #[test]
    fn params_levels() {
        assert_eq!(p2().base(), 2);
        assert_eq!(p2().max_level(), 20);
        assert_eq!(p4().base(), 4);
        assert_eq!(p4().max_level(), 10);
    }

    #[test]
    fn child_parent_round_trip() {
        let params = p4();
        let z = ZoneCode::ROOT.child(&params, 3).child(&params, 1);
        assert_eq!(z.code, 0b11_01);
        assert_eq!(z.level, 2);
        assert_eq!(z.parent(&params).unwrap(), ZoneCode::ROOT.child(&params, 3));
        assert_eq!(
            z.parent(&params).unwrap().parent(&params).unwrap(),
            ZoneCode::ROOT
        );
        assert!(ZoneCode::ROOT.parent(&params).is_none());
    }

    #[test]
    fn digits() {
        let params = p4();
        let z = ZoneCode::ROOT
            .child(&params, 3)
            .child(&params, 0)
            .child(&params, 2);
        assert_eq!(z.digit(&params, 0), 3);
        assert_eq!(z.digit(&params, 1), 0);
        assert_eq!(z.digit(&params, 2), 2);
    }

    #[test]
    fn root_key_is_max() {
        assert_eq!(ZoneCode::ROOT.key(&p2()), u64::MAX);
        assert_eq!(ZoneCode::ROOT.key(&p4()), u64::MAX);
    }

    #[test]
    fn key_matches_paper_formula() {
        // Figure 1 example shape: base 2, zone "01" at level 2.
        let params = p2();
        let z = ZoneCode {
            code: 0b01,
            level: 2,
        };
        // key = (code+1) << (64-2) - 1 = 2 << 62 - 1 = 0x7FFF...
        assert_eq!(z.key(&params), (2u64 << 62).wrapping_sub(1));
    }

    #[test]
    fn child_keys_do_not_exceed_parent_key() {
        let params = p4();
        let parent = ZoneCode::ROOT.child(&params, 2);
        let pk = parent.key(&params);
        for c in parent.children(&params) {
            assert!(c.key(&params) <= pk, "child key beyond parent key");
        }
        // The last child shares the parent's key exactly (the all-(β−1)
        // padding collapse noted in §3.2's key construction).
        assert_eq!(
            parent.child(&params, 3).key(&params),
            pk,
            "last child must share the parent key"
        );
    }

    #[test]
    fn ancestor_check() {
        let params = p2();
        let a = ZoneCode::ROOT.child(&params, 1);
        let b = a.child(&params, 0).child(&params, 1);
        assert!(ZoneCode::ROOT.is_ancestor_of(&params, &b));
        assert!(a.is_ancestor_of(&params, &b));
        assert!(a.is_ancestor_of(&params, &a));
        assert!(!b.is_ancestor_of(&params, &a));
        let other = ZoneCode::ROOT.child(&params, 0);
        assert!(!other.is_ancestor_of(&params, &b));
    }

    #[test]
    fn extent_subdivides_round_robin() {
        let params = p2();
        let space = ContentSpace::uniform(2, 0.0, 8.0);
        // First division on dim 0, second on dim 1 (i mod d).
        let z = ZoneCode::ROOT.child(&params, 1).child(&params, 0);
        let e = z.extent(&params, &space);
        assert_eq!(e.lo, vec![4.0, 0.0]);
        assert_eq!(e.hi, vec![8.0, 4.0]);
    }

    #[test]
    fn extents_of_children_partition_parent() {
        let params = p4();
        let space = ContentSpace::uniform(3, 0.0, 100.0);
        let parent = ZoneCode::ROOT.child(&params, 1);
        let pe = parent.extent(&params, &space);
        let mut vol = 0.0;
        for c in parent.children(&params) {
            let ce = c.extent(&params, &space);
            assert!(pe.contains_rect(&ce));
            vol += ce.volume();
        }
        assert!((vol - pe.volume()).abs() < 1e-9 * pe.volume());
    }

    #[test]
    fn leaf_has_no_children() {
        let params = ZoneParams::new(1, 2);
        let leaf = ZoneCode::ROOT.child(&params, 0).child(&params, 1);
        assert!(leaf.children(&params).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot split a leaf")]
    fn splitting_leaf_panics() {
        let params = ZoneParams::new(1, 1);
        let leaf = ZoneCode::ROOT.child(&params, 0);
        let _ = leaf.child(&params, 0);
    }

    #[test]
    #[should_panic(expected = "whole number of digits")]
    fn misaligned_zone_bits_panics() {
        ZoneParams::new(3, 20);
    }
}
