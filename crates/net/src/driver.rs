//! The live driver: one thread owning a protocol node, its world, and a
//! timer wheel, fed by listener/reader threads over real TCP sockets.
//!
//! The driver is the live-network counterpart of `simnet::Sim::step`. The
//! parity rules it preserves (see DESIGN.md "Transport & runtime"):
//!
//! * **Single-threaded protocol state.** Handlers run only on the driver
//!   thread; socket threads never touch the node. A handler sees the same
//!   exclusive `&mut self` + runtime world it sees under the simulator.
//! * **Self-sends loop back in order.** A message a node sends to itself
//!   is dispatched inline after already-queued work, exactly like the
//!   simulator's zero-latency self-delivery.
//! * **Fail-stop surfaces as `on_send_failed`.** A dial or write failure
//!   invokes the node's failure handler inline, which is how the
//!   simulator's `FaultPlane` reports a dead destination.

use crate::frame::{handshake, parse_handshake, read_frame, write_frame};
use crate::wheel::TimerWheel;
use hypersub_simnet::{Node, NodeRuntime, Payload, ProtoEvent, SimTime, WireMsg};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long a dial may block the driver thread. Short on purpose: a dead
/// peer must degrade into `on_send_failed`, not a stall.
const DIAL_TIMEOUT: Duration = Duration::from_millis(500);

/// Configuration for one live node's transport.
pub struct LiveConfig {
    /// This node's index into `peers`.
    pub index: usize,
    /// Transport addresses of every node in the deployment, by index.
    pub peers: Vec<SocketAddr>,
    /// Seed for the node's deterministic RNG stream.
    pub seed: u64,
}

/// The runtime handed to protocol handlers on the driver thread.
///
/// Implements [`NodeRuntime`] over wall-clock time: `now()` is the
/// duration since the driver started, expressed as [`SimTime`] so
/// protocol-level arithmetic (timeouts, lease periods) is unchanged from
/// the simulator. Tracing is off — live observability goes through the
/// world's metric sinks instead of a flight recorder.
pub struct LiveCtx<'a, M, W> {
    me: usize,
    now: SimTime,
    world: &'a mut W,
    rng: &'a mut SmallRng,
    outbox: &'a mut Vec<(usize, M)>,
    timers: &'a mut Vec<(SimTime, u64)>,
}

impl<M, W> NodeRuntime<M, W> for LiveCtx<'_, M, W> {
    fn me(&self) -> usize {
        self.me
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn world(&mut self) -> &mut W {
        self.world
    }

    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    fn send(&mut self, dst: usize, msg: M) {
        self.outbox.push((dst, msg));
    }

    fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((delay, token));
    }

    fn tracing(&self) -> bool {
        false
    }

    fn trace(&mut self, _f: impl FnOnce() -> ProtoEvent) {}
}

/// A closure run on the driver thread with exclusive access to the node
/// and its runtime — the control plane's doorway into protocol state.
pub type Call<N, M, W> = Box<dyn for<'a> FnOnce(&mut N, &mut LiveCtx<'a, M, W>) + Send>;

enum Input<N, M, W> {
    Msg { from: usize, msg: M },
    Call(Call<N, M, W>),
    Shutdown,
}

/// Outbound connection cache: one reused TCP stream per destination,
/// redialed once on write failure before reporting fail-stop.
struct ConnMgr {
    me: usize,
    peers: Vec<SocketAddr>,
    conns: HashMap<usize, TcpStream>,
}

impl ConnMgr {
    fn send(&mut self, dst: usize, frame: &[u8]) -> io::Result<()> {
        if let Some(s) = self.conns.get_mut(&dst) {
            if write_frame(s, frame).is_ok() {
                return Ok(());
            }
            // Stale connection (peer restarted, socket reset): drop the
            // cached stream and fall through to a fresh dial.
            self.conns.remove(&dst);
        }
        let addr = *self
            .peers
            .get(dst)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "unknown peer index"))?;
        let mut s = TcpStream::connect_timeout(&addr, DIAL_TIMEOUT)?;
        s.set_nodelay(true)?;
        write_frame(&mut s, &handshake(self.me))?;
        write_frame(&mut s, frame)?;
        self.conns.insert(dst, s);
        Ok(())
    }
}

/// What a dispatched handler produced, applied by the driver afterwards.
enum Work<M> {
    Deliver { from: usize, msg: M },
    Failed { dst: usize, msg: M },
}

struct Driver<N, M, W> {
    node: N,
    world: W,
    rng: SmallRng,
    wheel: TimerWheel,
    conns: ConnMgr,
    me: usize,
    start: Instant,
    rx: Receiver<Input<N, M, W>>,
}

impl<N, M, W> Driver<N, M, W>
where
    N: Node<M, W>,
    M: WireMsg + Payload,
{
    fn elapsed(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Runs one handler and everything it transitively causes: timers are
    /// armed, remote sends are transmitted (failures re-enter as
    /// `on_send_failed`), and self-sends are delivered inline in FIFO
    /// order — mirroring the simulator's flush semantics.
    fn pump(&mut self, first: Work<M>) {
        let mut queue: VecDeque<Work<M>> = VecDeque::new();
        queue.push_back(first);
        while let Some(work) = queue.pop_front() {
            let now = self.elapsed();
            let mut outbox = Vec::new();
            let mut timers = Vec::new();
            {
                let mut ctx = LiveCtx {
                    me: self.me,
                    now,
                    world: &mut self.world,
                    rng: &mut self.rng,
                    outbox: &mut outbox,
                    timers: &mut timers,
                };
                match work {
                    Work::Deliver { from, msg } => self.node.on_message(&mut ctx, from, msg),
                    Work::Failed { dst, msg } => self.node.on_send_failed(&mut ctx, dst, msg),
                }
            }
            for (delay, token) in timers {
                self.wheel.arm(now + delay, token);
            }
            for (dst, msg) in outbox {
                if dst == self.me {
                    queue.push_back(Work::Deliver { from: dst, msg });
                } else if self.conns.send(dst, &msg.to_wire_bytes()).is_err() {
                    queue.push_back(Work::Failed { dst, msg });
                }
            }
        }
    }

    fn fire_timer(&mut self, token: u64) {
        let now = self.elapsed();
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = LiveCtx {
                me: self.me,
                now,
                world: &mut self.world,
                rng: &mut self.rng,
                outbox: &mut outbox,
                timers: &mut timers,
            };
            self.node.on_timer(&mut ctx, token);
        }
        for (delay, t) in timers {
            self.wheel.arm(now + delay, t);
        }
        self.flush(outbox);
    }

    fn call(&mut self, f: Call<N, M, W>) {
        let now = self.elapsed();
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = LiveCtx {
                me: self.me,
                now,
                world: &mut self.world,
                rng: &mut self.rng,
                outbox: &mut outbox,
                timers: &mut timers,
            };
            f(&mut self.node, &mut ctx);
        }
        for (delay, t) in timers {
            self.wheel.arm(now + delay, t);
        }
        self.flush(outbox);
    }

    fn flush(&mut self, outbox: Vec<(usize, M)>) {
        for (dst, msg) in outbox {
            if dst == self.me {
                self.pump(Work::Deliver { from: dst, msg });
            } else if self.conns.send(dst, &msg.to_wire_bytes()).is_err() {
                self.pump(Work::Failed { dst, msg });
            }
        }
    }

    fn run(mut self) {
        loop {
            // Fire everything already due before blocking.
            loop {
                let now = self.elapsed();
                match self.wheel.pop_due(now) {
                    Some(token) => self.fire_timer(token),
                    None => break,
                }
            }
            let input = match self.wheel.next_deadline() {
                Some(at) => {
                    let now = self.elapsed();
                    let wait = Duration::from_micros(at.saturating_sub(now).as_micros());
                    match self.rx.recv_timeout(wait) {
                        Ok(input) => input,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.rx.recv() {
                    Ok(input) => input,
                    Err(_) => return,
                },
            };
            match input {
                Input::Msg { from, msg } => self.pump(Work::Deliver { from, msg }),
                Input::Call(f) => self.call(f),
                Input::Shutdown => return,
            }
        }
    }
}

/// Handle to a running [`NetDriver`] node: enqueue work onto the driver
/// thread and shut it down.
pub struct NetHandle<N, M, W> {
    tx: Sender<Input<N, M, W>>,
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
}

impl<N, M, W> NetHandle<N, M, W>
where
    N: Node<M, W> + Send + 'static,
    M: WireMsg + Payload + Send + 'static,
    W: Send + 'static,
{
    /// The transport address this node accepts connections on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Runs `f` on the driver thread with exclusive node + runtime access;
    /// sends and timers it issues are flushed like any handler's.
    pub fn invoke(&self, f: impl for<'a> FnOnce(&mut N, &mut LiveCtx<'a, M, W>) + Send + 'static) {
        let _ = self.tx.send(Input::Call(Box::new(f)));
    }

    /// Like [`NetHandle::invoke`] but blocks for a result computed on the
    /// driver thread.
    pub fn query<R: Send + 'static>(
        &self,
        f: impl for<'a> FnOnce(&mut N, &mut LiveCtx<'a, M, W>) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = mpsc::channel();
        self.invoke(move |node, ctx| {
            let _ = tx.send(f(node, ctx));
        });
        rx.recv().expect("driver thread gone")
    }

    /// Stops the driver thread and the accept loop.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Input::Shutdown);
        // Wake the accept loop so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.local, DIAL_TIMEOUT);
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

/// Spawns the live runtime for one node: a driver thread owning
/// `node` + `world`, an accept loop on `listener`, and one reader thread
/// per inbound connection.
pub fn spawn<N, M, W>(
    node: N,
    world: W,
    listener: TcpListener,
    cfg: LiveConfig,
) -> NetHandle<N, M, W>
where
    N: Node<M, W> + Send + 'static,
    M: WireMsg + Payload + Send + 'static,
    W: Send + 'static,
{
    let local = listener.local_addr().expect("listener has a local addr");
    let (tx, rx) = mpsc::channel();
    let stop = Arc::new(AtomicBool::new(false));

    let driver = Driver {
        node,
        world,
        rng: SmallRng::seed_from_u64(
            cfg.seed ^ (cfg.index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ),
        wheel: TimerWheel::default(),
        conns: ConnMgr {
            me: cfg.index,
            peers: cfg.peers,
            conns: HashMap::new(),
        },
        me: cfg.index,
        start: Instant::now(),
        rx,
    };
    let driver = thread::spawn(move || driver.run());

    let accept_tx = tx.clone();
    let accept_stop = Arc::clone(&stop);
    thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(conn) = conn else { continue };
            let _ = conn.set_nodelay(true);
            let reader_tx = accept_tx.clone();
            thread::spawn(move || {
                let mut r = BufReader::new(conn);
                let Ok(hs) = read_frame(&mut r) else { return };
                let Ok(from) = parse_handshake(&hs) else {
                    return;
                };
                while let Ok(frame) = read_frame(&mut r) {
                    let Ok(msg) = M::from_wire_bytes(&frame) else {
                        // Corrupt or foreign-version frame: drop the
                        // connection; the peer redials.
                        return;
                    };
                    if reader_tx.send(Input::Msg { from, msg }).is_err() {
                        return;
                    }
                }
            });
        }
    });

    NetHandle {
        tx,
        local,
        stop,
        driver: Some(driver),
    }
}
