//! Length-prefixed message framing.
//!
//! Every frame on a transport connection is a 4-byte little-endian length
//! followed by that many payload bytes. The first frame a dialer writes is
//! a *handshake* announcing its node index (`HSUB` magic + LE `u32`); every
//! later frame is one [`hypersub_simnet::WireMsg`] encoding. One frame
//! carries exactly one message — the codec rejects trailing bytes.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. A `HyperMsg` is a few hundred
/// bytes; replica snapshots can reach megabytes on loaded nodes. Anything
/// past this is a corrupt or hostile length prefix.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Magic prefix of the connection handshake frame.
pub const HANDSHAKE_MAGIC: &[u8; 4] = b"HSUB";

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Err(UnexpectedEof)` on a cleanly
/// closed connection.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Builds the handshake payload a dialer sends as its first frame.
pub fn handshake(index: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(8);
    v.extend_from_slice(HANDSHAKE_MAGIC);
    v.extend_from_slice(&(index as u32).to_le_bytes());
    v
}

/// Parses a handshake payload back into the dialer's node index.
pub fn parse_handshake(payload: &[u8]) -> io::Result<usize> {
    if payload.len() != 8 || &payload[..4] != HANDSHAKE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad handshake frame",
        ));
    }
    let mut idx = [0u8; 4];
    idx.copy_from_slice(&payload[4..]);
    Ok(u32::from_le_bytes(idx) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // clean EOF
    }

    #[test]
    fn handshake_round_trip() {
        assert_eq!(parse_handshake(&handshake(42)).unwrap(), 42);
        assert!(parse_handshake(b"nope").is_err());
        assert!(parse_handshake(b"HSUBxxxxx").is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
