//! Real-socket runtime for HyperSub protocol nodes.
//!
//! The protocol crates (`hypersub-core`, `hypersub-chord`) are written
//! against [`hypersub_simnet::NodeRuntime`], not against the simulator —
//! this crate is the second implementation of that contract. It hosts the
//! very same [`hypersub_simnet::Node`] state machines over TCP:
//!
//! * [`frame`] — 4-byte length-prefixed frames carrying
//!   [`hypersub_simnet::WireMsg`] encodings, plus the connection
//!   handshake that announces the dialer's node index,
//! * [`wheel`] — a timer wheel with the simulator's deadline-then-FIFO
//!   firing order,
//! * [`driver`] — a single driver thread per node owning the protocol
//!   state, fed by per-connection reader threads, with outbound
//!   connection reuse and fail-stop dial/write errors surfaced as
//!   `on_send_failed`.
//!
//! The `hypersub-node` binary builds a runnable pub/sub node on top.

pub mod driver;
pub mod frame;
pub mod wheel;

pub use driver::{spawn, Call, LiveConfig, LiveCtx, NetHandle};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use wheel::TimerWheel;
