//! A timer wheel for the live driver.
//!
//! Semantically identical to the simulator's timer handling: timers armed
//! with the same deadline fire in arming order (the `seq` tiebreaker), and
//! `pop_due` never fires a timer early.

use hypersub_simnet::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pending timers ordered by absolute deadline, FIFO within a deadline.
#[derive(Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    seq: u64,
}

impl TimerWheel {
    /// Arms a timer to fire at absolute time `at`.
    pub fn arm(&mut self, at: SimTime, token: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, token)));
    }

    /// The earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pops the earliest timer whose deadline is `<= now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<u64> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now => {
                let Reverse((_, _, token)) = self.heap.pop().unwrap();
                Some(token)
            }
            _ => None,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_then_fifo_order() {
        let mut w = TimerWheel::default();
        w.arm(SimTime::from_millis(20), 2);
        w.arm(SimTime::from_millis(10), 1);
        w.arm(SimTime::from_millis(10), 3);
        assert_eq!(w.next_deadline(), Some(SimTime::from_millis(10)));
        assert_eq!(w.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(w.pop_due(SimTime::from_millis(15)), Some(1));
        assert_eq!(w.pop_due(SimTime::from_millis(15)), Some(3));
        assert_eq!(w.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(w.pop_due(SimTime::from_millis(25)), Some(2));
        assert!(w.is_empty());
    }
}
