//! Two live drivers talking over real loopback TCP: framing, handshake,
//! connection reuse, timers, self-sends, and fail-stop reporting.

use hypersub_net::driver::{spawn, LiveConfig};
use hypersub_simnet::{Node, NodeRuntime, Payload, SimTime, WireMsg};
use hypersub_snapshot::{Error, Reader, Writer};
use std::net::TcpListener;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, PartialEq)]
enum TestMsg {
    Ping(u64),
    Pong(u64),
}

impl Payload for TestMsg {
    fn wire_size(&self) -> usize {
        9
    }
}

impl WireMsg for TestMsg {
    const WIRE_VERSION: u8 = 7;

    fn wire_encode(&self, w: &mut Writer) {
        match self {
            TestMsg::Ping(n) => {
                w.put_u8(0);
                w.put_u64(*n);
            }
            TestMsg::Pong(n) => {
                w.put_u8(1);
                w.put_u64(*n);
            }
        }
    }

    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => TestMsg::Ping(r.take_u64()?),
            1 => TestMsg::Pong(r.take_u64()?),
            _ => return Err(Error::InvalidValue("test msg tag")),
        })
    }
}

#[derive(Default)]
struct TestWorld {
    pings: Vec<u64>,
    pongs: Vec<u64>,
    timer_fired: bool,
    failed_sends: Vec<usize>,
}

/// Replies `Pong(n)` to every `Ping(n)`; on a timer, self-sends one ping.
struct PingPong;

impl Node<TestMsg, TestWorld> for PingPong {
    fn on_message<R: NodeRuntime<TestMsg, TestWorld>>(
        &mut self,
        ctx: &mut R,
        from: usize,
        msg: TestMsg,
    ) {
        match msg {
            TestMsg::Ping(n) => {
                ctx.world().pings.push(n);
                ctx.send(from, TestMsg::Pong(n));
            }
            TestMsg::Pong(n) => ctx.world().pongs.push(n),
        }
    }

    fn on_timer<R: NodeRuntime<TestMsg, TestWorld>>(&mut self, ctx: &mut R, token: u64) {
        ctx.world().timer_fired = true;
        let me = ctx.me();
        ctx.send(me, TestMsg::Ping(token));
    }

    fn on_send_failed<R: NodeRuntime<TestMsg, TestWorld>>(
        &mut self,
        ctx: &mut R,
        dst: usize,
        _msg: TestMsg,
    ) {
        ctx.world().failed_sends.push(dst);
    }
}

fn wait_until(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached in 10s");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn two_drivers_deliver_over_loopback_tcp() {
    let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
    let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
    let peers = vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()];

    let h0 = spawn(
        PingPong,
        TestWorld::default(),
        l0,
        LiveConfig {
            index: 0,
            peers: peers.clone(),
            seed: 1,
        },
    );
    let h1 = spawn(
        PingPong,
        TestWorld::default(),
        l1,
        LiveConfig {
            index: 1,
            peers,
            seed: 1,
        },
    );

    // Node 0 pings node 1 three times over one reused connection; each
    // ping comes back as a pong on a connection node 1 dials back.
    for n in 0..3u64 {
        h0.invoke(move |_node, ctx| ctx.send(1, TestMsg::Ping(n)));
    }
    wait_until(|| h0.query(|_n, ctx| ctx.world().pongs.len()) == 3);
    assert_eq!(h1.query(|_n, ctx| ctx.world().pings.clone()), vec![0, 1, 2]);
    assert_eq!(h0.query(|_n, ctx| ctx.world().pongs.clone()), vec![0, 1, 2]);

    h0.shutdown();
    h1.shutdown();
}

#[test]
fn timers_fire_and_self_sends_loop_back() {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let peers = vec![l.local_addr().unwrap()];
    let h = spawn(
        PingPong,
        TestWorld::default(),
        l,
        LiveConfig {
            index: 0,
            peers,
            seed: 2,
        },
    );
    h.invoke(|_n, ctx| ctx.set_timer(SimTime::from_millis(20), 77));
    // The timer handler self-sends Ping(77); the node then pongs itself.
    wait_until(|| h.query(|_n, ctx| ctx.world().pongs.clone()) == vec![77]);
    assert!(h.query(|_n, ctx| ctx.world().timer_fired));
    assert_eq!(h.query(|_n, ctx| ctx.world().pings.clone()), vec![77]);
    h.shutdown();
}

#[test]
fn unreachable_peer_surfaces_as_send_failed() {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    // Peer 1's address points at a listener we bind and immediately drop:
    // the dial is refused, which must degrade into `on_send_failed`.
    let dead = TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = dead.local_addr().unwrap();
    drop(dead);

    let peers = vec![l.local_addr().unwrap(), dead_addr];
    let h = spawn(
        PingPong,
        TestWorld::default(),
        l,
        LiveConfig {
            index: 0,
            peers,
            seed: 3,
        },
    );
    h.invoke(|_n, ctx| ctx.send(1, TestMsg::Ping(9)));
    wait_until(|| h.query(|_n, ctx| ctx.world().failed_sends.clone()) == vec![1]);
    h.shutdown();
}
