//! `hypersub-node`: a runnable content-based pub/sub node.
//!
//! Hosts the exact `HyperSubNode` state machine the simulator tests —
//! Chord routing and maintenance, LPH zone mapping, subscription
//! installation, rendezvous delivery — over `hypersub-net`'s TCP runtime.
//! N local processes form a ring, subscribe, and deliver real events.
//!
//! ```text
//! hypersub-node serve --index 0 --listen 127.0.0.1:7000 \
//!     --control 127.0.0.1:7100 \
//!     --peers 127.0.0.1:7000,127.0.0.1:7001 --seed 42
//! hypersub-node ctl 127.0.0.1:7100 sub 10 10 30 30
//! hypersub-node ctl 127.0.0.1:7101 pub 20 20
//! hypersub-node ctl 127.0.0.1:7100 deliveries
//! ```
//!
//! Control protocol (one request line, one `ok ...` / `err ...` reply):
//!
//! * `sub <x0> <y0> <x1> <y1>` — subscribe to the rectangle, returns the
//!   subscription id as `nid:iid`
//! * `pub <x> <y>` — publish an event at the point, returns its event id
//! * `deliveries` — number of events delivered to this node's subscriptions
//! * `status` — ring view: node id, successor indexes, predecessor, load
//! * `quit` — shut the node down
//!
//! Every process is started with the full `--peers` list (index → address)
//! and a shared `--seed`; ring identifiers are drawn deterministically
//! from the seed, so all processes agree on the id space without any
//! out-of-band exchange. Node `--bootstrap` (default 0) is the join
//! contact for everyone else.

use hypersub_chord::builder::random_ids;
use hypersub_chord::proto::{FIX_FINGERS_PERIOD, STABILIZE_PERIOD};
use hypersub_chord::ChordState;
use hypersub_core::config::SystemConfig;
use hypersub_core::model::{Event, Registry, SchemeDef, Subscription};
use hypersub_core::msg::HyperMsg;
use hypersub_core::node::{HyperSubNode, TOKEN_FIX_FINGERS, TOKEN_STABILIZE};
use hypersub_core::world::HyperWorld;
use hypersub_lph::{Point, Rect};
use hypersub_net::driver::{spawn, LiveConfig, NetHandle};
use hypersub_simnet::NodeRuntime;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Successor-list length for live rings (matches the sim ring builder).
const SUCC_LIST_LEN: usize = 16;

/// The demo content scheme every node serves: two attributes over
/// `[0, 100]`. A deployment would load schemes from configuration; the
/// control protocol only needs one to exercise real delivery.
fn demo_registry() -> Registry {
    Registry::new(vec![SchemeDef::builder("demo")
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .build(0)])
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hypersub-node serve --index I --listen ADDR --control ADDR \
         --peers A0,A1,... --seed S [--bootstrap I]\n  hypersub-node ctl ADDR CMD [ARGS...]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("ctl") => ctl(&args[1..]),
        _ => usage(),
    }
}

/// `ctl ADDR CMD...`: send one control line, print the reply.
fn ctl(args: &[String]) -> ExitCode {
    let Some((addr, cmd)) = args.split_first() else {
        return usage();
    };
    if cmd.is_empty() {
        return usage();
    }
    let Ok(addr) = addr.parse::<SocketAddr>() else {
        eprintln!("err bad control address");
        return ExitCode::FAILURE;
    };
    let stream = match TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("err connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("err clone: {e}");
            return ExitCode::FAILURE;
        }
    };
    if writeln!(writer, "{}", cmd.join(" ")).is_err() {
        eprintln!("err write");
        return ExitCode::FAILURE;
    }
    let mut reply = String::new();
    if BufReader::new(stream).read_line(&mut reply).is_err() {
        eprintln!("err read");
        return ExitCode::FAILURE;
    }
    print!("{reply}");
    if reply.starts_with("ok") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

struct ServeArgs {
    index: usize,
    listen: SocketAddr,
    control: SocketAddr,
    peers: Vec<SocketAddr>,
    seed: u64,
    bootstrap: usize,
}

fn parse_serve(args: &[String]) -> Option<ServeArgs> {
    let mut index = None;
    let mut listen = None;
    let mut control = None;
    let mut peers = None;
    let mut seed = 0u64;
    let mut bootstrap = 0usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = it.next()?;
        match flag.as_str() {
            "--index" => index = Some(val.parse().ok()?),
            "--listen" => listen = Some(val.parse().ok()?),
            "--control" => control = Some(val.parse().ok()?),
            "--peers" => {
                peers = Some(
                    val.split(',')
                        .map(|a| a.parse().ok())
                        .collect::<Option<Vec<SocketAddr>>>()?,
                )
            }
            "--seed" => seed = val.parse().ok()?,
            "--bootstrap" => bootstrap = val.parse().ok()?,
            _ => return None,
        }
    }
    let (index, listen, control, peers) = (index?, listen?, control?, peers?);
    if index >= peers.len() || bootstrap >= peers.len() {
        return None;
    }
    Some(ServeArgs {
        index,
        listen,
        control,
        peers,
        seed,
        bootstrap,
    })
}

type Handle = NetHandle<HyperSubNode, HyperMsg, HyperWorld>;

fn serve(args: &[String]) -> ExitCode {
    let Some(a) = parse_serve(args) else {
        return usage();
    };
    let n = a.peers.len();

    // Every process draws the same id vector from the shared seed, so the
    // ring id space is agreed without any out-of-band exchange.
    let id = random_ids(n, a.seed)[a.index];
    let mut node = HyperSubNode::new(
        ChordState::new(id, a.index, SUCC_LIST_LEN),
        Arc::new(demo_registry()),
        Arc::new(SystemConfig::default()),
    );
    node.maintenance = true;

    let listener = match TcpListener::bind(a.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("err bind {}: {e}", a.listen);
            return ExitCode::FAILURE;
        }
    };
    let control = match TcpListener::bind(a.control) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("err bind control {}: {e}", a.control);
            return ExitCode::FAILURE;
        }
    };

    let handle: Handle = spawn(
        node,
        HyperWorld::default(),
        listener,
        LiveConfig {
            index: a.index,
            peers: a.peers,
            seed: a.seed,
        },
    );

    // Arm Chord maintenance and, on non-bootstrap nodes, start the join.
    // The bootstrap node begins as a singleton ring that owns every key.
    let (index, bootstrap) = (a.index, a.bootstrap);
    handle.invoke(move |node, ctx| {
        ctx.set_timer(STABILIZE_PERIOD, TOKEN_STABILIZE);
        ctx.set_timer(FIX_FINGERS_PERIOD, TOKEN_FIX_FINGERS);
        if index != bootstrap {
            for (dst, m) in node.maint.start_join(bootstrap) {
                ctx.send(dst, HyperMsg::Chord(m));
            }
        }
    });
    eprintln!("hypersub-node {index}: serving (id {id:#018x})");

    control_loop(&handle, control, index);
    handle.shutdown();
    ExitCode::SUCCESS
}

/// Accepts control connections one at a time and answers request lines
/// until a `quit` arrives.
fn control_loop(handle: &Handle, control: TcpListener, index: usize) {
    // Event ids must be globally unique; partition the id space by
    // publisher index.
    let mut next_event: u64 = ((index as u64) + 1) << 40;
    for conn in control.incoming() {
        let Ok(conn) = conn else { continue };
        let mut writer = match conn.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let reader = BufReader::new(conn);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let (reply, quit) = handle_command(handle, line.trim(), &mut next_event);
            if writeln!(writer, "{reply}").is_err() || quit {
                if quit {
                    return;
                }
                break;
            }
        }
    }
}

fn handle_command(handle: &Handle, line: &str, next_event: &mut u64) -> (String, bool) {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let floats =
        |xs: &[&str]| -> Option<Vec<f64>> { xs.iter().map(|x| x.parse::<f64>().ok()).collect() };
    match parts.as_slice() {
        ["sub", rest @ ..] if rest.len() == 4 => {
            let Some(v) = floats(rest) else {
                return ("err bad number".into(), false);
            };
            if v[0] > v[2] || v[1] > v[3] {
                return ("err empty rectangle".into(), false);
            }
            let rect = Rect::new(vec![v[0], v[1]], vec![v[2], v[3]]);
            let subid =
                handle.query(move |node, ctx| node.subscribe(ctx, 0, Subscription::new(rect)));
            (format!("ok sub {}:{}", subid.nid, subid.iid), false)
        }
        ["pub", rest @ ..] if rest.len() == 2 => {
            let Some(v) = floats(rest) else {
                return ("err bad number".into(), false);
            };
            let id = *next_event;
            *next_event += 1;
            let event = Event {
                id,
                point: Point(v),
            };
            handle.invoke(move |node, ctx| node.publish_event(ctx, 0, event));
            (format!("ok pub {id}"), false)
        }
        ["deliveries"] => {
            let n = handle.query(|_node, ctx| ctx.world().metrics.deliveries().len());
            (format!("ok deliveries {n}"), false)
        }
        ["status"] => {
            let s = handle.query(|node, ctx| {
                let c = node.chord();
                let succs: Vec<String> = c.successors.iter().map(|p| p.idx.to_string()).collect();
                format!(
                    "ok status me={} id={:#018x} succ=[{}] pred={} load={} now={}us",
                    ctx.me(),
                    c.id,
                    succs.join(","),
                    c.predecessor.map_or("none".into(), |p| p.idx.to_string()),
                    node.load(),
                    ctx.now().as_micros(),
                )
            });
            (s, false)
        }
        ["quit"] => ("ok bye".into(), true),
        _ => ("err unknown command".into(), false),
    }
}
