//! Four real `hypersub-node` processes form a ring over TCP, one
//! subscribes, another publishes, and the subscriber's control socket
//! reports the delivery. This is the same check the CI `node-smoke` job
//! runs (see `.github/workflows/ci.yml`).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const N: usize = 4;

/// Kills the node processes even when an assertion panics.
struct Fleet(Vec<Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Reserves distinct loopback ports by binding and immediately releasing.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

fn ctl(addr: SocketAddr, cmd: &str) -> Option<String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let mut w = stream.try_clone().ok()?;
    writeln!(w, "{cmd}").ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    Some(reply.trim().to_string())
}

fn ctl_until(addr: SocketAddr, cmd: &str, deadline: Instant, ok: impl Fn(&str) -> bool) -> String {
    loop {
        if let Some(reply) = ctl(addr, cmd) {
            if ok(&reply) {
                return reply;
            }
        }
        assert!(
            Instant::now() < deadline,
            "`{cmd}` at {addr} did not converge before the deadline"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn four_processes_form_a_ring_and_deliver() {
    let transport = free_addrs(N);
    let control = free_addrs(N);
    let peers = transport
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let fleet = Fleet(
        (0..N)
            .map(|i| {
                Command::new(env!("CARGO_BIN_EXE_hypersub-node"))
                    .args([
                        "serve",
                        "--index",
                        &i.to_string(),
                        "--listen",
                        &transport[i].to_string(),
                        "--control",
                        &control[i].to_string(),
                        "--peers",
                        &peers,
                        "--seed",
                        "42",
                    ])
                    .stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn hypersub-node")
            })
            .collect(),
    );

    let deadline = Instant::now() + Duration::from_secs(60);

    // Ring formation: every node reports all three others as successors
    // and a predecessor — a fully stabilized 4-node ring.
    for &c in &control {
        ctl_until(c, "status", deadline, |r| {
            r.starts_with("ok status")
                && r.contains("pred=")
                && !r.contains("pred=none")
                && r.split("succ=[").nth(1).is_some_and(|s| {
                    s.split(']').next().is_some_and(|inside| {
                        inside.split(',').filter(|x| !x.is_empty()).count() == N - 1
                    })
                })
        });
    }

    // Node 2 subscribes to [10,30]×[10,30].
    let reply = ctl_until(control[2], "sub 10 10 30 30", deadline, |r| {
        r.starts_with("ok sub")
    });
    assert!(reply.starts_with("ok sub"), "subscribe failed: {reply}");

    // Node 1 publishes matching events until the subscriber reports a
    // delivery (the first publish can race the registration install).
    let mut delivered = false;
    while !delivered {
        let r = ctl(control[1], "pub 20 20");
        assert!(
            r.as_deref().is_some_and(|r| r.starts_with("ok pub")),
            "publish failed: {r:?}"
        );
        let end = Instant::now() + Duration::from_millis(500);
        while Instant::now() < end {
            if let Some(d) = ctl(control[2], "deliveries") {
                if let Some(n) = d.strip_prefix("ok deliveries ") {
                    if n.parse::<usize>().unwrap_or(0) >= 1 {
                        delivered = true;
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(
            Instant::now() < deadline,
            "no delivery reached the subscriber before the deadline"
        );
    }

    // A non-matching event must not inflate the count: publish far away,
    // then confirm the counter is stable at the matched deliveries only.
    let before = ctl(control[2], "deliveries").expect("deliveries");
    let r = ctl(control[1], "pub 90 90");
    assert!(r.as_deref().is_some_and(|r| r.starts_with("ok pub")));
    std::thread::sleep(Duration::from_millis(500));
    let after = ctl(control[2], "deliveries").expect("deliveries");
    assert_eq!(before, after, "non-matching publish must not deliver");

    for &c in &control {
        assert_eq!(ctl(c, "quit").as_deref(), Some("ok bye"));
    }
    drop(fleet);
}
