//! **diurnal_waves** — a diurnal load curve with mass join/leave waves
//! riding on it, plus two *permanent* departures, against the
//! self-healing plane (successor replication + soft-state leases).
//!
//! Schedule:
//! 1. Subscribers 0..8 hold wide staggered bands; Chord maintenance runs
//!    throughout.
//! 2. The two most state-loaded non-subscribers leave **permanently** —
//!    their rendezvous state must be re-served from replicas, because
//!    nothing ever brings them back.
//! 3. Two mass waves: batches of non-subscribers leave together and
//!    rejoin later (the evening/morning of a diurnal population), while
//!    the publish stream's rate follows a triangle diurnal curve.
//! 4. After the last rejoin plus a healing window, probe events check
//!    that no damage was permanent.
//!
//! Invariants: every probe pair delivered (the healing plane's
//! signature), no duplicates anywhere, and the scenario really put
//! rendezvous state on its permanent victims and really failed nodes.

use crate::runner::{
    most_loaded, scenario_network, scenario_workload, subscribe_staggered_bands, RunConfig,
    ScenarioOutcome, Tier,
};
use hypersub_core::invariant::{self, Verdict};
use hypersub_core::prelude::*;
use hypersub_workload::{join_leave_waves, DiurnalRate, WaveKind, WorkloadGen};

const NODES: usize = 32;
const SUBSCRIBERS: usize = 8;

pub(crate) fn run(cfg: &RunConfig) -> hypersub_core::error::Result<ScenarioOutcome> {
    let (waves, wave_size, probes) = match cfg.tier {
        Tier::Quick => (2usize, 6usize, 12usize),
        Tier::Full => (6, 8, 24),
    };
    let config = if cfg.defense {
        SystemConfig::default().with_self_healing()
    } else {
        SystemConfig::default()
    };
    let mut net = scenario_network(NODES, cfg.seed, config, false)?;
    net.enable_maintenance();
    subscribe_staggered_bands(&mut net, SUBSCRIBERS);
    net.run_until(net.time() + SimTime::from_secs(10));

    // 2. Permanent departures: the two hottest non-subscriber state
    //    holders never come back.
    let victims = most_loaded(&net, SUBSCRIBERS..NODES, 2);
    let staked_entries: usize = victims.iter().map(|&(load, _)| load).sum();
    for &(_, v) in &victims {
        net.fail(v)?;
    }
    let victim_ids: Vec<usize> = victims.iter().map(|&(_, v)| v).collect();

    // 3. Mass waves over the remaining non-subscribers.
    let pool: Vec<usize> = (SUBSCRIBERS..NODES)
        .filter(|n| !victim_ids.contains(n))
        .collect();
    let first = net.time() + SimTime::from_secs(10);
    let period = SimTime::from_secs(60);
    let downtime = SimTime::from_secs(25);
    let actions = join_leave_waves(
        &pool,
        waves,
        wave_size,
        first,
        period,
        downtime,
        cfg.seed ^ 0xd107_0a1e_0000_0001,
    );
    let last_join = actions.last().expect("nonempty wave plan").at;

    // The diurnal publish stream runs from now until the last rejoin.
    let day = DiurnalRate {
        period: SimTime::from_secs(60),
        trough_scale: 4.0,
    };
    let mut wl = WorkloadGen::new(scenario_workload(), cfg.seed ^ 0xd107_0a1e_0000_0002);
    let mut publishes = Vec::new();
    let mut t = net.time();
    while t < last_join {
        t += wl.scaled_interarrival(day.scale_at(t));
        // Subscribers publish: they are alive through every wave.
        let node = wl.random_node(SUBSCRIBERS);
        publishes.push((t, node, wl.event_point()));
    }
    for (at, node, p) in publishes {
        if at < last_join {
            net.schedule_publish(at, node, 0, p)?;
        }
    }

    // Interleave the membership actions with the running stream.
    let mut failed = 0u64;
    for a in &actions {
        net.run_until(a.at);
        match a.kind {
            WaveKind::Leave => {
                net.fail(a.node)?;
                failed += 1;
            }
            WaveKind::Join => net.revive(a.node)?,
        }
    }

    // 4. Healing window (covers re-join handoff, re-replication, and
    //    several lease periods), then probes.
    net.run_until(last_join + SimTime::from_secs(45));
    let mut probe_ids = Vec::new();
    let mut t = net.time();
    for _ in 0..probes {
        t += SimTime::from_secs(1);
        let node = wl.random_node(SUBSCRIBERS);
        probe_ids.push(net.schedule_publish(t, node, 0, wl.event_point())?);
    }
    net.run_until(t + SimTime::from_secs(30));

    let report = net.report();
    let verdicts = vec![
        invariant::probes_delivered(&net.event_stats(), &probe_ids),
        invariant::no_duplicate_deliveries(&report),
        invariant::adversity_fired("node failures", failed + victims.len() as u64),
        Verdict::check(
            "scenario.state_at_stake",
            staked_entries > 0,
            format!("{staked_entries} rendezvous entries on the permanent victims"),
        ),
    ];
    Ok(ScenarioOutcome::collect(
        "diurnal_waves",
        cfg,
        &net,
        verdicts,
    ))
}
