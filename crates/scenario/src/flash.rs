//! **flash_crowd** — a viral topic concentrates subscriptions on one
//! surrogate, then a Zipf-shifted publish storm hammers the hot region
//! while dynamic migration (§4) sheds the load.
//!
//! Schedule:
//! 1. Subscribers across the network register range subscriptions drawn
//!    from a hot sliver of the x-domain (`[40, 41]`), so one surrogate
//!    chain collects nearly all stored state.
//! 2. The network runs long enough for several LB periods — offers,
//!    probes, and acked handoffs migrate subscriptions to ring
//!    neighbors.
//! 3. The workload generator's hotspot *shifts onto the hot sliver* and
//!    a publish storm (interarrival compressed well below the template
//!    mean) streams events through the migrated state.
//!
//! Invariants: migration actually converged within a bounded number of
//! LB rounds (from the flight recorder, the defense's signature), no
//! stored-subscription pile-up on a single node, and the storm delivered
//! completely and duplicate-free *through* migrated state.

use crate::runner::{scenario_network, scenario_workload, RunConfig, ScenarioOutcome, Tier};
use hypersub_core::invariant;
use hypersub_core::prelude::*;
use hypersub_workload::WorkloadGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 32;

pub(crate) fn run(cfg: &RunConfig) -> hypersub_core::error::Result<ScenarioOutcome> {
    let (subs, storm_events) = match cfg.tier {
        Tier::Quick => (300, 40),
        Tier::Full => (300, 400),
    };
    let config = if cfg.defense {
        SystemConfig::default().with_lb()
    } else {
        SystemConfig::default()
    };
    let lb_period = SystemConfig::default().with_lb().lb.period;
    let mut net = scenario_network(NODES, cfg.seed, config, false)?;

    // 1. The crowd: subscriptions packed into the hot sliver.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xf1a5_4c20_3d00_0001);
    for _ in 0..subs {
        let node = rng.gen_range(0..NODES);
        let c = rng.gen_range(40.0..41.0);
        let sub = Subscription::new(Rect::new(vec![c, 0.0], vec![(c + 0.5).min(100.0), 100.0]));
        net.subscribe(node, 0, sub);
    }
    // 2. Sixteen LB periods. The pile drains by *diffusion*: each round
    //    an overloaded node sheds only to successors whose load is still
    //    below average, so the hot surrogate's surplus halves roughly
    //    once per period and the trace goes silent around round twelve —
    //    the remaining four rounds prove the tail is quiet.
    net.run_until(net.time() + SimTime(lb_period.0 * 16));

    // 3. The storm: hotspot jumps onto the sliver, interarrival drops to
    //    a fifth of the template mean.
    let mut wl = WorkloadGen::new(scenario_workload(), cfg.seed ^ 0xf1a5_4c20_3d00_0002);
    wl.shift_hotspot(0.40 - 0.2); // x-hotspot 0.2 -> 0.40 = the sliver
    let mut t = net.time();
    for _ in 0..storm_events {
        t += wl.scaled_interarrival(0.2);
        let node = wl.random_node(NODES);
        let p = wl.event_point();
        net.schedule_publish(t, node, 0, p)?;
    }
    net.run_until(t + SimTime::from_secs(60));

    let report = net.report();
    let rec = net.recorder().expect("recorder installed");
    let verdicts = vec![
        invariant::migration_converged(rec, lb_period, 12),
        invariant::balanced_load(&net.node_loads(), 0.6),
        invariant::complete_delivery(&report),
        invariant::no_duplicate_deliveries(&report),
    ];
    Ok(ScenarioOutcome::collect("flash_crowd", cfg, &net, verdicts))
}
