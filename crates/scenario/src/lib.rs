//! Internet-scale adversity scenarios with invariant-checked verdicts.
//!
//! Each [`Scenario`] composes the workspace's fault plane, workload
//! generator, and protocol defenses (load balancing, retransmission,
//! self-healing) into a named, seeded, long-horizon schedule, and pairs
//! it with machine-checked invariants evaluated *after the fact* from
//! the run's own artifacts — the flight-recorder trace, the per-event
//! delivery oracle, and the exported [`Report`](hypersub_core::report::Report).
//! A run therefore ends in a [`ScenarioOutcome`]: a pass/fail verdict
//! per invariant plus the run digest, serializable as JSON for CI
//! artifacts.
//!
//! The pack is falsifiable by construction: every scenario names the
//! defense mechanism it exercises, and running with
//! [`RunConfig::without_defense`] must flip that scenario's *designated
//! invariant* to failed — the workspace tests prove it for each one. A
//! harness that cannot fail is not a harness.
//!
//! | scenario | adversity | defense | designated invariant |
//! |---|---|---|---|
//! | `flash_crowd` | Zipf-shifted publish storm onto one hot surrogate | load balancing | `lb.converged` |
//! | `diurnal_waves` | diurnal rate + mass join/leave waves + permanent departures | self-healing | `heal.probes_delivered` |
//! | `churn_soak` | sustained ~31% churn across checkpointed segments | healing + retries | `heal.probes_delivered` |
//! | `asymmetric_partition` | 25% island cut off for 30 s | deepened retry chain | `delivery.no_permanent_loss` |
//! | `slow_link` | 30 s of bufferbloat (delay + jitter + loss) | retries + dedup | `delivery.no_permanent_loss` |

mod diurnal;
mod flash;
mod partition;
mod runner;
mod slowlink;
pub mod soak;

pub use runner::{RunConfig, ScenarioOutcome, Tier};
pub use soak::{run_segment as soak_segment, segment_count as soak_segment_count, SoakStep};

use hypersub_core::error::Result;

/// One named adversity scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Zipf-shifted publish storm against dynamic migration.
    FlashCrowd,
    /// Diurnal load with mass join/leave waves against self-healing.
    DiurnalWaves,
    /// Sustained churn soak, checkpointed into segments.
    ChurnSoak,
    /// A minority island partition against a deepened retry chain.
    AsymmetricPartition,
    /// A bufferbloat window against retries + exactly-once dedup.
    SlowLink,
}

impl Scenario {
    /// Every scenario in the pack, in canonical order.
    pub const ALL: [Scenario; 5] = [
        Scenario::FlashCrowd,
        Scenario::DiurnalWaves,
        Scenario::ChurnSoak,
        Scenario::AsymmetricPartition,
        Scenario::SlowLink,
    ];

    /// Stable machine name (CLI argument, JSON field, stamp files).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "flash_crowd",
            Scenario::DiurnalWaves => "diurnal_waves",
            Scenario::ChurnSoak => "churn_soak",
            Scenario::AsymmetricPartition => "asymmetric_partition",
            Scenario::SlowLink => "slow_link",
        }
    }

    /// One-line description for `scenario list`.
    pub fn description(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd => {
                "Zipf-shifted publish storm onto one hot surrogate; migration must converge"
            }
            Scenario::DiurnalWaves => {
                "diurnal load, mass join/leave waves, permanent departures; healing must close the loss window"
            }
            Scenario::ChurnSoak => {
                "sustained ~31% churn across checkpointed segments; probes must deliver after calm"
            }
            Scenario::AsymmetricPartition => {
                "25% island cut for 30 s; the deepened retry chain must bridge the outage"
            }
            Scenario::SlowLink => {
                "30 s bufferbloat window (delay+jitter+loss); retries must repair, dedup must absorb"
            }
        }
    }

    /// The defense mechanism the scenario exercises.
    pub fn defense(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "load balancing (subscription migration)",
            Scenario::DiurnalWaves => "self-healing (replication + leases)",
            Scenario::ChurnSoak => "self-healing + retries",
            Scenario::AsymmetricPartition => "retries (max_attempts 8)",
            Scenario::SlowLink => "retries (max_attempts 6) + dedup",
        }
    }

    /// The invariant that must flip to *failed* when the defense is
    /// disabled — the falsifiability contract the workspace tests pin.
    pub fn designated_invariant(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd => "lb.converged",
            Scenario::DiurnalWaves | Scenario::ChurnSoak => "heal.probes_delivered",
            Scenario::AsymmetricPartition | Scenario::SlowLink => "delivery.no_permanent_loss",
        }
    }

    /// Looks a scenario up by its machine name.
    pub fn from_name(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Runs the scenario to completion and evaluates its invariants.
    ///
    /// # Errors
    /// Propagates network construction/publish/snapshot errors; invariant
    /// *failures* are not errors — they come back as failed verdicts in
    /// the outcome.
    pub fn run(&self, cfg: &RunConfig) -> Result<ScenarioOutcome> {
        match self {
            Scenario::FlashCrowd => flash::run(cfg),
            Scenario::DiurnalWaves => diurnal::run(cfg),
            Scenario::ChurnSoak => soak::run(cfg),
            Scenario::AsymmetricPartition => partition::run(cfg),
            Scenario::SlowLink => slowlink::run(cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_distinct() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
            assert!(!s.defense().is_empty());
        }
        assert_eq!(Scenario::from_name("no_such_scenario"), None);
    }

    #[test]
    fn outcome_json_is_well_formed() {
        use hypersub_core::invariant::Verdict;
        let out = ScenarioOutcome {
            scenario: "flash_crowd",
            tier: Tier::Quick,
            seed: 7,
            defense: true,
            nodes: 32,
            sim_time_us: 1_000_000,
            steps: 42,
            digest: 0xdead_beef_cafe_f00d,
            published: 10,
            expected: 20,
            delivered: 20,
            duplicates: 0,
            verdicts: vec![
                Verdict::check("lb.converged", true, "3 offers / 2 acks"),
                Verdict::check("delivery.no_dups", true, "0 \"dups\""),
            ],
        };
        let json = out.to_json();
        assert!(json.contains("\"scenario\": \"flash_crowd\""));
        assert!(json.contains("\"digest\": \"0xdeadbeefcafef00d\""));
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\\\"dups\\\""), "details are escaped");
        assert!(out.passed());
        assert!(out.verdict("lb.converged").unwrap().passed);
        assert!(out.verdict("nope").is_none());
    }

    #[test]
    fn outcome_with_a_failed_verdict_fails() {
        use hypersub_core::invariant::Verdict;
        let mut out = ScenarioOutcome {
            scenario: "x",
            tier: Tier::Full,
            seed: 0,
            defense: false,
            nodes: 0,
            sim_time_us: 0,
            steps: 0,
            digest: 0,
            published: 0,
            expected: 0,
            delivered: 0,
            duplicates: 0,
            verdicts: vec![],
        };
        assert!(!out.passed(), "no verdicts is not a pass");
        out.verdicts.push(Verdict::check("a", true, ""));
        out.verdicts.push(Verdict::check("b", false, "broken"));
        assert!(!out.passed());
        assert!(out.to_json().contains("\"passed\": false"));
    }
}
