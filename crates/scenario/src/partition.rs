//! **asymmetric_partition** — a minority island (25% of the ring) is cut
//! off for 30 simulated seconds while publishes keep flowing from both
//! sides, against a deepened retransmission chain.
//!
//! The retry chain is the defense: with `max_attempts` raised to 8, a
//! reliable send first transmitted at time `s` keeps retransmitting
//! until `s + 63.75 s` — so every chain started *inside* the 30-second
//! partition gets at least one transmission after the heal, and no
//! cross-cut delivery is ever permanently lost. (The stock 5-attempt
//! chain spans only 7.75 s and exhausts inside the window — the
//! acceptance tests prove that configuration loses deliveries, which is
//! exactly what the no-defense run of this scenario shows.)
//!
//! Invariants: zero permanent delivery loss over the whole run (the
//! defense's signature), no duplicates from all those retransmissions,
//! no reliable send abandoned, the fault plane really cut messages, and
//! the trace shows no partition drop at or after the scheduled heal.

use crate::runner::{scenario_network, RunConfig, ScenarioOutcome, Tier};
use hypersub_core::invariant;
use hypersub_core::prelude::*;

const NODES: usize = 32;
const ISLAND: usize = NODES / 4;

/// Node `i`'s subscription: a staggered 25-wide x-band, so every event
/// matches a position-dependent subset of nodes on both sides of the
/// cut.
fn rect_for(i: usize) -> Rect {
    let lo = ((i * 7) % 75) as f64;
    Rect::new(vec![lo, 0.0], vec![lo + 25.0, 100.0])
}

fn point_for(p: usize) -> Point {
    Point(vec![((p * 17) % 100) as f64, ((p * 31) % 100) as f64])
}

pub(crate) fn run(cfg: &RunConfig) -> hypersub_core::error::Result<ScenarioOutcome> {
    let publishes = match cfg.tier {
        Tier::Quick => 30usize,
        Tier::Full => 120,
    };
    let mut config = SystemConfig::default();
    if cfg.defense {
        config = config.with_retries();
        // Deepen the backoff chain past the partition: 8 transmissions
        // span 0.25 s * (2^8 - 1) = 63.75 s > 30 s.
        config.retry.max_attempts = 8;
    }
    let mut net = scenario_network(NODES, cfg.seed, config, false)?;

    for i in 0..NODES {
        net.subscribe(i, 0, Subscription::new(rect_for(i)));
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    // The island: nodes 0..8 vs the rest, cut for [t0+20, t0+50).
    let t0 = net.time();
    let cut = t0 + SimTime::from_secs(20);
    let heal = t0 + SimTime::from_secs(50);
    let mut fp = FaultPlane::new(cfg.seed ^ 0x9a87_0000_0000_0003);
    fp.add_partition(0..ISLAND, cut, heal);
    net.install_fault_plane(fp);

    // Publishes every 2 s from alternating sides: before, during, and
    // after the window.
    let mut t = t0;
    for p in 0..publishes {
        t += SimTime::from_secs(2);
        let node = if p % 2 == 0 {
            p % ISLAND // island side
        } else {
            ISLAND + (p % (NODES - ISLAND)) // mainland side
        };
        net.schedule_publish(t, node, 0, point_for(p))?;
    }
    // Run past the last possible retransmission (worst chain: first send
    // just before heal + 63.75 s of backoff) plus settle margin.
    net.run_until(t + SimTime::from_secs(80));

    let report = net.report();
    let rec = net.recorder().expect("recorder installed");
    let verdicts = vec![
        invariant::complete_delivery(&report),
        invariant::no_duplicate_deliveries(&report),
        invariant::no_give_ups(&report),
        invariant::adversity_fired("partition drops", report.net.partition_dropped),
        invariant::trace_silent_after(rec, "net.drop_partition", heal),
    ];
    Ok(ScenarioOutcome::collect(
        "asymmetric_partition",
        cfg,
        &net,
        verdicts,
    ))
}
