//! Shared run configuration and the machine-readable outcome of one
//! scenario run.

use hypersub_core::invariant::Verdict;
use hypersub_core::prelude::*;
use hypersub_workload::{AttributeSpec, WorkloadSpec};

/// How big a scenario run should be. `Quick` is sized for CI smoke
/// (a few seconds of wall clock even in debug builds); `Full` stretches
/// the same schedule for overnight soaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI-sized run.
    Quick,
    /// Long-horizon run.
    Full,
}

impl Tier {
    /// Stable lowercase name (used in JSON and file stamps).
    pub fn as_str(&self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }
}

/// Parameters of one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Run size.
    pub tier: Tier,
    /// Master seed: drives topology, workload, fault schedule.
    pub seed: u64,
    /// When false, the scenario's paired defense mechanism (retries,
    /// healing, or load balancing) is disabled — the harness must then
    /// report the designated invariant as *failed*, proving the verdicts
    /// actually bite.
    pub defense: bool,
}

impl RunConfig {
    /// A quick-tier run with the defense enabled.
    pub fn quick(seed: u64) -> Self {
        Self {
            tier: Tier::Quick,
            seed,
            defense: true,
        }
    }

    /// The same run with the defense disabled.
    pub fn without_defense(self) -> Self {
        Self {
            defense: false,
            ..self
        }
    }
}

/// The machine-readable outcome of one scenario run: identity, the run
/// digest (for determinism checks), delivery aggregates, and every
/// invariant verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: &'static str,
    /// Run size.
    pub tier: Tier,
    /// Master seed.
    pub seed: u64,
    /// Whether the paired defense was enabled.
    pub defense: bool,
    /// Network size.
    pub nodes: u64,
    /// Final simulated time, in microseconds.
    pub sim_time_us: u64,
    /// Simulator events processed.
    pub steps: u64,
    /// The run digest.
    pub digest: u64,
    /// Events published over the run.
    pub published: u64,
    /// Ground-truth expected `(event, subscriber)` pairs.
    pub expected: u64,
    /// Pairs actually delivered.
    pub delivered: u64,
    /// Duplicate deliveries.
    pub duplicates: u64,
    /// Every invariant checked, in scenario order.
    pub verdicts: Vec<Verdict>,
}

impl ScenarioOutcome {
    pub(crate) fn collect(
        scenario: &'static str,
        cfg: &RunConfig,
        net: &Network,
        verdicts: Vec<Verdict>,
    ) -> Self {
        let report = net.report();
        Self {
            scenario,
            tier: cfg.tier,
            seed: cfg.seed,
            defense: cfg.defense,
            nodes: report.nodes,
            sim_time_us: report.time_us,
            steps: report.steps,
            digest: report.digest,
            published: report.events.published,
            expected: report.events.expected,
            delivered: report.events.delivered,
            duplicates: report.events.duplicates,
            verdicts,
        }
    }

    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        !self.verdicts.is_empty() && self.verdicts.iter().all(|v| v.passed)
    }

    /// Looks up one verdict by invariant name.
    pub fn verdict(&self, invariant: &str) -> Option<&Verdict> {
        self.verdicts.iter().find(|v| v.invariant == invariant)
    }

    /// Serializes the outcome as a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\n");
        o.push_str("  \"version\": 1,\n");
        o.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        o.push_str(&format!("  \"tier\": \"{}\",\n", self.tier.as_str()));
        o.push_str(&format!("  \"seed\": {},\n", self.seed));
        o.push_str(&format!("  \"defense\": {},\n", self.defense));
        o.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        o.push_str(&format!("  \"sim_time_us\": {},\n", self.sim_time_us));
        o.push_str(&format!("  \"steps\": {},\n", self.steps));
        o.push_str(&format!("  \"digest\": \"{:#018x}\",\n", self.digest));
        o.push_str(&format!(
            "  \"events\": {{\"published\": {}, \"expected\": {}, \"delivered\": {}, \
             \"duplicates\": {}}},\n",
            self.published, self.expected, self.delivered, self.duplicates
        ));
        o.push_str(&format!("  \"passed\": {},\n", self.passed()));
        o.push_str("  \"verdicts\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\"invariant\": ");
            json_str(&mut o, &v.invariant);
            o.push_str(&format!(", \"passed\": {}, \"details\": ", v.passed));
            json_str(&mut o, &v.details);
            o.push('}');
        }
        o.push_str("\n  ]\n}");
        o
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The single-scheme content space every scenario runs over: two
/// attributes on `[0, 100]^2` (the integration-test scheme, so scenario
/// behavior stays comparable with the acceptance tests).
pub(crate) fn scenario_registry() -> Registry {
    Registry::new(vec![SchemeDef::builder("scn")
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .build(0)])
}

/// Builds a scenario network: the `scn` scheme, uniform 10 ms links, and
/// a flight recorder big enough that quick-tier traces never evict.
pub(crate) fn scenario_network(
    nodes: usize,
    seed: u64,
    config: SystemConfig,
    snapshots: bool,
) -> Result<Network> {
    let mut b = Network::builder(nodes)
        .registry(scenario_registry())
        .config(config)
        .latency(SimTime::from_millis(10))
        .flight_recorder(1 << 20)
        .seed(seed);
    if snapshots {
        b = b.snapshots(SnapshotConfig::enabled());
    }
    b.build()
}

/// The workload template scenarios draw publishes from: Zipf-skewed
/// values over the `scn` domain with the x-hotspot at 0.2 — the flash
/// crowd *shifts* it mid-run.
pub(crate) fn scenario_workload() -> WorkloadSpec {
    let attr = |name: &str, data_hotspot: f64| AttributeSpec {
        name: name.to_string(),
        min: 0.0,
        max: 100.0,
        data_skew: 0.9,
        data_hotspot,
        size_skew: 0.6,
        size_hotspot: 0.3,
    };
    WorkloadSpec {
        scheme_name: "scn".to_string(),
        attrs: vec![attr("x", 0.2), attr("y", 0.5)],
        subs_per_node: 0,
        events: 0,
        mean_interarrival: SimTime::from_millis(500),
        value_ranks: 1_000,
        size_ranks: 100,
    }
}

/// The wide staggered subscriber bands the self-healing acceptance tests
/// proved out: node `i` watches `x ∈ [9i, 9i + 28]` (full `y`), so the
/// protected subscriber set 0..8 collectively covers the whole domain
/// and every rendezvous chain carries real state.
pub(crate) fn subscribe_staggered_bands(net: &mut Network, subscribers: usize) {
    for node in 0..subscribers {
        let lo = (node * 9) as f64;
        net.subscribe(
            node,
            0,
            Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 28.0, 100.0])),
        );
    }
}

/// The `top` non-subscriber nodes (indices in `pool`) holding the most
/// rendezvous entries — failing these permanently guarantees real
/// subscription state dies with them.
pub(crate) fn most_loaded(
    net: &Network,
    pool: impl Iterator<Item = usize>,
    top: usize,
) -> Vec<(usize, usize)> {
    let mut by_load: Vec<(usize, usize)> = pool
        .map(|i| {
            let n = &net.nodes()[i];
            (n.repos.values().map(|r| r.entries.len()).sum::<usize>(), i)
        })
        .collect();
    by_load.sort_unstable_by(|a, b| b.cmp(a));
    by_load.truncate(top);
    by_load
}
