//! **slow_link** — a bufferbloat episode: for a 30-second window every
//! link gains 400 ms of fixed delay, up to 800 ms of jitter, and 2%
//! loss, while the publish stream keeps flowing. The ack/retransmit
//! layer is the defense.
//!
//! The bloated RTT (~1–2.4 s) dwarfs the 250 ms base timeout, so senders
//! retransmit *prematurely* — the window stresses the receiver-side
//! dedup cache as hard as the loss itself stresses the backoff chain.
//! Every spurious retransmission must be absorbed exactly-once, and the
//! real losses must be repaired before the chain gives up.
//!
//! Invariants: complete delivery over the whole run (the defense's
//! signature), no duplicate deliveries despite the premature
//! retransmissions, no reliable send abandoned, and the fault plane
//! really dropped messages inside the window.

use crate::runner::{scenario_network, scenario_workload, RunConfig, ScenarioOutcome, Tier};
use hypersub_core::invariant;
use hypersub_core::prelude::*;
use hypersub_workload::WorkloadGen;

const NODES: usize = 24;

fn rect_for(i: usize) -> Rect {
    let lo = ((i * 7) % 75) as f64;
    Rect::new(vec![lo, 0.0], vec![lo + 25.0, 100.0])
}

pub(crate) fn run(cfg: &RunConfig) -> hypersub_core::error::Result<ScenarioOutcome> {
    let publishes = match cfg.tier {
        Tier::Quick => 40usize,
        Tier::Full => 200,
    };
    let mut config = SystemConfig::default();
    if cfg.defense {
        config = config.with_retries();
        // One extra attempt of headroom: 6 transmissions span 15.75 s,
        // comfortably past the worst bloated round trip.
        config.retry.max_attempts = 6;
    }
    let mut net = scenario_network(NODES, cfg.seed, config, false)?;

    for i in 0..NODES {
        net.subscribe(i, 0, Subscription::new(rect_for(i)));
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    // Bufferbloat window: [t0+10, t0+40).
    let t0 = net.time();
    let bloat = LinkPolicy {
        drop_prob: 0.02,
        dup_prob: 0.0,
        extra_delay: SimTime::from_millis(400),
        jitter: SimTime::from_millis(800),
    };
    let from = t0 + SimTime::from_secs(10);
    let until = t0 + SimTime::from_secs(40);
    let mut fp = FaultPlane::new(cfg.seed ^ 0x510c_0000_0000_0004);
    fp.add_policy_window(bloat, from, until);
    net.install_fault_plane(fp);

    // One publish per second, starting before the window opens and
    // outlasting it.
    let mut wl = WorkloadGen::new(scenario_workload(), cfg.seed ^ 0x510c_0000_0000_0005);
    let mut t = t0;
    for _ in 0..publishes {
        t += SimTime::from_secs(1);
        net.schedule_publish(t, wl.random_node(NODES), 0, wl.event_point())?;
    }
    // Past the last chain's give-up horizon.
    net.run_until(t + SimTime::from_secs(40));

    let report = net.report();
    let verdicts = vec![
        invariant::complete_delivery(&report),
        invariant::no_duplicate_deliveries(&report),
        invariant::no_give_ups(&report),
        invariant::adversity_fired("fault-plane drops", report.net.fault_dropped),
    ];
    Ok(ScenarioOutcome::collect("slow_link", cfg, &net, verdicts))
}
