//! **churn_soak** — sustained ~30% churn, checkpoint-stamped so one
//! logical run spans several CI invocations, against healing + retries.
//!
//! The run is split into fixed segments. Every segment ends in a
//! [`Network::snapshot`], and [`run_segment`] accepts the previous
//! segment's bytes — so a driver (the `scenario` bench binary, or CI
//! with per-segment stamp files) can execute one segment per invocation
//! and still produce the *same* digest and verdicts as an uninterrupted
//! run. [`run`] itself loops the segments in-process, exercising the
//! restore path on every single run.
//!
//! Schedule per segment: a [`ChurnPlan`] holds ~31% of the
//! non-subscriber pool down, rotating the failed set every few seconds,
//! while subscribers keep publishing. The final segment stops the churn
//! (whoever is down at that point *stays* down), permanently fails the
//! two most state-loaded survivors, waits out a healing window, and
//! publishes probes.
//!
//! Invariants: every probe pair delivered after the churn stops, no
//! duplicates anywhere, bounded retry give-up rate, and the churn
//! actually fired.

use crate::runner::{
    most_loaded, scenario_network, scenario_workload, subscribe_staggered_bands, RunConfig,
    ScenarioOutcome, Tier,
};
use hypersub_core::invariant;
use hypersub_core::prelude::*;
use hypersub_workload::{ChurnPlan, WaveKind, WorkloadGen};

const NODES: usize = 40;
const SUBSCRIBERS: usize = 8;
const TARGET_DOWN: usize = 10; // ~31% of the 32-node eligible pool
const SETTLE: SimTime = SimTime::from_secs(10);

/// The result of one segment: either a checkpoint to feed into the next
/// segment, or the finished outcome.
#[derive(Debug)]
pub enum SoakStep {
    /// The segment ended mid-run; resume the next segment from these
    /// snapshot bytes.
    Checkpoint(Vec<u8>),
    /// The final segment completed and evaluated the invariants.
    Done(Box<ScenarioOutcome>),
}

/// Number of segments (the last one evaluates) for a tier.
pub fn segment_count(tier: Tier) -> usize {
    match tier {
        Tier::Quick => 4,
        Tier::Full => 10,
    }
}

fn segment_len(tier: Tier) -> SimTime {
    match tier {
        Tier::Quick => SimTime::from_secs(40),
        Tier::Full => SimTime::from_secs(120),
    }
}

fn config_for(cfg: &RunConfig) -> SystemConfig {
    if cfg.defense {
        // Healing only: the fail-stop reroute path plus replication +
        // leases are the churn defense. (Arming the ack/retransmit layer
        // under 31% churn multiplies every dead-destination send into a
        // backoff chain of rerouted chains — tens of millions of
        // messages that add wall-clock, not coverage.)
        SystemConfig::default().with_self_healing()
    } else {
        SystemConfig::default()
    }
}

/// The deterministic publish schedule for `[from, until)`, regenerated
/// from scratch on every invocation so a resumed segment schedules
/// exactly the publishes an uninterrupted run would have.
fn publishes_between(
    cfg: &RunConfig,
    from: SimTime,
    until: SimTime,
) -> Vec<(SimTime, usize, Point)> {
    let mut wl = WorkloadGen::new(scenario_workload(), cfg.seed ^ 0x50a4_0000_0a10_c42b);
    let mut t = SETTLE;
    let mut out = Vec::new();
    loop {
        t += wl.scaled_interarrival(2.0);
        if t >= until {
            return out;
        }
        let node = wl.random_node(SUBSCRIBERS);
        let p = wl.event_point();
        if t >= from {
            out.push((t, node, p));
        }
    }
}

/// Rebuilds the churn plan and fast-forwards it to `upto`, discarding
/// the actions a previous segment already applied.
fn plan_at(cfg: &RunConfig, upto: SimTime) -> ChurnPlan {
    let mut plan = ChurnPlan::new(
        (SUBSCRIBERS..NODES).collect(),
        TARGET_DOWN,
        SimTime::from_secs(3),
        SETTLE + SimTime::from_secs(2),
        cfg.seed ^ 0xc442_0000_0000_0001,
    );
    plan.actions_until(upto);
    plan
}

/// Runs one segment. `segment` counts from 0; pass the previous
/// segment's [`SoakStep::Checkpoint`] bytes as `resume` for every
/// segment after the first.
pub fn run_segment(
    cfg: &RunConfig,
    segment: usize,
    resume: Option<&[u8]>,
) -> hypersub_core::error::Result<SoakStep> {
    let segments = segment_count(cfg.tier);
    assert!(segment < segments, "segment {segment} out of range");
    let seg_len = segment_len(cfg.tier);
    let seg_start = SimTime(SETTLE.0 + seg_len.0 * segment as u64);
    let seg_end = SimTime(SETTLE.0 + seg_len.0 * (segment + 1) as u64);

    let mut net = match resume {
        Some(bytes) => {
            assert!(segment > 0, "first segment cannot resume");
            Network::restore(bytes)?
        }
        None => {
            assert_eq!(segment, 0, "segment {segment} needs a checkpoint");
            let mut net = scenario_network(NODES, cfg.seed, config_for(cfg), true)?;
            net.enable_maintenance();
            subscribe_staggered_bands(&mut net, SUBSCRIBERS);
            net.run_until(SETTLE);
            net
        }
    };
    let mut plan = plan_at(cfg, seg_start);

    for (at, node, p) in publishes_between(cfg, seg_start, seg_end) {
        net.schedule_publish(at, node, 0, p)?;
    }

    let last = segment == segments - 1;
    // The last segment churns only its first half, then goes calm.
    let churn_until = if last {
        SimTime(seg_start.0 + seg_len.0 / 2)
    } else {
        seg_end
    };
    let mut churned = 0u64;
    for a in plan.actions_until(churn_until) {
        net.run_until(a.at);
        match a.kind {
            WaveKind::Leave => net.fail(a.node)?,
            WaveKind::Join => net.revive(a.node)?,
        }
        churned += 1;
    }

    if !last {
        net.run_until(seg_end);
        return Ok(SoakStep::Checkpoint(net.snapshot()?));
    }

    // Final segment: freeze the membership (whoever is down stays down),
    // permanently fail the two hottest surviving state holders, heal,
    // probe.
    net.run_until(churn_until);
    let down: Vec<usize> = plan.down().collect();
    let victims = most_loaded(&net, (SUBSCRIBERS..NODES).filter(|n| !down.contains(n)), 2);
    for &(_, v) in &victims {
        net.fail(v)?;
        churned += 1;
    }
    net.run_until(net.time() + SimTime::from_secs(40));

    let mut wl = WorkloadGen::new(scenario_workload(), cfg.seed ^ 0x50a4_0000_0b10_c42b);
    let mut probe_ids = Vec::new();
    let mut t = net.time();
    for _ in 0..12 {
        t += SimTime::from_secs(1);
        probe_ids.push(net.schedule_publish(
            t,
            wl.random_node(SUBSCRIBERS),
            0,
            wl.event_point(),
        )?);
    }
    net.run_until(t + SimTime::from_secs(30));

    let report = net.report();
    let verdicts = vec![
        invariant::probes_delivered(&net.event_stats(), &probe_ids),
        invariant::no_duplicate_deliveries(&report),
        invariant::bounded_give_up_rate(&report, 0.05),
        invariant::adversity_fired("membership changes", churned),
    ];
    Ok(SoakStep::Done(Box::new(ScenarioOutcome::collect(
        "churn_soak",
        cfg,
        &net,
        verdicts,
    ))))
}

/// Runs every segment in-process, checkpointing and restoring between
/// them — the uninterrupted entry point used by `Scenario::run`.
pub(crate) fn run(cfg: &RunConfig) -> hypersub_core::error::Result<ScenarioOutcome> {
    let mut checkpoint: Option<Vec<u8>> = None;
    for segment in 0..segment_count(cfg.tier) {
        match run_segment(cfg, segment, checkpoint.as_deref())? {
            SoakStep::Checkpoint(bytes) => checkpoint = Some(bytes),
            SoakStep::Done(outcome) => return Ok(*outcome),
        }
    }
    unreachable!("the last segment always returns Done")
}
