//! `shootout` — run the five-system comparison and emit `SHOOTOUT.json`.
//!
//! ```text
//! shootout run --all [--quick] [--seed S] [--out PATH] [--out-dir DIR] [--expect REF]
//! shootout run --system NAME [--quick] [--seed S] [--out PATH]
//! ```
//!
//! Exit codes: 0 success, 1 equivalence violation or digest drift
//! against `--expect`, 2 usage error.

use hypersub_shootout::{
    all_systems, digests_from_json, render_table, run_rung, shootout_json, system_by_name,
    RungOutcome, System, FULL_LADDER, QUICK_LADDER,
};
use std::process::ExitCode;

struct Args {
    systems: Vec<Box<dyn System>>,
    quick: bool,
    seed: u64,
    out: Option<String>,
    out_dir: Option<String>,
    expect: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: shootout run (--all | --system NAME) [--quick] [--seed S] \
         [--out PATH] [--out-dir DIR] [--expect REF.json]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) != Some("run") {
        return Err("expected subcommand `run`".to_string());
    }
    let mut args = Args {
        systems: Vec::new(),
        quick: false,
        seed: 7,
        out: None,
        out_dir: None,
        expect: None,
    };
    let mut all = false;
    let mut it = argv[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--quick" | "-q" => args.quick = true,
            "--system" => {
                let name = it.next().ok_or("--system needs a name")?;
                let sys = system_by_name(name).ok_or_else(|| format!("unknown system `{name}`"))?;
                args.systems.push(sys);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--out-dir" => {
                args.out_dir = Some(it.next().ok_or("--out-dir needs a path")?.clone());
            }
            "--expect" => {
                args.expect = Some(it.next().ok_or("--expect needs a path")?.clone());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if all {
        args.systems = all_systems();
    }
    if args.systems.is_empty() {
        return Err("pick --all or at least one --system".to_string());
    }
    Ok(args)
}

/// Compares this run's deterministic digests against a pinned reference
/// document; returns drift descriptions.
fn digest_drift(doc: &str, reference: &str) -> Vec<String> {
    let got = digests_from_json(doc);
    let want = digests_from_json(reference);
    let mut drift = Vec::new();
    for (sys, nodes, d) in &want {
        match got.iter().find(|(s, n, _)| s == sys && n == nodes) {
            Some((_, _, g)) if g == d => {}
            Some((_, _, g)) => drift.push(format!("{sys} @ {nodes} nodes: digest {g}, pinned {d}")),
            None => drift.push(format!("{sys} @ {nodes} nodes: missing from this run")),
        }
    }
    drift
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shootout: {e}");
            return usage();
        }
    };
    let ladder = if args.quick {
        QUICK_LADDER
    } else {
        FULL_LADDER
    };
    let tier = if args.quick { "quick" } else { "full" };
    let mut outcomes: Vec<RungOutcome> = Vec::new();
    for &rung in ladder {
        let outcome = match run_rung(&args.systems, rung, args.seed) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("shootout: rung {rung:?} failed: {e}");
                return ExitCode::from(2);
            }
        };
        println!("{}", render_table(&outcome));
        for f in &outcome.failures {
            eprintln!("EQUIVALENCE FAILURE: {f}");
        }
        outcomes.push(outcome);
    }
    let doc = shootout_json(args.seed, tier, &outcomes);
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("shootout: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    } else {
        println!("{doc}");
    }
    if let Some(dir) = &args.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("shootout: cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        for o in &outcomes {
            for r in &o.runs {
                let path = format!("{dir}/REPORT_{}_{}.json", r.system, r.nodes);
                if let Err(e) = std::fs::write(&path, r.report.to_json()) {
                    eprintln!("shootout: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        println!("wrote per-system reports to {dir}/");
    }
    let mut failed = !outcomes.iter().all(|o| o.ok());
    if let Some(refpath) = &args.expect {
        match std::fs::read_to_string(refpath) {
            Ok(reference) => {
                let drift = digest_drift(&doc, &reference);
                if drift.is_empty() {
                    println!("digests match pinned reference {refpath}");
                } else {
                    for d in drift {
                        eprintln!("DIGEST DRIFT: {d}");
                    }
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("shootout: cannot read --expect {refpath}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
