//! The baseline shoot-out: five pub/sub systems, one deterministic
//! comparison harness.
//!
//! The paper's central claim is comparative — HyperSub beats
//! rendezvous-point and attribute-range DHT designs on load concentration
//! and installation cost (§2, §5). This crate turns the repo into the
//! apparatus that can actually produce that comparison. A [`System`]
//! abstracts "build a network, install the workload's subscriptions,
//! publish its events, emit a [`Report`]", and five implementations run
//! over the **same** seeded workload stream and the **same** Chord
//! substrate:
//!
//! * `hypersub` — the paper's system (`hypersub_core::sim::Network`).
//! * `rendezvous` — Ferry-style single rendezvous point.
//! * `attr_ring` — attribute-range replication on the ring (DEBS'04).
//! * `subgroup` — subscription subgrouping (after arXiv 1611.08743).
//! * `gossip` — flood-to-all-brokers strawman (after arXiv 2207.06369).
//!
//! ## Fairness rules
//!
//! Every system sees identical inputs, enforced structurally rather than
//! by convention:
//!
//! 1. **Same substrate.** All systems build the King-like topology, ring
//!    ids, and simulator RNG from the same master seed with the same
//!    derivations (`Network::build` and `BaselineNetBuilder::build_with`
//!    share them), so node `i` has the same Chord id and the same link
//!    latencies everywhere.
//! 2. **Same workload.** One `WorkloadGen` per run, seeded `seed ^
//!    0xabcd`, consumed in the same call order: all subscriptions
//!    (node-major), then per event `random_node`, `event_point`,
//!    `interarrival`.
//! 3. **Same cost model.** Wire sizes come from the shared
//!    `hypersub_core::msg` constants (header 20 B, event 100 B, SubID
//!    9 B), pinned by `tests/wire_golden.rs`.
//!
//! The delivery-equivalence oracle is exact but compares *canonical*
//! relations: raw [`SubId`]s are not stable across systems (HyperSub's
//! per-node iid counter also numbers zone repositories and hosted
//! migrations, so a subscribing node that stores a zone repo interleaves
//! those allocations with its local subscription iids). Every driver
//! therefore records the `SubId` each `subscribe` call returns, in the
//! shared workload order; subscription *k* of the run is ordinal *k* in
//! every system, and cross-system equivalence demands the identical
//! event → ordinal relation. Within one system the raw
//! delivered-equals-expected check still runs on `SubId`s.

use hypersub_baselines::attr_ring::AttrRingNode;
use hypersub_baselines::common::{BaselineNetBuilder, BaselineNode};
use hypersub_baselines::gossip::GossipNode;
use hypersub_baselines::rendezvous::RendezvousNode;
use hypersub_baselines::subgroup::SubgroupNode;
use hypersub_chord::ChordState;
use hypersub_core::config::SystemConfig;
use hypersub_core::error::Result;
use hypersub_core::metrics::EventStats;
use hypersub_core::model::{Registry, SubId};
use hypersub_core::report::Report;
use hypersub_core::sim::{Network, TopologyKind};
use hypersub_lph::Point;
use hypersub_simnet::SimTime;
use hypersub_stats::{LoadDist, Table};
use hypersub_workload::{WorkloadGen, WorkloadSpec};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One rung of the size ladder: (nodes, subs per node, events).
pub type Rung = (usize, usize, usize);

/// Quick tier: the 1k-node smoke rung CI runs on every push.
pub const QUICK_LADDER: &[Rung] = &[(1_000, 4, 200)];

/// Full tier: the 8k/32k rungs `run_experiments.sh` runs. The 32k rung
/// scales subscriptions and events down to keep the attribute-ring
/// system's O(arc-length) installation within a workstation budget.
pub const FULL_LADDER: &[Rung] = &[(8_000, 4, 800), (32_000, 2, 400)];

/// Parameters of one shoot-out run (one system × one rung).
#[derive(Debug, Clone)]
pub struct ShootoutParams {
    /// Network size.
    pub nodes: usize,
    /// Master seed (substrate and workload derive from it).
    pub seed: u64,
    /// Target mean RTT of the King-like topology.
    pub mean_rtt: SimTime,
    /// The workload (Table 1 shape; `subs_per_node`/`events` set by the
    /// rung).
    pub spec: WorkloadSpec,
}

impl ShootoutParams {
    /// Builds parameters for one rung of the ladder.
    pub fn new(rung: Rung, seed: u64) -> Self {
        let (nodes, subs_per_node, events) = rung;
        let mut spec = WorkloadSpec::paper_table1();
        spec.subs_per_node = subs_per_node;
        spec.events = events;
        Self {
            nodes,
            seed,
            mean_rtt: SimTime::from_millis(180),
            spec,
        }
    }
}

/// The outcome of running one system on one rung.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// System name.
    pub system: &'static str,
    /// Network size.
    pub nodes: usize,
    /// Subscriptions per node.
    pub subs_per_node: usize,
    /// Events published.
    pub events: usize,
    /// Full observability report (digest, counters, histograms).
    pub report: Report,
    /// Per-event statistics.
    pub event_stats: Vec<EventStats>,
    /// Distinct `(event, subscriber)` pairs actually delivered, sorted.
    pub delivered: Vec<(u64, SubId)>,
    /// Ground-truth `(event, subscriber)` pairs, sorted.
    pub expected: Vec<(u64, SubId)>,
    /// The `SubId` each `subscribe` call returned, in workload order.
    /// Index *k* is subscription ordinal *k*; because every system
    /// consumes the same workload stream, ordinals align across systems
    /// even where raw iid numbering does not.
    pub sub_ids: Vec<SubId>,
    /// Per-node stored-entry loads.
    pub loads: Vec<u64>,
    /// Messages spent before the first event (subscription installation).
    pub install_msgs: u64,
    /// Installation bytes.
    pub install_bytes: u64,
    /// Wall-clock duration of the run (non-deterministic; excluded from
    /// digests and comparisons).
    pub wall_secs: f64,
}

impl SystemRun {
    /// Whether this run delivered exactly the ground-truth relation.
    pub fn equivalent(&self) -> bool {
        self.delivered == self.expected
    }

    /// Rewrites an `(event, SubId)` relation into the system-independent
    /// `(event, subscription ordinal)` form, using this run's
    /// [`SystemRun::sub_ids`]. A pair whose `SubId` was never returned by
    /// a `subscribe` call maps to `u32::MAX` (it cannot match any other
    /// system's relation, so it surfaces as an equivalence failure rather
    /// than being silently dropped).
    fn canonicalize(&self, pairs: &[(u64, SubId)]) -> Vec<(u64, u32)> {
        let ordinals: HashMap<SubId, u32> = self
            .sub_ids
            .iter()
            .enumerate()
            .map(|(k, &sid)| (sid, k as u32))
            .collect();
        let mut out: Vec<(u64, u32)> = pairs
            .iter()
            .map(|&(ev, sid)| (ev, ordinals.get(&sid).copied().unwrap_or(u32::MAX)))
            .collect();
        out.sort_unstable();
        out
    }

    /// The delivered relation in canonical `(event, ordinal)` form.
    pub fn delivered_canonical(&self) -> Vec<(u64, u32)> {
        self.canonicalize(&self.delivered)
    }

    /// The ground-truth relation in canonical `(event, ordinal)` form.
    pub fn expected_canonical(&self) -> Vec<(u64, u32)> {
        self.canonicalize(&self.expected)
    }

    /// Per-node load distribution summary.
    pub fn load_dist(&self) -> LoadDist {
        LoadDist::from_loads(&self.loads)
    }

    /// Mean of per-event max hops.
    pub fn avg_max_hops(&self) -> f64 {
        if self.event_stats.is_empty() {
            return 0.0;
        }
        self.event_stats
            .iter()
            .map(|e| e.max_hops as f64)
            .sum::<f64>()
            / self.event_stats.len() as f64
    }

    /// Max hops over all deliveries.
    pub fn max_hops(&self) -> u32 {
        self.event_stats
            .iter()
            .map(|e| e.max_hops)
            .max()
            .unwrap_or(0)
    }

    /// Bytes spent after installation (event routing + delivery).
    pub fn event_bytes(&self) -> u64 {
        self.report
            .net
            .total_bytes
            .saturating_sub(self.install_bytes)
    }

    /// Event-phase bytes per published event.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        self.event_bytes() as f64 / self.events as f64
    }

    /// Simulator events processed per wall-clock second
    /// (non-deterministic; reported for throughput context only).
    pub fn sim_events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.report.steps as f64 / self.wall_secs
    }
}

/// A pub/sub system the shoot-out can run: build a network on the shared
/// substrate, install the shared workload, publish its events, and
/// report. Implementations must follow the crate-level fairness rules.
pub trait System {
    /// Short machine-readable name (JSON key, CLI argument).
    fn name(&self) -> &'static str;

    /// Runs the system once with the given parameters.
    fn run(&self, p: &ShootoutParams) -> Result<SystemRun>;
}

/// All five systems, in canonical order (HyperSub first).
pub fn all_systems() -> Vec<Box<dyn System>> {
    vec![
        Box::new(HyperSubSystem),
        Box::new(RendezvousSystem),
        Box::new(AttrRingSystem),
        Box::new(SubgroupSystem),
        Box::new(GossipSystem),
    ]
}

/// Looks a system up by its [`System::name`].
pub fn system_by_name(name: &str) -> Option<Box<dyn System>> {
    all_systems().into_iter().find(|s| s.name() == name)
}

/// The paper's system, driven through `Network`.
pub struct HyperSubSystem;

impl System for HyperSubSystem {
    fn name(&self) -> &'static str {
        "hypersub"
    }

    fn run(&self, p: &ShootoutParams) -> Result<SystemRun> {
        let start = Instant::now();
        let registry = Registry::new(vec![p.spec.scheme_def(0)]);
        let mut net = Network::builder(p.nodes)
            .registry(registry)
            .config(SystemConfig::default())
            .topology(TopologyKind::KingLike(p.mean_rtt))
            .seed(p.seed)
            .build()?;
        let mut gen = WorkloadGen::new(p.spec.clone(), p.seed ^ 0xabcd);
        let mut sub_ids = Vec::with_capacity(p.nodes * p.spec.subs_per_node);
        for node in 0..p.nodes {
            for _ in 0..p.spec.subs_per_node {
                sub_ids.push(net.subscribe(node, 0, gen.subscription()));
            }
        }
        net.run_to_quiescence();
        let install_msgs = net.net().total_msgs();
        let install_bytes = net.net().total_bytes();
        let mut published: Vec<(u64, Point)> = Vec::with_capacity(p.spec.events);
        let mut t = net.time() + SimTime::from_secs(1);
        for _ in 0..p.spec.events {
            let node = gen.random_node(p.nodes);
            let point = gen.event_point();
            let id = net.schedule_publish(t, node, 0, point.clone())?;
            published.push((id, point));
            t += gen.interarrival();
        }
        net.run_to_quiescence();
        let expected = expected_pairs(&published, |pt| net.expected_matches(0, pt));
        let delivered = delivered_pairs(net.deliveries());
        Ok(SystemRun {
            system: self.name(),
            nodes: p.nodes,
            subs_per_node: p.spec.subs_per_node,
            events: p.spec.events,
            report: net.report(),
            event_stats: net.event_stats(),
            delivered,
            expected,
            sub_ids,
            loads: net.node_loads(),
            install_msgs,
            install_bytes,
            wall_secs: start.elapsed().as_secs_f64(),
        })
    }
}

/// Shared driver for every [`BaselineNode`] system: identical phase
/// structure and workload call order to the HyperSub driver above.
fn drive_baseline<N, F>(name: &'static str, p: &ShootoutParams, make: F) -> Result<SystemRun>
where
    N: BaselineNode,
    F: FnMut(ChordState) -> N,
{
    let start = Instant::now();
    let mut net = BaselineNetBuilder::new(p.nodes)
        .seed(p.seed)
        .king_like(p.mean_rtt)
        .build_with(make)?;
    let mut gen = WorkloadGen::new(p.spec.clone(), p.seed ^ 0xabcd);
    let mut sub_ids = Vec::with_capacity(p.nodes * p.spec.subs_per_node);
    for node in 0..p.nodes {
        for _ in 0..p.spec.subs_per_node {
            sub_ids.push(net.subscribe(node, gen.subscription())?);
        }
    }
    net.run_to_quiescence();
    let install_msgs = net.net().total_msgs();
    let install_bytes = net.net().total_bytes();
    let mut published: Vec<(u64, Point)> = Vec::with_capacity(p.spec.events);
    let mut t = net.time() + SimTime::from_secs(1);
    for _ in 0..p.spec.events {
        let node = gen.random_node(p.nodes);
        let point = gen.event_point();
        let id = net.schedule_publish(t, node, point.clone())?;
        published.push((id, point));
        t += gen.interarrival();
    }
    net.run_to_quiescence();
    let expected = expected_pairs(&published, |pt| net.expected_matches(pt));
    let delivered = delivered_pairs(net.deliveries());
    Ok(SystemRun {
        system: name,
        nodes: p.nodes,
        subs_per_node: p.spec.subs_per_node,
        events: p.spec.events,
        report: net.report(),
        event_stats: net.event_stats(),
        delivered,
        expected,
        sub_ids,
        loads: net.node_loads(),
        install_msgs,
        install_bytes,
        wall_secs: start.elapsed().as_secs_f64(),
    })
}

fn expected_pairs(
    published: &[(u64, Point)],
    mut matches: impl FnMut(&Point) -> Vec<SubId>,
) -> Vec<(u64, SubId)> {
    let mut pairs = Vec::new();
    for (id, point) in published {
        for sid in matches(point) {
            pairs.push((*id, sid));
        }
    }
    pairs.sort_unstable();
    pairs
}

fn delivered_pairs(deliveries: &[hypersub_core::metrics::DeliveryRecord]) -> Vec<(u64, SubId)> {
    let mut pairs: Vec<(u64, SubId)> = deliveries.iter().map(|d| (d.event, d.subid)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Ferry-style single rendezvous point.
pub struct RendezvousSystem;

impl System for RendezvousSystem {
    fn name(&self) -> &'static str {
        "rendezvous"
    }

    fn run(&self, p: &ShootoutParams) -> Result<SystemRun> {
        let scheme = p.spec.scheme_name.clone();
        drive_baseline(self.name(), p, |st| RendezvousNode::new(st, &scheme))
    }
}

/// Attribute-range replication on the ring.
pub struct AttrRingSystem;

impl System for AttrRingSystem {
    fn name(&self) -> &'static str {
        "attr_ring"
    }

    fn run(&self, p: &ShootoutParams) -> Result<SystemRun> {
        let scheme = p.spec.scheme_name.clone();
        let space = p.spec.scheme_def(0).space.clone();
        drive_baseline(self.name(), p, |st| {
            AttrRingNode::new(st, &scheme, space.clone())
        })
    }
}

/// Subscription subgrouping (arXiv 1611.08743 style).
pub struct SubgroupSystem;

impl System for SubgroupSystem {
    fn name(&self) -> &'static str {
        "subgroup"
    }

    fn run(&self, p: &ShootoutParams) -> Result<SystemRun> {
        let scheme = p.spec.scheme_name.clone();
        let space = p.spec.scheme_def(0).space.clone();
        drive_baseline(self.name(), p, |st| {
            SubgroupNode::new(st, &scheme, space.clone())
        })
    }
}

/// Flood-to-all-brokers strawman (SmartPubSub style).
pub struct GossipSystem;

impl System for GossipSystem {
    fn name(&self) -> &'static str {
        "gossip"
    }

    fn run(&self, p: &ShootoutParams) -> Result<SystemRun> {
        drive_baseline(self.name(), p, GossipNode::new)
    }
}

/// All systems' results on one rung, plus the equivalence verdict.
#[derive(Debug)]
pub struct RungOutcome {
    /// The rung that ran.
    pub rung: Rung,
    /// One result per system, in run order.
    pub runs: Vec<SystemRun>,
    /// Human-readable equivalence failures; empty means the oracle
    /// passed for every system.
    pub failures: Vec<String>,
}

impl RungOutcome {
    /// Whether the delivery-equivalence oracle passed everywhere.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `systems` on one rung and checks the delivery-equivalence
/// oracle: every system must deliver exactly its own ground truth, with
/// zero duplicates, and all systems' `(event, subscriber)` relations
/// must be identical.
pub fn run_rung(systems: &[Box<dyn System>], rung: Rung, seed: u64) -> Result<RungOutcome> {
    let p = ShootoutParams::new(rung, seed);
    let mut runs = Vec::with_capacity(systems.len());
    for s in systems {
        runs.push(s.run(&p)?);
    }
    let mut failures = Vec::new();
    for r in &runs {
        if !r.equivalent() {
            failures.push(format!(
                "{}: delivered {} pairs, ground truth {}",
                r.system,
                r.delivered.len(),
                r.expected.len()
            ));
        }
        let dups: usize = r.event_stats.iter().map(|e| e.duplicates).sum();
        if dups > 0 {
            failures.push(format!("{}: {dups} duplicate deliveries", r.system));
        }
    }
    // Cross-system comparison runs on the canonical (event, ordinal)
    // form — raw SubIds legitimately differ (see crate docs).
    if let Some(first) = runs.first() {
        let first_expected = first.expected_canonical();
        let first_delivered = first.delivered_canonical();
        for r in &runs[1..] {
            if r.expected_canonical() != first_expected {
                failures.push(format!(
                    "{}: ground-truth relation differs from {} (substrate divergence)",
                    r.system, first.system
                ));
            }
            if r.delivered_canonical() != first_delivered {
                failures.push(format!(
                    "{}: delivered relation differs from {}",
                    r.system, first.system
                ));
            }
        }
    }
    Ok(RungOutcome {
        rung,
        runs,
        failures,
    })
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Renders the unified `SHOOTOUT.json` document. Everything in it is
/// deterministic for a fixed seed except each run's `"timing"` object
/// (wall-clock throughput), which exists for context and is ignored by
/// [`digests_from_json`] comparisons.
pub fn shootout_json(seed: u64, tier: &str, outcomes: &[RungOutcome]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"tier\": \"{tier}\",");
    let all_ok = outcomes.iter().all(|o| o.ok());
    let _ = writeln!(s, "  \"equivalence_ok\": {all_ok},");
    s.push_str("  \"runs\": [\n");
    let total = outcomes.iter().map(|o| o.runs.len()).sum::<usize>();
    let mut i = 0;
    for o in outcomes {
        for r in &o.runs {
            i += 1;
            let load = r.load_dist();
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"system\": \"{}\",", r.system);
            let _ = writeln!(s, "      \"nodes\": {},", r.nodes);
            let _ = writeln!(s, "      \"subs_per_node\": {},", r.subs_per_node);
            let _ = writeln!(s, "      \"events\": {},", r.events);
            let _ = writeln!(s, "      \"digest\": \"{:#018x}\",", r.report.digest);
            let _ = writeln!(s, "      \"equivalence\": {},", r.equivalent());
            let _ = writeln!(s, "      \"expected_pairs\": {},", r.expected.len());
            let _ = writeln!(s, "      \"delivered_pairs\": {},", r.delivered.len());
            let dups: usize = r.event_stats.iter().map(|e| e.duplicates).sum();
            let _ = writeln!(s, "      \"duplicates\": {dups},");
            let _ = writeln!(s, "      \"avg_max_hops\": {},", json_f64(r.avg_max_hops()));
            let _ = writeln!(s, "      \"max_hops\": {},", r.max_hops());
            let _ = writeln!(s, "      \"install_msgs\": {},", r.install_msgs);
            let _ = writeln!(s, "      \"install_bytes\": {},", r.install_bytes);
            let _ = writeln!(s, "      \"total_msgs\": {},", r.report.net.total_msgs);
            let _ = writeln!(s, "      \"total_bytes\": {},", r.report.net.total_bytes);
            let _ = writeln!(
                s,
                "      \"bytes_per_event\": {},",
                json_f64(r.bytes_per_event())
            );
            let _ = writeln!(
                s,
                "      \"load\": {{ \"p50\": {}, \"p99\": {}, \"max\": {}, \"gini\": {} }},",
                json_f64(load.p50),
                json_f64(load.p99),
                json_f64(load.max),
                json_f64(load.gini)
            );
            let _ = writeln!(
                s,
                "      \"timing\": {{ \"wall_secs\": {}, \"sim_events_per_sec\": {} }}",
                json_f64(r.wall_secs),
                json_f64(r.sim_events_per_sec())
            );
            s.push_str(if i == total { "    }\n" } else { "    },\n" });
        }
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts the deterministic `(system, nodes, digest)` triples from a
/// `SHOOTOUT.json` document (this crate's own format), for digest-drift
/// comparison against a pinned reference.
pub fn digests_from_json(doc: &str) -> Vec<(String, u64, String)> {
    let mut out = Vec::new();
    let (mut system, mut nodes) = (None::<String>, None::<u64>);
    for line in doc.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("\"system\": \"") {
            system = v.strip_suffix("\",").map(str::to_string);
        } else if let Some(v) = line.strip_prefix("\"nodes\": ") {
            nodes = v.trim_end_matches(',').parse().ok();
        } else if let Some(v) = line.strip_prefix("\"digest\": \"") {
            if let (Some(sys), Some(n)) = (system.take(), nodes.take()) {
                if let Some(d) = v.strip_suffix("\",") {
                    out.push((sys, n, d.to_string()));
                }
            }
        }
    }
    out
}

/// Renders one rung's side-by-side comparison table.
pub fn render_table(outcome: &RungOutcome) -> Table {
    let (nodes, subs_per_node, events) = outcome.rung;
    let mut t = Table::new(
        format!("Shoot-out: {nodes} nodes, {subs_per_node} subs/node, {events} events"),
        &[
            "system",
            "equiv",
            "avg max hops",
            "install msgs",
            "KB/event",
            "load p50",
            "load p99",
            "load max",
            "gini",
            "sim ev/s",
        ],
    );
    for r in &outcome.runs {
        let load = r.load_dist();
        t.row(&[
            r.system.to_string(),
            if r.equivalent() { "yes" } else { "NO" }.to_string(),
            format!("{:.1}", r.avg_max_hops()),
            r.install_msgs.to_string(),
            format!("{:.1}", r.bytes_per_event() / 1024.0),
            format!("{:.0}", load.p50),
            format!("{:.0}", load.p99),
            format!("{:.0}", load.max),
            format!("{:.3}", load.gini),
            format!("{:.0}", r.sim_events_per_sec()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ShootoutParams {
        let mut p = ShootoutParams::new((32, 2, 12), 11);
        p.spec.events = 12;
        p
    }

    #[test]
    fn five_systems_registered() {
        let names: Vec<&str> = all_systems().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["hypersub", "rendezvous", "attr_ring", "subgroup", "gossip"]
        );
        assert!(system_by_name("gossip").is_some());
        assert!(system_by_name("nope").is_none());
    }

    #[test]
    fn tiny_rung_is_equivalent_across_all_systems() {
        let out = run_rung(&all_systems(), (32, 2, 12), 11).unwrap();
        assert!(out.ok(), "equivalence failures: {:?}", out.failures);
        assert_eq!(out.runs.len(), 5);
        assert!(
            !out.runs[0].expected.is_empty(),
            "workload must match something"
        );
    }

    #[test]
    fn runs_are_deterministic_for_fixed_seed() {
        let p = tiny_params();
        let a = GossipSystem.run(&p).unwrap();
        let b = GossipSystem.run(&p).unwrap();
        assert_eq!(a.report.digest, b.report.digest);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn json_roundtrips_digests() {
        let out = run_rung(&all_systems(), (24, 2, 6), 3).unwrap();
        let doc = shootout_json(3, "test", &[out]);
        let digests = digests_from_json(&doc);
        assert_eq!(digests.len(), 5);
        assert_eq!(digests[0].0, "hypersub");
        assert_eq!(digests[0].1, 24);
        assert!(digests.iter().all(|(_, _, d)| d.starts_with("0x")));
    }
}
