//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns the node states, the world (shared blackboard for
//! scenario scripts and metric sinks), the topology, the future-event list
//! and the network counters. Protocols implement [`Node`]; all their
//! interaction with the outside goes through [`Ctx`], which records sends
//! and timers that the engine then schedules with topology latency and
//! charges to [`crate::NetStats`].
//!
//! Determinism: all randomness flows from one seeded `SmallRng`, and the
//! event queue breaks ties by insertion order, so a run is a pure function
//! of `(nodes, world, topology, seed, scenario)`.

use crate::fault::{FaultPlane, Verdict};
use crate::queue::{EventQueue, SimEvent};
use crate::runtime::NodeRuntime;
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::{FlightRecorder, ProtoEvent, TraceEvent};
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A protocol message that knows its wire size and (optionally) which
/// application-level flow it belongs to.
pub trait Payload: Clone + std::fmt::Debug {
    /// Full on-the-wire size in bytes, including headers. The paper models
    /// event messages as 20 B packet header + 100 B event + 9 B per SubID.
    fn wire_size(&self) -> usize;

    /// Flow id for per-flow bandwidth accounting (e.g. the event id of a
    /// delivery message). `None` means unattributed control traffic.
    fn flow(&self) -> Option<u64> {
        None
    }
}

impl Payload for () {
    fn wire_size(&self) -> usize {
        0
    }
}

/// Per-node protocol logic, generic over the hosting runtime.
///
/// Handlers receive an `&mut R` where `R:`[`NodeRuntime`]`<M, W>`: the
/// simulator passes its [`Ctx`], a live transport passes its own runtime.
/// Dispatch is static (monomorphized per runtime), so the abstraction
/// costs the simulator hot path nothing.
pub trait Node<M: Payload, W>: Sized {
    /// Called when a message from node `from` arrives.
    fn on_message<R: NodeRuntime<M, W>>(&mut self, ctx: &mut R, from: usize, msg: M);

    /// Called when a timer scheduled with [`NodeRuntime::set_timer`] (or
    /// externally via [`Sim::schedule_timer`]) fires.
    fn on_timer<R: NodeRuntime<M, W>>(&mut self, _ctx: &mut R, _token: u64) {}

    /// Called when a message this node sent could not be delivered because
    /// the destination is down (fail-stop model: the notification arrives
    /// one propagation delay after the send, like a refused connection).
    /// Default: ignore.
    fn on_send_failed<R: NodeRuntime<M, W>>(&mut self, _ctx: &mut R, _dst: usize, _msg: M) {}
}

/// The API surface a node sees while handling an event.
pub struct Ctx<'a, M, W> {
    /// Index of the node currently executing.
    pub me: usize,
    /// Current simulation time.
    pub now: SimTime,
    /// Mutable access to the shared world (metrics sinks, scenario state).
    pub world: &'a mut W,
    /// Deterministic randomness.
    pub rng: &'a mut SmallRng,
    outbox: &'a mut Vec<(usize, M)>,
    timers: &'a mut Vec<(SimTime, u64)>,
    recorder: Option<&'a mut FlightRecorder>,
}

impl<M, W> Ctx<'_, M, W> {
    /// Sends `msg` to node `dst`; it arrives after the topology latency.
    /// Sending to self is allowed and arrives at the current time (after
    /// already-queued same-time events).
    pub fn send(&mut self, dst: usize, msg: M) {
        self.outbox.push((dst, msg));
    }

    /// Arms a timer to fire on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((delay, token));
    }

    /// True when a flight recorder is installed — lets protocols skip
    /// expensive event construction entirely.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.recorder.is_some()
    }

    /// Records a protocol event if a flight recorder is installed. The
    /// closure runs only when recording is on, so a disabled recorder
    /// costs a single branch.
    #[inline]
    pub fn trace(&mut self, f: impl FnOnce() -> ProtoEvent) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(self.now, self.me, TraceEvent::Proto(f()));
        }
    }
}

/// Complete engine state at a quiesce point, as captured by
/// [`Sim::export_state`]. Node states, the world, and the topology are
/// *not* included — they live above the engine and are captured (or
/// regenerated) by the layer that owns them.
#[derive(Debug, Clone)]
pub struct SimSnapshot<M> {
    /// Current simulation time.
    pub time: SimTime,
    /// Events processed so far.
    pub steps: u64,
    /// Liveness flags, one per node.
    pub alive: Vec<bool>,
    /// Raw state of the engine's xoshiro256++ stream.
    pub rng_state: [u64; 4],
    /// Network counters.
    pub net: NetStats,
    /// The fault plane, if one is installed.
    pub fault: Option<FaultPlane>,
    /// The flight recorder, if one is installed.
    pub recorder: Option<FlightRecorder>,
    /// Pending events as `(at, seq, event)`, sorted by pop order.
    pub queue_entries: Vec<(SimTime, u64, SimEvent<M>)>,
    /// The queue's next sequence number.
    pub queue_next_seq: u64,
}

impl<M: Encode> Encode for SimSnapshot<M> {
    fn encode(&self, w: &mut Writer) {
        self.time.encode(w);
        w.put_u64(self.steps);
        self.alive.encode(w);
        self.rng_state.encode(w);
        self.net.encode(w);
        self.fault.encode(w);
        self.recorder.encode(w);
        self.queue_entries.encode(w);
        w.put_u64(self.queue_next_seq);
    }
}

impl<M: Decode> Decode for SimSnapshot<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(SimSnapshot {
            time: SimTime::decode(r)?,
            steps: r.take_u64()?,
            alive: Vec::<bool>::decode(r)?,
            rng_state: <[u64; 4]>::decode(r)?,
            net: NetStats::decode(r)?,
            fault: Option::<FaultPlane>::decode(r)?,
            recorder: Option::<FlightRecorder>::decode(r)?,
            queue_entries: Vec::<(SimTime, u64, SimEvent<M>)>::decode(r)?,
            queue_next_seq: r.take_u64()?,
        })
    }
}

/// The simulator.
pub struct Sim<N, M: Payload, W> {
    nodes: Vec<N>,
    alive: Vec<bool>,
    world: W,
    topo: Arc<dyn Topology>,
    queue: EventQueue<M>,
    time: SimTime,
    net: NetStats,
    rng: SmallRng,
    fault: Option<FaultPlane>,
    outbox: Vec<(usize, M)>,
    timers: Vec<(SimTime, u64)>,
    steps: u64,
    recorder: Option<FlightRecorder>,
}

impl<N, M: Payload, W> Sim<N, M, W> {
    /// Creates a simulator over `nodes` (one per topology slot).
    ///
    /// # Panics
    /// Panics if `nodes.len() != topo.len()`.
    pub fn new(topo: Arc<dyn Topology>, nodes: Vec<N>, world: W, seed: u64) -> Self {
        assert_eq!(
            nodes.len(),
            topo.len(),
            "node count must match topology size"
        );
        let n = nodes.len();
        Self {
            nodes,
            alive: vec![true; n],
            world,
            topo,
            queue: EventQueue::new(),
            time: SimTime::ZERO,
            net: NetStats::new(n),
            rng: SmallRng::seed_from_u64(seed),
            fault: None,
            outbox: Vec::new(),
            timers: Vec::new(),
            steps: 0,
            recorder: None,
        }
    }

    /// Installs a flight recorder with the given ring-buffer capacity.
    /// Replaces any previous recorder. Recording never affects behavior —
    /// it only observes (see [`crate::trace`]).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn enable_recording(&mut self, capacity: usize) {
        self.recorder = Some(FlightRecorder::new(capacity));
    }

    /// Removes the recorder, returning the captured trace.
    pub fn disable_recording(&mut self) -> Option<FlightRecorder> {
        self.recorder.take()
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Mutable access to the installed flight recorder, if any.
    pub fn recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.recorder.as_mut()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulation time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Immutable node access.
    pub fn node(&self, i: usize) -> &N {
        &self.nodes[i]
    }

    /// Mutable node access (for setup; protocol work should go through
    /// [`Sim::with_node_ctx`] so sends get scheduled).
    pub fn node_mut(&mut self, i: usize) -> &mut N {
        &mut self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The shared world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable world access.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Network counters.
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// The topology.
    pub fn topology(&self) -> &Arc<dyn Topology> {
        &self.topo
    }

    /// Events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Marks a node as failed: its timers stop firing and messages to it
    /// are dropped (and counted in [`NetStats::dropped`]).
    pub fn fail(&mut self, node: usize) {
        self.alive[node] = false;
        if let Some(r) = self.recorder.as_mut() {
            r.record(self.time, node, TraceEvent::NodeFail);
        }
    }

    /// Brings a failed node back (state unchanged — protocols must re-join
    /// explicitly if they need fresh state).
    pub fn revive(&mut self, node: usize) {
        self.alive[node] = true;
        if let Some(r) = self.recorder.as_mut() {
            r.record(self.time, node, TraceEvent::NodeRevive);
        }
    }

    /// Whether a node is up.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Installs a fault plane; every subsequent non-self send is judged by
    /// it. Replaces any previously installed plane.
    pub fn install_fault_plane(&mut self, plane: FaultPlane) {
        self.fault = Some(plane);
    }

    /// Removes the fault plane, restoring an ideal network.
    pub fn clear_fault_plane(&mut self) -> Option<FaultPlane> {
        self.fault.take()
    }

    /// The installed fault plane, if any.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.fault.as_ref()
    }

    /// Mutable access to the installed fault plane (e.g. to schedule a
    /// partition mid-run).
    pub fn fault_plane_mut(&mut self) -> Option<&mut FaultPlane> {
        self.fault.as_mut()
    }

    /// Schedules a timer on `node` at absolute time `at` (scenario drivers
    /// use this to script subscribes/publishes).
    pub fn schedule_timer(&mut self, at: SimTime, node: usize, token: u64) {
        assert!(at >= self.time, "cannot schedule in the past");
        self.queue.schedule(at, SimEvent::Timer { node, token });
    }

    /// Runs `f` against node `i` with a full [`Ctx`] at the current time,
    /// then flushes any sends/timers it produced. This is how external
    /// drivers invoke protocol entry points (subscribe, publish)
    /// synchronously.
    pub fn with_node_ctx<R>(
        &mut self,
        i: usize,
        f: impl FnOnce(&mut N, &mut Ctx<'_, M, W>) -> R,
    ) -> R {
        let mut ctx = Ctx {
            me: i,
            now: self.time,
            world: &mut self.world,
            rng: &mut self.rng,
            outbox: &mut self.outbox,
            timers: &mut self.timers,
            recorder: self.recorder.as_mut(),
        };
        let r = f(&mut self.nodes[i], &mut ctx);
        self.flush(i);
        r
    }

    fn flush(&mut self, from: usize) {
        for (dst, msg) in self.outbox.drain(..) {
            let size = msg.wire_size();
            self.net.record_out(from, size, msg.flow());
            if let Some(r) = self.recorder.as_mut() {
                r.record(
                    self.time,
                    from,
                    TraceEvent::MsgSend {
                        dst,
                        bytes: size,
                        flow: msg.flow(),
                    },
                );
            }
            // Self-sends never cross the network, so faults don't apply.
            let verdict = match &mut self.fault {
                Some(fp) if dst != from => fp.judge(from, dst, self.time),
                _ => Verdict::Deliver {
                    extra: SimTime::ZERO,
                    dup_extra: None,
                },
            };
            match verdict {
                Verdict::DropLoss => {
                    // Silent loss: no SendFailed — recovery is on the
                    // protocol's ack/retry machinery.
                    self.net.record_fault_drop();
                    if let Some(r) = self.recorder.as_mut() {
                        r.record(
                            self.time,
                            from,
                            TraceEvent::MsgDropLoss {
                                dst,
                                flow: msg.flow(),
                            },
                        );
                    }
                }
                Verdict::DropPartition => {
                    self.net.record_partition_drop();
                    if let Some(r) = self.recorder.as_mut() {
                        r.record(
                            self.time,
                            from,
                            TraceEvent::MsgDropPartition {
                                dst,
                                flow: msg.flow(),
                            },
                        );
                    }
                }
                Verdict::Deliver { extra, dup_extra } => {
                    // Latency is only needed (and only paid for) when the
                    // message actually crosses the network; the fault
                    // plane's verdict uses its own RNG, so judging before
                    // the topology lookup changes nothing observable.
                    let lat = self.topo.latency(from, dst);
                    if let Some(dup) = dup_extra {
                        self.net.record_duplicate();
                        if let Some(r) = self.recorder.as_mut() {
                            r.record(
                                self.time,
                                from,
                                TraceEvent::MsgDuplicate {
                                    dst,
                                    flow: msg.flow(),
                                },
                            );
                        }
                        self.queue.schedule(
                            self.time + lat + dup,
                            SimEvent::Deliver {
                                src: from,
                                dst,
                                msg: msg.clone(),
                            },
                        );
                    }
                    self.queue.schedule(
                        self.time + lat + extra,
                        SimEvent::Deliver {
                            src: from,
                            dst,
                            msg,
                        },
                    );
                }
            }
        }
        for (delay, token) in self.timers.drain(..) {
            self.queue
                .schedule(self.time + delay, SimEvent::Timer { node: from, token });
        }
    }

    /// Processes one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool
    where
        N: Node<M, W>,
    {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "event queue went backwards");
        self.time = at;
        self.steps += 1;
        match ev {
            SimEvent::Deliver { src, dst, msg } => {
                if !self.alive[dst] {
                    self.net.record_drop();
                    if let Some(r) = self.recorder.as_mut() {
                        r.record(
                            self.time,
                            dst,
                            TraceEvent::MsgDropDead {
                                src,
                                flow: msg.flow(),
                            },
                        );
                    }
                    // Fail-stop notification back to a live sender.
                    if self.alive[src] && src != dst {
                        let back = self.topo.latency(dst, src);
                        self.queue.schedule(
                            self.time + back,
                            SimEvent::SendFailed {
                                origin: src,
                                dst,
                                msg,
                            },
                        );
                    }
                    return true;
                }
                self.net.record_in(dst, msg.wire_size());
                if let Some(r) = self.recorder.as_mut() {
                    r.record(
                        at,
                        dst,
                        TraceEvent::MsgDeliver {
                            src,
                            bytes: msg.wire_size(),
                            flow: msg.flow(),
                        },
                    );
                }
                let mut ctx = Ctx {
                    me: dst,
                    now: at,
                    world: &mut self.world,
                    rng: &mut self.rng,
                    outbox: &mut self.outbox,
                    timers: &mut self.timers,
                    recorder: self.recorder.as_mut(),
                };
                self.nodes[dst].on_message(&mut ctx, src, msg);
                self.flush(dst);
            }
            SimEvent::Timer { node, token } => {
                if !self.alive[node] {
                    return true;
                }
                let mut ctx = Ctx {
                    me: node,
                    now: at,
                    world: &mut self.world,
                    rng: &mut self.rng,
                    outbox: &mut self.outbox,
                    timers: &mut self.timers,
                    recorder: self.recorder.as_mut(),
                };
                self.nodes[node].on_timer(&mut ctx, token);
                self.flush(node);
            }
            SimEvent::SendFailed { origin, dst, msg } => {
                if !self.alive[origin] {
                    return true;
                }
                if let Some(r) = self.recorder.as_mut() {
                    r.record(
                        at,
                        origin,
                        TraceEvent::SendFailed {
                            dst,
                            flow: msg.flow(),
                        },
                    );
                }
                let mut ctx = Ctx {
                    me: origin,
                    now: at,
                    world: &mut self.world,
                    rng: &mut self.rng,
                    outbox: &mut self.outbox,
                    timers: &mut self.timers,
                    recorder: self.recorder.as_mut(),
                };
                self.nodes[origin].on_send_failed(&mut ctx, dst, msg);
                self.flush(origin);
            }
        }
        true
    }

    /// Runs until the queue drains or `max_steps` events were processed.
    /// Returns the number of events processed.
    pub fn run(&mut self, max_steps: u64) -> u64
    where
        N: Node<M, W>,
    {
        let mut done = 0;
        while done < max_steps && self.step() {
            done += 1;
        }
        done
    }

    /// Runs until simulated time reaches `until` or the queue drains.
    pub fn run_until(&mut self, until: SimTime) -> u64
    where
        N: Node<M, W>,
    {
        let mut done = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
            done += 1;
        }
        if self.time < until {
            self.time = until;
        }
        done
    }

    /// Consumes the simulator, returning nodes, world and network stats.
    pub fn into_parts(self) -> (Vec<N>, W, NetStats) {
        (self.nodes, self.world, self.net)
    }

    /// Captures the engine's complete state at the current quiesce point.
    ///
    /// Callable only *between* events: the outbox and timer scratch
    /// buffers are drained by `flush` before `step`/`with_node_ctx`
    /// return, so any external call site is a valid quiesce point (the
    /// assertion documents — rather than guards — this invariant).
    pub fn export_state(&self) -> SimSnapshot<M> {
        assert!(
            self.outbox.is_empty() && self.timers.is_empty(),
            "snapshot requires a quiesce point (no in-flight outbox/timers)"
        );
        let (queue_entries, queue_next_seq) = self.queue.export_entries();
        SimSnapshot {
            time: self.time,
            steps: self.steps,
            alive: self.alive.clone(),
            rng_state: self.rng.state(),
            net: self.net.clone(),
            fault: self.fault.clone(),
            recorder: self.recorder.clone(),
            queue_entries,
            queue_next_seq,
        }
    }

    /// Rebuilds a simulator from a captured snapshot plus the state the
    /// engine does not own: the topology (regenerated deterministically
    /// by the caller), restored node states, and the restored world.
    ///
    /// # Panics
    /// Panics if `nodes`, `snap.alive` and `topo` disagree on size.
    pub fn from_snapshot(
        topo: Arc<dyn Topology>,
        nodes: Vec<N>,
        world: W,
        snap: SimSnapshot<M>,
    ) -> Self {
        assert_eq!(
            nodes.len(),
            topo.len(),
            "node count must match topology size"
        );
        assert_eq!(
            nodes.len(),
            snap.alive.len(),
            "alive flags must match node count"
        );
        Self {
            nodes,
            alive: snap.alive,
            world,
            topo,
            queue: EventQueue::from_entries(snap.queue_entries, snap.queue_next_seq),
            time: snap.time,
            net: snap.net,
            rng: SmallRng::from_state(snap.rng_state),
            fault: snap.fault,
            outbox: Vec::new(),
            timers: Vec::new(),
            steps: snap.steps,
            recorder: snap.recorder,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformTopology;

    /// Test payload: a counter that is forwarded `ttl` times around a ring.
    #[derive(Debug, Clone)]
    struct Hop {
        ttl: u32,
    }

    impl Payload for Hop {
        fn wire_size(&self) -> usize {
            10
        }
        fn flow(&self) -> Option<u64> {
            Some(1)
        }
    }

    impl Encode for Hop {
        fn encode(&self, w: &mut Writer) {
            w.put_u32(self.ttl);
        }
    }

    impl Decode for Hop {
        fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
            Ok(Hop { ttl: r.take_u32()? })
        }
    }

    struct RingNode;

    #[derive(Default)]
    struct World {
        delivered: Vec<(usize, SimTime)>,
    }

    impl Node<Hop, World> for RingNode {
        fn on_message<R: NodeRuntime<Hop, World>>(&mut self, ctx: &mut R, _from: usize, msg: Hop) {
            let (me, now) = (ctx.me(), ctx.now());
            ctx.world().delivered.push((me, now));
            if msg.ttl > 0 {
                let next = (me + 1) % 4;
                ctx.send(next, Hop { ttl: msg.ttl - 1 });
            }
        }

        fn on_timer<R: NodeRuntime<Hop, World>>(&mut self, ctx: &mut R, token: u64) {
            ctx.send((ctx.me() + 1) % 4, Hop { ttl: token as u32 });
        }
    }

    fn ring() -> Sim<RingNode, Hop, World> {
        let topo = Arc::new(UniformTopology::new(4, SimTime::from_millis(10)));
        Sim::new(
            topo,
            vec![RingNode, RingNode, RingNode, RingNode],
            World::default(),
            0,
        )
    }

    #[test]
    fn message_ring_accumulates_latency() {
        let mut sim = ring();
        sim.schedule_timer(SimTime::ZERO, 0, 3);
        sim.run(100);
        // Timer at node 0 sends ttl=3 to node 1; hops 1->2->3->0.
        let w = sim.world();
        assert_eq!(w.delivered.len(), 4);
        assert_eq!(w.delivered[0], (1, SimTime::from_millis(10)));
        assert_eq!(w.delivered[3], (0, SimTime::from_millis(40)));
    }

    #[test]
    fn bandwidth_accounting() {
        let mut sim = ring();
        sim.schedule_timer(SimTime::ZERO, 0, 3);
        sim.run(100);
        // 4 sends of 10 bytes each, all tagged flow 1.
        assert_eq!(sim.net().total_msgs(), 4);
        assert_eq!(sim.net().total_bytes(), 40);
        assert_eq!(sim.net().flow(1).bytes, 40);
        assert_eq!(sim.net().node(0).bytes_out, 10);
        assert_eq!(sim.net().node(1).bytes_in, 10);
    }

    #[test]
    fn dead_nodes_drop_messages() {
        let mut sim = ring();
        sim.fail(2);
        sim.schedule_timer(SimTime::ZERO, 0, 3);
        sim.run(100);
        // 0 -timer-> 1 -> 2 (dropped).
        assert_eq!(sim.world().delivered.len(), 1);
        assert_eq!(sim.net().dropped(), 1);
    }

    #[test]
    fn with_node_ctx_flushes_sends() {
        let mut sim = ring();
        sim.with_node_ctx(0, |_, ctx| ctx.send(1, Hop { ttl: 0 }));
        sim.run(10);
        assert_eq!(sim.world().delivered.len(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = ring();
            sim.schedule_timer(SimTime::ZERO, 0, 3);
            sim.schedule_timer(SimTime::ZERO, 2, 2);
            sim.run(1000);
            sim.world().delivered.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn send_failed_notifies_origin_after_rtt() {
        struct Retry;
        #[derive(Default)]
        struct W {
            failed: Vec<(usize, SimTime)>,
        }
        impl Node<Hop, W> for Retry {
            fn on_message<R: NodeRuntime<Hop, W>>(
                &mut self,
                _ctx: &mut R,
                _from: usize,
                _msg: Hop,
            ) {
            }
            fn on_timer<R: NodeRuntime<Hop, W>>(&mut self, ctx: &mut R, _token: u64) {
                ctx.send(2, Hop { ttl: 0 });
            }
            fn on_send_failed<R: NodeRuntime<Hop, W>>(
                &mut self,
                ctx: &mut R,
                dst: usize,
                _msg: Hop,
            ) {
                let now = ctx.now();
                ctx.world().failed.push((dst, now));
            }
        }
        let topo = Arc::new(UniformTopology::new(4, SimTime::from_millis(10)));
        let mut sim = Sim::new(topo, vec![Retry, Retry, Retry, Retry], W::default(), 0);
        sim.fail(2);
        sim.schedule_timer(SimTime::ZERO, 0, 0);
        sim.run(100);
        // Notification arrives one round trip after the send.
        assert_eq!(sim.world().failed, vec![(2, SimTime::from_millis(20))]);
        assert_eq!(sim.net().dropped(), 1);
    }

    #[test]
    fn fault_loss_drops_silently() {
        use crate::fault::{FaultPlane, LinkPolicy};
        let mut sim = ring();
        let mut fp = FaultPlane::new(123);
        fp.set_global_policy(LinkPolicy::loss(1.0));
        sim.install_fault_plane(fp);
        sim.schedule_timer(SimTime::ZERO, 0, 3);
        sim.run(100);
        // The first hop is lost in-network: nothing delivered, no dead-node
        // drop recorded, and no SendFailed (delivered would then be > 0).
        assert_eq!(sim.world().delivered.len(), 0);
        assert_eq!(sim.net().fault_dropped(), 1);
        assert_eq!(sim.net().dropped(), 0);
    }

    #[test]
    fn fault_duplication_delivers_twice() {
        use crate::fault::{FaultPlane, LinkPolicy};
        let mut sim = ring();
        let mut fp = FaultPlane::new(123);
        fp.set_global_policy(LinkPolicy::duplication(1.0));
        sim.install_fault_plane(fp);
        sim.with_node_ctx(0, |_, ctx| ctx.send(1, Hop { ttl: 0 }));
        sim.run(100);
        assert_eq!(sim.world().delivered.len(), 2);
        assert_eq!(sim.net().duplicated(), 1);
    }

    #[test]
    fn partition_drops_cross_cut_then_heals() {
        use crate::fault::FaultPlane;
        let mut sim = ring();
        let mut fp = FaultPlane::new(5);
        fp.add_partition([0, 1], SimTime::ZERO, SimTime::from_millis(100));
        sim.install_fault_plane(fp);
        // During the partition 1 -> 2 crosses the cut.
        sim.with_node_ctx(1, |_, ctx| ctx.send(2, Hop { ttl: 0 }));
        sim.run(100);
        assert_eq!(sim.world().delivered.len(), 0);
        assert_eq!(sim.net().partition_dropped(), 1);
        // After healing the same send goes through.
        sim.run_until(SimTime::from_millis(100));
        sim.with_node_ctx(1, |_, ctx| ctx.send(2, Hop { ttl: 0 }));
        sim.run(100);
        assert_eq!(sim.world().delivered.len(), 1);
        assert_eq!(sim.net().partition_dropped(), 1);
    }

    #[test]
    fn ideal_fault_plane_is_transparent() {
        use crate::fault::FaultPlane;
        let run = |with_plane: bool| {
            let mut sim = ring();
            if with_plane {
                sim.install_fault_plane(FaultPlane::new(999));
            }
            sim.schedule_timer(SimTime::ZERO, 0, 3);
            sim.run(1000);
            let (_, w, net) = sim.into_parts();
            (w.delivered, net)
        };
        let (d0, n0) = run(false);
        let (d1, n1) = run(true);
        assert_eq!(d0, d1);
        assert_eq!(n0, n1);
    }

    #[test]
    fn faulty_runs_replay_identically() {
        use crate::fault::{FaultPlane, LinkPolicy};
        let run = || {
            let mut sim = ring();
            let mut fp = FaultPlane::new(42);
            fp.set_global_policy(LinkPolicy {
                drop_prob: 0.2,
                dup_prob: 0.2,
                extra_delay: SimTime::from_millis(1),
                jitter: SimTime::from_millis(4),
            });
            sim.install_fault_plane(fp);
            sim.schedule_timer(SimTime::ZERO, 0, 30);
            sim.schedule_timer(SimTime::from_millis(3), 2, 30);
            sim.run(10_000);
            let (_, w, net) = sim.into_parts();
            (w.delivered, net)
        };
        let (d0, n0) = run();
        let (d1, n1) = run();
        assert_eq!(d0, d1);
        assert_eq!(n0, n1);
    }

    #[test]
    fn recording_captures_net_events_without_changing_the_run() {
        let run = |record: bool| {
            let mut sim = ring();
            if record {
                sim.enable_recording(1 << 10);
            }
            sim.fail(3);
            sim.schedule_timer(SimTime::ZERO, 0, 3);
            sim.run(100);
            let counts = sim.recorder().map(|r| r.kind_counts()).unwrap_or_default();
            let (_, w, net) = sim.into_parts();
            (w.delivered, net, counts)
        };
        let (d0, n0, _) = run(false);
        let (d1, n1, counts) = run(true);
        // Digest-neutrality at the engine level: identical deliveries and
        // network counters with and without the recorder.
        assert_eq!(d0, d1);
        assert_eq!(n0, n1);
        // Hops 0->1->2->3: 3 sends, 2 deliveries, one dead-drop at 3, one
        // fail-stop notification back to 2, plus the node-fail marker.
        let get = |k: &str| counts.iter().find(|(c, _)| *c == k).map_or(0, |&(_, n)| n);
        assert_eq!(get("net.send"), 3);
        assert_eq!(get("net.deliver"), 2);
        assert_eq!(get("net.drop_dead"), 1);
        assert_eq!(get("net.send_failed"), 1);
        assert_eq!(get("net.node_fail"), 1);
    }

    #[test]
    fn ctx_trace_reaches_the_recorder() {
        use crate::trace::{ProtoEvent, TraceEvent};
        let mut sim = ring();
        sim.enable_recording(16);
        sim.with_node_ctx(1, |_, ctx| {
            assert!(ctx.tracing());
            ctx.trace(|| ProtoEvent {
                kind: "test.mark",
                flow: Some(7),
                a: 1,
                b: 2,
            });
        });
        let rec = sim.recorder().unwrap();
        let marks: Vec<_> = rec
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Proto(p) if p.kind == "test.mark"))
            .collect();
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].node, 1);
        // Without a recorder the closure must not run.
        let mut sim2 = ring();
        sim2.with_node_ctx(0, |_, ctx| {
            assert!(!ctx.tracing());
            ctx.trace(|| unreachable!("trace closure ran with recording off"));
        });
    }

    #[test]
    fn split_run_resumes_bit_identically() {
        use crate::fault::{FaultPlane, LinkPolicy};
        let seed_run = || {
            let mut sim = ring();
            let mut fp = FaultPlane::new(42);
            fp.set_global_policy(LinkPolicy {
                drop_prob: 0.2,
                dup_prob: 0.2,
                extra_delay: SimTime::from_millis(1),
                jitter: SimTime::from_millis(4),
            });
            sim.install_fault_plane(fp);
            sim.enable_recording(64);
            sim.schedule_timer(SimTime::ZERO, 0, 30);
            sim.schedule_timer(SimTime::from_millis(3), 2, 30);
            sim
        };

        // Straight-through reference.
        let mut full = seed_run();
        full.run(10_000);
        let (_, w_full, net_full) = full.into_parts();

        // Split run: halfway, export, serialize, drop, restore, finish.
        let mut first = seed_run();
        first.run(40);
        let world_mid = std::mem::take(first.world_mut());
        let snap = first.export_state();
        let topo = Arc::clone(first.topology());
        let bytes = hypersub_snapshot::to_sealed_bytes(&snap);
        drop(first);
        drop(snap);

        let snap2: SimSnapshot<Hop> = hypersub_snapshot::from_sealed_bytes(&bytes).unwrap();
        let mut resumed = Sim::from_snapshot(
            topo,
            vec![RingNode, RingNode, RingNode, RingNode],
            world_mid,
            snap2,
        );
        resumed.run(10_000);
        let rec = resumed.recorder().unwrap().kind_counts();
        let (_, w_resumed, net_resumed) = resumed.into_parts();

        assert_eq!(w_full.delivered, w_resumed.delivered);
        assert_eq!(net_full, net_resumed);
        assert!(!rec.is_empty());
    }

    #[test]
    fn run_until_stops_at_time() {
        let mut sim = ring();
        sim.schedule_timer(SimTime::ZERO, 0, 3);
        sim.run_until(SimTime::from_millis(25));
        // Deliveries at 10, 20 happen; 30, 40 do not.
        assert_eq!(sim.world().delivered.len(), 2);
        assert_eq!(sim.pending(), 1);
    }
}
