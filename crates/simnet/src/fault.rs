//! Deterministic fault injection.
//!
//! A [`FaultPlane`] sits between [`crate::Ctx::send`] and the event queue:
//! every unicast message (self-sends are exempt — they never touch the
//! network) is run through [`FaultPlane::judge`], which can drop it,
//! duplicate it, or stretch its latency. Three fault classes compose:
//!
//! * **Link policies** ([`LinkPolicy`]) — probabilistic loss, duplication
//!   and added delay/jitter, either globally or per directed link. A
//!   per-link policy fully replaces the global one for that link.
//! * **Partitions** ([`FaultPlane::add_partition`]) — timed node-set
//!   bisections: while `[from, until)` covers the current time, messages
//!   crossing the cut are silently dropped in both directions. Healing is
//!   implicit (the window ends); multiple overlapping windows compose as
//!   "dropped if any active partition separates the endpoints".
//! * **Policy windows** ([`FaultPlane::add_policy_window`]) — timed
//!   global-policy overrides: while `[from, until)` covers the current
//!   time, the window's policy replaces the steady-state global policy
//!   (per-link overrides still win). Overlapping windows resolve to the
//!   most recently added active one; zero-length windows are no-ops.
//!   This is how scenarios schedule fault/latency *phases* — a
//!   bufferbloat hour, a lossy afternoon — over one long run.
//! * **Silence** — all fault losses are *silent*: unlike fail-stop death
//!   of the destination, the sender gets no [`crate::Node::on_send_failed`]
//!   callback. Recovering from them is the protocol's job (acks/retries).
//!
//! Determinism: the plane owns its own `SmallRng`, seeded independently of
//! the engine's, so (a) the same `(seed, policy)` pair replays the exact
//! same fault schedule, and (b) installing a plane whose policies are all
//! zero leaves the engine's random stream — and therefore the whole run —
//! byte-identical to a run without one.

use crate::time::SimTime;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Loss/duplication/delay knobs for one directed link (or the whole net).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPolicy {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a second copy of the message is
    /// delivered (after an independently jittered latency).
    pub dup_prob: f64,
    /// Fixed extra one-way delay added to every surviving message.
    pub extra_delay: SimTime,
    /// Upper bound of a uniform random extra delay in `[0, jitter)`,
    /// drawn independently per copy.
    pub jitter: SimTime,
}

impl LinkPolicy {
    /// The do-nothing policy.
    pub const IDEAL: LinkPolicy = LinkPolicy {
        drop_prob: 0.0,
        dup_prob: 0.0,
        extra_delay: SimTime::ZERO,
        jitter: SimTime::ZERO,
    };

    /// Uniform-loss policy: drop with probability `p`, nothing else.
    pub fn loss(p: f64) -> Self {
        LinkPolicy {
            drop_prob: p,
            ..Self::IDEAL
        }
    }

    /// Duplication policy: duplicate with probability `p`, nothing else.
    pub fn duplication(p: f64) -> Self {
        LinkPolicy {
            dup_prob: p,
            ..Self::IDEAL
        }
    }

    /// Adds a duplication probability to this policy.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Adds a fixed extra one-way delay to this policy.
    pub fn with_extra_delay(mut self, d: SimTime) -> Self {
        self.extra_delay = d;
        self
    }

    /// Adds a uniform random extra delay in `[0, jitter)` to this policy.
    pub fn with_jitter(mut self, jitter: SimTime) -> Self {
        self.jitter = jitter;
        self
    }

    fn is_ideal(&self) -> bool {
        *self == Self::IDEAL
    }
}

/// A timed bisection of the node set.
#[derive(Debug, Clone)]
struct Partition {
    side_a: HashSet<usize>,
    from: SimTime,
    until: SimTime,
}

impl Partition {
    fn separates(&self, src: usize, dst: usize, now: SimTime) -> bool {
        now >= self.from
            && now < self.until
            && (self.side_a.contains(&src) != self.side_a.contains(&dst))
    }
}

/// A timed override of the global link policy.
#[derive(Debug, Clone)]
struct PolicyWindow {
    policy: LinkPolicy,
    from: SimTime,
    until: SimTime,
}

impl PolicyWindow {
    fn active(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// What the plane decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver after `extra` additional delay; also deliver a duplicate
    /// copy after `dup_extra` if it is `Some`.
    Deliver {
        /// Extra delay for the primary copy.
        extra: SimTime,
        /// Extra delay for the duplicate copy, if one was injected.
        dup_extra: Option<SimTime>,
    },
    /// Silently dropped by probabilistic loss.
    DropLoss,
    /// Silently dropped because an active partition separates the nodes.
    DropPartition,
}

/// Deterministic fault-injection state, installed via
/// [`crate::Sim::install_fault_plane`].
#[derive(Debug, Clone)]
pub struct FaultPlane {
    rng: SmallRng,
    global: LinkPolicy,
    links: HashMap<(usize, usize), LinkPolicy>,
    partitions: Vec<Partition>,
    windows: Vec<PolicyWindow>,
}

impl FaultPlane {
    /// A plane with no faults configured, drawing from its own stream
    /// seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            global: LinkPolicy::IDEAL,
            links: HashMap::new(),
            partitions: Vec::new(),
            windows: Vec::new(),
        }
    }

    /// Sets the policy applied to every link without a per-link override.
    pub fn set_global_policy(&mut self, policy: LinkPolicy) -> &mut Self {
        self.global = policy;
        self
    }

    /// Sets the policy for the directed link `src -> dst`, replacing the
    /// global policy on that link.
    pub fn set_link_policy(&mut self, src: usize, dst: usize, policy: LinkPolicy) -> &mut Self {
        self.links.insert((src, dst), policy);
        self
    }

    /// Schedules a partition: from `from` (inclusive) until `until`
    /// (exclusive), messages between `side_a` and its complement are
    /// dropped. The partition heals itself when the window closes.
    pub fn add_partition(
        &mut self,
        side_a: impl IntoIterator<Item = usize>,
        from: SimTime,
        until: SimTime,
    ) -> &mut Self {
        assert!(from <= until, "partition window must not be inverted");
        self.partitions.push(Partition {
            side_a: side_a.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// Schedules a timed global-policy override: from `from` (inclusive)
    /// until `until` (exclusive), `policy` replaces the steady-state
    /// global policy on every link without a per-link override. When
    /// several windows cover the same instant, the most recently added
    /// one wins. A zero-length window (`from == until`) is a no-op.
    pub fn add_policy_window(
        &mut self,
        policy: LinkPolicy,
        from: SimTime,
        until: SimTime,
    ) -> &mut Self {
        assert!(from <= until, "policy window must not be inverted");
        self.windows.push(PolicyWindow {
            policy,
            from,
            until,
        });
        self
    }

    /// True if some active partition separates `a` and `b` at `now`.
    pub fn is_partitioned(&self, a: usize, b: usize, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.separates(a, b, now))
    }

    /// Judges one message on `src -> dst` at time `now`.
    ///
    /// Partition checks precede probabilistic faults and draw no
    /// randomness; an ideal effective policy draws none either, so a
    /// fully-zero plane consumes no random numbers at all.
    pub fn judge(&mut self, src: usize, dst: usize, now: SimTime) -> Verdict {
        if self.is_partitioned(src, dst, now) {
            return Verdict::DropPartition;
        }
        let policy = match self.links.get(&(src, dst)) {
            Some(p) => *p,
            None => self.effective_global(now),
        };
        if policy.is_ideal() {
            return Verdict::Deliver {
                extra: SimTime::ZERO,
                dup_extra: None,
            };
        }
        if policy.drop_prob > 0.0 && self.rng.gen_bool(policy.drop_prob) {
            return Verdict::DropLoss;
        }
        let extra = policy.extra_delay + self.draw_jitter(policy.jitter);
        let dup_extra = if policy.dup_prob > 0.0 && self.rng.gen_bool(policy.dup_prob) {
            Some(policy.extra_delay + self.draw_jitter(policy.jitter))
        } else {
            None
        };
        Verdict::Deliver { extra, dup_extra }
    }

    /// The global policy in force at `now`: the most recently added
    /// active window, or the steady-state global policy when no window
    /// covers `now`. Pure — draws no randomness.
    pub fn effective_global(&self, now: SimTime) -> LinkPolicy {
        self.windows
            .iter()
            .rev()
            .find(|w| w.active(now))
            .map(|w| w.policy)
            .unwrap_or(self.global)
    }

    fn draw_jitter(&mut self, jitter: SimTime) -> SimTime {
        if jitter == SimTime::ZERO {
            SimTime::ZERO
        } else {
            SimTime(self.rng.gen_range(0..jitter.0))
        }
    }
}

impl Encode for LinkPolicy {
    fn encode(&self, w: &mut Writer) {
        self.drop_prob.encode(w);
        self.dup_prob.encode(w);
        self.extra_delay.encode(w);
        self.jitter.encode(w);
    }
}

impl Decode for LinkPolicy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(LinkPolicy {
            drop_prob: f64::decode(r)?,
            dup_prob: f64::decode(r)?,
            extra_delay: SimTime::decode(r)?,
            jitter: SimTime::decode(r)?,
        })
    }
}

impl Encode for PolicyWindow {
    fn encode(&self, w: &mut Writer) {
        self.policy.encode(w);
        self.from.encode(w);
        self.until.encode(w);
    }
}

impl Decode for PolicyWindow {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(PolicyWindow {
            policy: LinkPolicy::decode(r)?,
            from: SimTime::decode(r)?,
            until: SimTime::decode(r)?,
        })
    }
}

impl Encode for Partition {
    fn encode(&self, w: &mut Writer) {
        // HashSet iteration order is process-random: sort for stable bytes.
        let mut side: Vec<usize> = self.side_a.iter().copied().collect();
        side.sort_unstable();
        side.encode(w);
        self.from.encode(w);
        self.until.encode(w);
    }
}

impl Decode for Partition {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(Partition {
            side_a: Vec::<usize>::decode(r)?.into_iter().collect(),
            from: SimTime::decode(r)?,
            until: SimTime::decode(r)?,
        })
    }
}

// The partition *list* keeps its original order (`is_partitioned` uses
// `any`, so order only changes short-circuiting, but byte stability
// wants the insertion order preserved verbatim). The link map is sorted
// by key for the same stable-bytes reason as every other hash map.
impl Encode for FaultPlane {
    fn encode(&self, w: &mut Writer) {
        self.rng.state().encode(w);
        self.global.encode(w);
        let mut links: Vec<((usize, usize), LinkPolicy)> =
            self.links.iter().map(|(&k, &v)| (k, v)).collect();
        links.sort_unstable_by_key(|&(k, _)| k);
        links.encode(w);
        self.partitions.encode(w);
        // Policy windows keep insertion order verbatim: "last added wins"
        // is part of the resolution semantics, not just byte stability.
        self.windows.encode(w);
    }
}

impl Decode for FaultPlane {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(FaultPlane {
            rng: SmallRng::from_state(<[u64; 4]>::decode(r)?),
            global: LinkPolicy::decode(r)?,
            links: Vec::<((usize, usize), LinkPolicy)>::decode(r)?
                .into_iter()
                .collect(),
            partitions: Vec::<Partition>::decode(r)?,
            windows: Vec::<PolicyWindow>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn ideal_plane_draws_nothing_and_delivers() {
        let mut fp = FaultPlane::new(42);
        let before = fp.rng.clone();
        for _ in 0..100 {
            assert_eq!(
                fp.judge(0, 1, T0),
                Verdict::Deliver {
                    extra: SimTime::ZERO,
                    dup_extra: None
                }
            );
        }
        assert_eq!(fp.rng, before, "ideal policy must not consume randomness");
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut fp = FaultPlane::new(1);
        fp.set_global_policy(LinkPolicy::loss(1.0));
        for _ in 0..50 {
            assert_eq!(fp.judge(0, 1, T0), Verdict::DropLoss);
        }
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let mut fp = FaultPlane::new(7);
        fp.set_global_policy(LinkPolicy::loss(0.1));
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| fp.judge(0, 1, T0) == Verdict::DropLoss)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "observed loss {rate}");
    }

    #[test]
    fn duplication_injects_second_copy() {
        let mut fp = FaultPlane::new(3);
        fp.set_global_policy(LinkPolicy::duplication(1.0));
        match fp.judge(0, 1, T0) {
            Verdict::Deliver {
                dup_extra: Some(_), ..
            } => {}
            v => panic!("expected duplicate, got {v:?}"),
        }
    }

    #[test]
    fn per_link_policy_overrides_global() {
        let mut fp = FaultPlane::new(5);
        fp.set_global_policy(LinkPolicy::loss(1.0));
        fp.set_link_policy(2, 3, LinkPolicy::IDEAL);
        assert_eq!(fp.judge(0, 1, T0), Verdict::DropLoss);
        assert_eq!(
            fp.judge(2, 3, T0),
            Verdict::Deliver {
                extra: SimTime::ZERO,
                dup_extra: None
            }
        );
        // Directed: the reverse link still uses the global policy.
        assert_eq!(fp.judge(3, 2, T0), Verdict::DropLoss);
    }

    #[test]
    fn extra_delay_and_jitter_stretch_latency() {
        let mut fp = FaultPlane::new(9);
        fp.set_global_policy(LinkPolicy {
            drop_prob: 0.0,
            dup_prob: 0.0,
            extra_delay: SimTime::from_millis(5),
            jitter: SimTime::from_millis(10),
        });
        for _ in 0..100 {
            match fp.judge(0, 1, T0) {
                Verdict::Deliver { extra, .. } => {
                    assert!(extra >= SimTime::from_millis(5));
                    assert!(extra < SimTime::from_millis(15));
                }
                v => panic!("unexpected {v:?}"),
            }
        }
    }

    #[test]
    fn partition_window_separates_then_heals() {
        let mut fp = FaultPlane::new(11);
        fp.add_partition([0, 1], SimTime::from_millis(100), SimTime::from_millis(200));
        // Before the window: connected.
        assert!(!fp.is_partitioned(0, 2, SimTime::from_millis(50)));
        // During: cross-cut separated, same-side connected.
        let mid = SimTime::from_millis(150);
        assert!(fp.is_partitioned(0, 2, mid));
        assert!(fp.is_partitioned(2, 1, mid));
        assert!(!fp.is_partitioned(0, 1, mid));
        assert!(!fp.is_partitioned(2, 3, mid));
        assert_eq!(fp.judge(0, 2, mid), Verdict::DropPartition);
        // After: healed.
        assert!(!fp.is_partitioned(0, 2, SimTime::from_millis(200)));
    }

    #[test]
    fn snapshot_resumes_fault_schedule_mid_stream() {
        let mut fp = FaultPlane::new(77);
        fp.set_global_policy(LinkPolicy {
            drop_prob: 0.3,
            dup_prob: 0.2,
            extra_delay: SimTime::from_millis(1),
            jitter: SimTime::from_millis(3),
        });
        fp.set_link_policy(1, 2, LinkPolicy::IDEAL);
        fp.add_partition([0, 1], SimTime::from_millis(5), SimTime::from_millis(9));
        fp.add_policy_window(
            LinkPolicy::loss(0.9),
            SimTime::from_millis(2),
            SimTime::from_millis(7),
        );
        for i in 0..100 {
            fp.judge(i % 8, (i + 1) % 8, T0);
        }
        let mut w = Writer::new();
        fp.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let mut back = FaultPlane::decode(&mut r).unwrap();
        r.finish().unwrap();
        let tail: Vec<Verdict> = (0..200).map(|i| fp.judge(i % 8, (i + 3) % 8, T0)).collect();
        let tail2: Vec<Verdict> = (0..200)
            .map(|i| back.judge(i % 8, (i + 3) % 8, T0))
            .collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn zero_length_partition_is_a_noop() {
        let mut fp = FaultPlane::new(13);
        let t = SimTime::from_millis(100);
        fp.add_partition([0, 1], t, t);
        // Never active — not even at the shared boundary instant.
        for ms in [99, 100, 101] {
            assert!(!fp.is_partitioned(0, 2, SimTime::from_millis(ms)));
            assert_eq!(
                fp.judge(0, 2, SimTime::from_millis(ms)),
                Verdict::Deliver {
                    extra: SimTime::ZERO,
                    dup_extra: None
                }
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be inverted")]
    fn inverted_partition_window_panics() {
        let mut fp = FaultPlane::new(13);
        fp.add_partition([0], SimTime::from_millis(2), SimTime::from_millis(1));
    }

    #[test]
    fn overlapping_partitions_drop_if_any_cut_separates() {
        let mut fp = FaultPlane::new(17);
        // Two overlapping windows with different sides: {0,1} cut during
        // [100, 300), {1,2} cut during [200, 400).
        fp.add_partition([0, 1], SimTime::from_millis(100), SimTime::from_millis(300));
        fp.add_partition([1, 2], SimTime::from_millis(200), SimTime::from_millis(400));
        let at = SimTime::from_millis;
        // Only the first cut active: 0-3 separated, 2-3 connected.
        assert!(fp.is_partitioned(0, 3, at(150)));
        assert!(!fp.is_partitioned(2, 3, at(150)));
        // Overlap region: both cuts active. 2-3 now separated by the
        // second cut even though the first keeps them on the same side,
        // and 0-1 (same side of the first cut) is split by the second.
        assert!(fp.is_partitioned(2, 3, at(250)));
        assert!(fp.is_partitioned(0, 1, at(250)));
        assert!(fp.is_partitioned(0, 3, at(250)));
        // First window healed, second still cutting.
        assert!(!fp.is_partitioned(0, 3, at(350)));
        assert!(fp.is_partitioned(1, 3, at(350)));
        // Both healed.
        assert!(!fp.is_partitioned(1, 3, at(400)));
        assert!(!fp.is_partitioned(2, 3, at(400)));
    }

    #[test]
    fn partition_boundaries_are_half_open() {
        let mut fp = FaultPlane::new(19);
        fp.add_partition([0], SimTime::from_millis(100), SimTime::from_millis(200));
        assert!(!fp.is_partitioned(0, 1, SimTime::from_millis(99)));
        assert!(
            fp.is_partitioned(0, 1, SimTime::from_millis(100)),
            "inclusive at from"
        );
        assert!(fp.is_partitioned(0, 1, SimTime::from_millis(199)));
        assert!(
            !fp.is_partitioned(0, 1, SimTime::from_millis(200)),
            "exclusive at until"
        );
    }

    #[test]
    fn policy_window_applies_only_inside_half_open_window() {
        let mut fp = FaultPlane::new(23);
        fp.add_policy_window(
            LinkPolicy::loss(1.0),
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        );
        let before = fp.rng.clone();
        // Outside the window the plane is ideal and draws nothing —
        // including at the exclusive `until` tick.
        for ms in [0, 99, 200, 500] {
            assert_eq!(
                fp.judge(0, 1, SimTime::from_millis(ms)),
                Verdict::Deliver {
                    extra: SimTime::ZERO,
                    dup_extra: None
                }
            );
        }
        assert_eq!(
            fp.rng, before,
            "inactive window must not consume randomness"
        );
        // Inside — including the inclusive `from` tick — the override rules.
        for ms in [100, 150, 199] {
            assert_eq!(fp.judge(0, 1, SimTime::from_millis(ms)), Verdict::DropLoss);
        }
    }

    #[test]
    fn zero_length_policy_window_is_a_noop() {
        let mut fp = FaultPlane::new(29);
        let t = SimTime::from_millis(50);
        fp.add_policy_window(LinkPolicy::loss(1.0), t, t);
        for ms in [49, 50, 51] {
            assert_eq!(
                fp.judge(0, 1, SimTime::from_millis(ms)),
                Verdict::Deliver {
                    extra: SimTime::ZERO,
                    dup_extra: None
                }
            );
        }
    }

    #[test]
    fn overlapping_policy_windows_resolve_to_last_added() {
        let mut fp = FaultPlane::new(31);
        fp.set_global_policy(LinkPolicy::loss(1.0));
        fp.add_policy_window(
            LinkPolicy::IDEAL,
            SimTime::from_millis(0),
            SimTime::from_millis(300),
        );
        fp.add_policy_window(
            LinkPolicy {
                drop_prob: 0.0,
                dup_prob: 0.0,
                extra_delay: SimTime::from_millis(7),
                jitter: SimTime::ZERO,
            },
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        );
        // [0, 100): first window overrides the lossy global — ideal.
        assert_eq!(
            fp.judge(0, 1, SimTime::from_millis(50)),
            Verdict::Deliver {
                extra: SimTime::ZERO,
                dup_extra: None
            }
        );
        // [100, 200): both active, the later-added delay window wins.
        assert_eq!(
            fp.judge(0, 1, SimTime::from_millis(150)),
            Verdict::Deliver {
                extra: SimTime::from_millis(7),
                dup_extra: None
            }
        );
        // [200, 300): back to the first window.
        assert_eq!(
            fp.judge(0, 1, SimTime::from_millis(250)),
            Verdict::Deliver {
                extra: SimTime::ZERO,
                dup_extra: None
            }
        );
        // [300, ...): the steady-state global policy resumes.
        assert_eq!(fp.judge(0, 1, SimTime::from_millis(300)), Verdict::DropLoss);
    }

    #[test]
    fn per_link_policy_still_overrides_active_window() {
        let mut fp = FaultPlane::new(37);
        fp.set_link_policy(2, 3, LinkPolicy::IDEAL);
        fp.add_policy_window(LinkPolicy::loss(1.0), SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(fp.judge(0, 1, SimTime::from_secs(1)), Verdict::DropLoss);
        assert_eq!(
            fp.judge(2, 3, SimTime::from_secs(1)),
            Verdict::Deliver {
                extra: SimTime::ZERO,
                dup_extra: None
            }
        );
    }

    #[test]
    fn window_jitter_draws_only_inside_window_even_at_tick_boundaries() {
        let jittery = LinkPolicy {
            drop_prob: 0.0,
            dup_prob: 0.0,
            extra_delay: SimTime::from_millis(5),
            jitter: SimTime::from_millis(10),
        };
        let mut fp = FaultPlane::new(41);
        fp.add_policy_window(
            jittery,
            SimTime::from_millis(100),
            SimTime::from_millis(200),
        );
        // Judging at `until` and beyond draws nothing, so a run that only
        // touches the boundary stays byte-identical to a windowless one.
        let before = fp.rng.clone();
        fp.judge(0, 1, SimTime::from_millis(200));
        fp.judge(0, 1, SimTime::from_millis(99));
        assert_eq!(fp.rng, before);
        // At exactly `from` (and up to the last covered tick) the jitter
        // draw happens and stays within [extra_delay, extra_delay+jitter).
        for ms in [100, 199] {
            match fp.judge(0, 1, SimTime::from_millis(ms)) {
                Verdict::Deliver { extra, .. } => {
                    assert!(extra >= SimTime::from_millis(5));
                    assert!(extra < SimTime::from_millis(15));
                }
                v => panic!("unexpected {v:?}"),
            }
        }
        assert_ne!(fp.rng, before, "active window must consume randomness");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut fp = FaultPlane::new(seed);
            fp.set_global_policy(LinkPolicy {
                drop_prob: 0.3,
                dup_prob: 0.2,
                extra_delay: SimTime::ZERO,
                jitter: SimTime::from_millis(3),
            });
            (0..200)
                .map(|i| fp.judge(i % 8, (i + 1) % 8, T0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }
}
