//! A fast, fixed-seed hasher for hot-path hash tables.
//!
//! `std`'s default SipHash is DoS-resistant but costs real time on the
//! simulator's per-message map lookups (flow accounting, dedup caches,
//! delivery scratch sets). This is the FxHash function used by rustc:
//! a rotate-xor-multiply per word, an order of magnitude cheaper for the
//! small integer keys these tables use.
//!
//! **Determinism contract**: the seed is fixed, so hashes — and therefore
//! iteration order — are identical across runs and platforms. Still, use
//! these aliases only for tables whose iteration order is never
//! observable (pure lookup/membership tables); tables that are iterated
//! to *generate messages* must keep an explicitly sorted order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash function (rustc's `FxHasher`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed-seed rotate-xor-multiply hasher; see module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_ne!(h(b"12345678"), h(b"123456789"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 1);
        assert_eq!(m.get(&7), Some(&1));
        let mut s: FxHashSet<(u64, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
