//! A deterministic discrete-event, packet-level network simulator.
//!
//! The HyperSub paper evaluates on top of **p2psim** (MIT), "a discrete
//! event-driven, packet level simulator for many DHT protocols" (§5.1).
//! p2psim is C++ and its King-dataset input is not redistributable, so this
//! crate provides the equivalent substrate:
//!
//! * a binary-heap event queue with deterministic tie-breaking
//!   ([`engine::Sim`]),
//! * pluggable latency models ([`topology`]), including a synthetic
//!   *King-like* model calibrated to the dataset's published mean RTT
//!   (~180 ms over 1740 Internet DNS servers),
//! * byte-accurate per-node and per-flow message accounting
//!   ([`stats::NetStats`]), which is what the paper's bandwidth figures
//!   (Fig 2d, Fig 3) measure.
//!
//! Protocols are written as [`engine::Node`] implementations: the engine
//! calls `on_message`/`on_timer`, the node emits sends and timers through
//! its [`runtime::NodeRuntime`] (here, [`engine::Ctx`]), and the engine
//! charges latency and bandwidth. A whole simulation is reproducible from
//! a single `u64` seed. The same `Node` implementations run unchanged over
//! any other [`runtime::NodeRuntime`] host — e.g. a real-socket transport.

pub mod engine;
pub mod fault;
pub mod fxhash;
pub mod queue;
pub mod runtime;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use engine::{Ctx, Node, Payload, Sim, SimSnapshot};
pub use fault::{FaultPlane, LinkPolicy, Verdict};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use queue::SimEvent;
pub use runtime::{NodeRuntime, WireMsg};
pub use stats::NetStats;
pub use time::SimTime;
pub use topology::{KingLikeTopology, MatrixTopology, Topology, UniformTopology};
pub use trace::{FlightRecorder, ProtoEvent, TraceEvent, TraceRecord};
