//! The simulator's future-event list.
//!
//! A binary heap keyed on `(time, sequence)`: two events scheduled for the
//! same instant pop in scheduling order, which makes every run bit-for-bit
//! reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What can happen in the network.
#[derive(Debug, Clone)]
pub enum SimEvent<M> {
    /// A message arrives at `dst`.
    Deliver {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Protocol payload.
        msg: M,
    },
    /// A timer fires at `node` with an opaque `token`.
    Timer {
        /// Node whose timer fires.
        node: usize,
        /// Token the node uses to tell its timers apart.
        token: u64,
    },
    /// The sender learns a message could not be delivered (fail-stop
    /// "connection refused", surfaced one propagation delay later).
    SendFailed {
        /// Original sender, who receives the notification.
        origin: usize,
        /// The dead destination.
        dst: usize,
        /// The undeliverable message.
        msg: M,
    },
}

#[derive(Debug)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    ev: SimEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    // Reversed so BinaryHeap (a max-heap) pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `ev` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, ev: SimEvent<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent<M>)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> SimEvent<()> {
        SimEvent::Timer { node, token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), timer(0, 3));
        q.schedule(SimTime::from_micros(10), timer(0, 1));
        q.schedule(SimTime::from_micros(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                SimEvent::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for token in 0..100 {
            q.schedule(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                SimEvent::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_micros(7), timer(1, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
