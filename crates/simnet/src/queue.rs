//! The simulator's future-event list.
//!
//! A binary heap keyed on `(time, sequence)`: two events scheduled for the
//! same instant pop in scheduling order, which makes every run bit-for-bit
//! reproducible regardless of heap internals.
//!
//! Event bodies live in a slab beside the heap; the heap itself holds
//! only fixed-size `(time, seq, slot)` handles. Sift-up/sift-down during
//! `schedule`/`pop` then moves 24-byte handles instead of entire
//! `SimEvent<M>` values (a protocol message can be hundreds of bytes),
//! which is a large constant-factor win on the simulator's hottest loop.
//! Pop order is a pure function of `(time, seq)`, so the slab layout —
//! and its LIFO free list — cannot affect determinism.

use crate::time::SimTime;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What can happen in the network.
#[derive(Debug, Clone)]
pub enum SimEvent<M> {
    /// A message arrives at `dst`.
    Deliver {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Protocol payload.
        msg: M,
    },
    /// A timer fires at `node` with an opaque `token`.
    Timer {
        /// Node whose timer fires.
        node: usize,
        /// Token the node uses to tell its timers apart.
        token: u64,
    },
    /// The sender learns a message could not be delivered (fail-stop
    /// "connection refused", surfaced one propagation delay later).
    SendFailed {
        /// Original sender, who receives the notification.
        origin: usize,
        /// The dead destination.
        dst: usize,
        /// The undeliverable message.
        msg: M,
    },
}

impl<M: Encode> Encode for SimEvent<M> {
    fn encode(&self, w: &mut Writer) {
        match self {
            SimEvent::Deliver { src, dst, msg } => {
                w.put_u8(0);
                src.encode(w);
                dst.encode(w);
                msg.encode(w);
            }
            SimEvent::Timer { node, token } => {
                w.put_u8(1);
                node.encode(w);
                w.put_u64(*token);
            }
            SimEvent::SendFailed { origin, dst, msg } => {
                w.put_u8(2);
                origin.encode(w);
                dst.encode(w);
                msg.encode(w);
            }
        }
    }
}

impl<M: Decode> Decode for SimEvent<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => SimEvent::Deliver {
                src: usize::decode(r)?,
                dst: usize::decode(r)?,
                msg: M::decode(r)?,
            },
            1 => SimEvent::Timer {
                node: usize::decode(r)?,
                token: r.take_u64()?,
            },
            2 => SimEvent::SendFailed {
                origin: usize::decode(r)?,
                dst: usize::decode(r)?,
                msg: M::decode(r)?,
            },
            _ => return Err(Error::InvalidValue("sim event tag")),
        })
    }
}

/// A heap handle: ordering key plus the slab slot holding the event body.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed so BinaryHeap (a max-heap) pops the *earliest* event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled>,
    slab: Vec<Option<SimEvent<M>>>,
    free: Vec<u32>,
    seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `ev` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, ev: SimEvent<M>) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(ev);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
                self.slab.push(Some(ev));
                s
            }
        };
        self.heap.push(Scheduled { at, seq, slot });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent<M>)> {
        let s = self.heap.pop()?;
        let ev = self.slab[s.slot as usize]
            .take()
            .expect("scheduled slot holds an event");
        self.free.push(s.slot);
        Some((s.at, ev))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// All pending events as `(at, seq, event)` triples sorted by pop
    /// order, plus the next sequence number — everything a checkpoint
    /// needs to rebuild an equivalent queue. The slab layout and free
    /// list are deliberately not part of the snapshot: pop order is a
    /// pure function of `(at, seq)`.
    pub fn export_entries(&self) -> (Vec<(SimTime, u64, SimEvent<M>)>, u64)
    where
        M: Clone,
    {
        let mut out: Vec<(SimTime, u64, SimEvent<M>)> = self
            .heap
            .iter()
            .map(|s| {
                let ev = self.slab[s.slot as usize]
                    .clone()
                    .expect("scheduled slot holds an event");
                (s.at, s.seq, ev)
            })
            .collect();
        out.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        (out, self.seq)
    }

    /// Rebuilds a queue from [`export_entries`] output, preserving the
    /// original sequence numbers (and therefore same-instant tie-breaks)
    /// exactly.
    ///
    /// [`export_entries`]: EventQueue::export_entries
    pub fn from_entries(entries: Vec<(SimTime, u64, SimEvent<M>)>, next_seq: u64) -> Self {
        let mut q = EventQueue {
            heap: BinaryHeap::with_capacity(entries.len()),
            slab: Vec::with_capacity(entries.len()),
            free: Vec::new(),
            seq: next_seq,
        };
        for (at, seq, ev) in entries {
            assert!(seq < next_seq, "entry seq must precede next_seq");
            let slot = u32::try_from(q.slab.len()).expect("event slab exceeds u32 slots");
            q.slab.push(Some(ev));
            q.heap.push(Scheduled { at, seq, slot });
        }
        q
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> SimEvent<()> {
        SimEvent::Timer { node, token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), timer(0, 3));
        q.schedule(SimTime::from_micros(10), timer(0, 1));
        q.schedule(SimTime::from_micros(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                SimEvent::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for token in 0..100 {
            q.schedule(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                SimEvent::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn export_restore_preserves_pop_order_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), timer(0, 3));
        q.schedule(SimTime::from_micros(10), timer(0, 1));
        q.schedule(SimTime::from_micros(10), timer(0, 2)); // same-instant tie
        q.pop(); // free a slab slot so restore sees a non-trivial layout
        q.schedule(SimTime::from_micros(10), timer(0, 9));

        let (entries, next_seq) = q.export_entries();
        let mut restored = EventQueue::from_entries(entries, next_seq);
        let drain = |q: &mut EventQueue<()>| {
            std::iter::from_fn(|| q.pop())
                .map(|(at, ev)| match ev {
                    SimEvent::Timer { token, .. } => (at, token),
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        // New events scheduled after restore continue the seq stream.
        q.schedule(SimTime::from_micros(10), timer(0, 42));
        restored.schedule(SimTime::from_micros(10), timer(0, 42));
        assert_eq!(drain(&mut q), drain(&mut restored));
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_micros(7), timer(1, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
