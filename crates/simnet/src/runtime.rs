//! The runtime abstraction: what a protocol node may ask of its host.
//!
//! Protocol state machines ([`crate::Node`] implementations) never talk to
//! an engine directly — every interaction with the outside world goes
//! through a [`NodeRuntime`]: sending messages, arming timers, reading the
//! clock, drawing randomness, and emitting trace events. The simulator's
//! [`crate::Ctx`] is one implementation; a live transport (e.g. the
//! `hypersub-net` TCP driver) is another. Because `Node` handlers are
//! generic over the runtime and every implementation is statically
//! dispatched, the abstraction costs the simulator hot path nothing: the
//! monomorphized sim code is identical to the pre-trait field accesses,
//! which the golden run digests and the hotpath benchmark pin.
//!
//! [`WireMsg`] is the companion contract for runtimes that put messages on
//! a real wire: an explicit, versioned byte encoding built on the
//! `hypersub-snapshot` codec, so sim-tested protocol types frame
//! identically across processes and releases.

use crate::engine::Ctx;
use crate::time::SimTime;
use crate::trace::ProtoEvent;
use hypersub_snapshot::{Error, Reader, Writer};
use rand::rngs::SmallRng;

/// The API surface a protocol node sees while handling an event, abstracted
/// over the engine that hosts it.
///
/// `M` is the message type, `W` the shared world (metric sinks, oracles,
/// scenario state). Implementations queue sends and timers rather than
/// blocking; delivery latency and timer dispatch are the host's concern.
///
/// The trait is deliberately not object-safe ([`NodeRuntime::trace`] takes
/// an `impl FnOnce` so a disabled recorder costs one branch and zero
/// allocation); hosts dispatch statically, which is what keeps the sim
/// digests bit-identical to the pre-trait code.
pub trait NodeRuntime<M, W> {
    /// Index of the node currently executing.
    fn me(&self) -> usize;

    /// The current time.
    fn now(&self) -> SimTime;

    /// Mutable access to the shared world.
    fn world(&mut self) -> &mut W;

    /// Deterministic randomness owned by the host.
    fn rng(&mut self) -> &mut SmallRng;

    /// Sends `msg` to node `dst`. Sending to self is allowed; the message
    /// is handed back to the node after already-queued work.
    fn send(&mut self, dst: usize, msg: M);

    /// Arms a timer to fire on this node after `delay`.
    fn set_timer(&mut self, delay: SimTime, token: u64);

    /// True when a trace sink is installed — lets protocols skip expensive
    /// event construction entirely.
    fn tracing(&self) -> bool;

    /// Records a protocol event if a trace sink is installed. The closure
    /// runs only when tracing is on.
    fn trace(&mut self, f: impl FnOnce() -> ProtoEvent);
}

/// The simulator context is the reference runtime: straight `#[inline]`
/// delegation to its public fields and inherent methods, so generic
/// protocol code monomorphized against `Ctx` compiles to exactly what the
/// pre-trait field accesses did.
impl<M, W> NodeRuntime<M, W> for Ctx<'_, M, W> {
    #[inline]
    fn me(&self) -> usize {
        self.me
    }

    #[inline]
    fn now(&self) -> SimTime {
        self.now
    }

    #[inline]
    fn world(&mut self) -> &mut W {
        &mut *self.world
    }

    #[inline]
    fn rng(&mut self) -> &mut SmallRng {
        &mut *self.rng
    }

    #[inline]
    fn send(&mut self, dst: usize, msg: M) {
        Ctx::send(self, dst, msg);
    }

    #[inline]
    fn set_timer(&mut self, delay: SimTime, token: u64) {
        Ctx::set_timer(self, delay, token);
    }

    #[inline]
    fn tracing(&self) -> bool {
        Ctx::tracing(self)
    }

    #[inline]
    fn trace(&mut self, f: impl FnOnce() -> ProtoEvent) {
        Ctx::trace(self, f);
    }
}

/// An explicit, versioned wire encoding for protocol messages, built on
/// the `hypersub-snapshot` codec.
///
/// Framing rules (see DESIGN.md "Transport & runtime"):
///
/// * The first byte of every encoded message is [`WireMsg::WIRE_VERSION`].
///   A decoder seeing any other value must reject the message — never
///   guess at a foreign layout.
/// * Any change to the byte layout of an existing message variant bumps
///   the version. Appending new enum variants under fresh tags is
///   version-compatible (old decoders reject the unknown tag as malformed,
///   which is the correct failure).
/// * [`WireMsg::from_wire_bytes`] rejects trailing bytes: a frame carries
///   exactly one message.
pub trait WireMsg: Sized {
    /// Version byte prefixed to every encoded message.
    const WIRE_VERSION: u8;

    /// Writes the message body (everything after the version byte).
    fn wire_encode(&self, w: &mut Writer);

    /// Reads a message body written by [`WireMsg::wire_encode`].
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, Error>;

    /// Encodes the full wire form: version byte + body.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(Self::WIRE_VERSION);
        self.wire_encode(&mut w);
        w.into_vec()
    }

    /// Decodes a full wire form produced by [`WireMsg::to_wire_bytes`],
    /// rejecting version mismatches and trailing bytes.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, Error> {
        let mut r = Reader::new(bytes);
        let version = r.take_u8()?;
        if version != Self::WIRE_VERSION {
            return Err(Error::UnsupportedVersion(version as u32));
        }
        let msg = Self::wire_decode(&mut r)?;
        r.finish()?;
        Ok(msg)
    }
}
