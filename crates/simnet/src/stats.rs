//! Byte-accurate network accounting.
//!
//! The paper's Figure 2d charges the *total bandwidth consumption for
//! delivering an event* and Figure 3 charges *per-node in/out bandwidth*
//! over the whole simulation. [`NetStats`] captures both: per-node byte and
//! message counters, plus per-flow byte counters keyed by an opaque flow id
//! (the HyperSub layer tags every delivery message with its event id).

use crate::fxhash::FxHashMap;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
}

/// Per-flow traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTraffic {
    /// Total bytes sent carrying this flow id.
    pub bytes: u64,
    /// Total messages sent carrying this flow id.
    pub msgs: u64,
}

/// Aggregate network statistics for one simulation run.
///
/// `PartialEq` compares every counter (flow maps compare as maps, so
/// iteration order is irrelevant); two runs of the same seeded scenario
/// must produce equal `NetStats`, which the determinism tests assert.
/// The flow map uses [`FxHashMap`]: every flow-tagged send does a lookup
/// here, and the map is only ever read back by key or as a whole map, so
/// the cheap fixed-seed hash is safe.
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    nodes: Vec<NodeTraffic>,
    flows: FxHashMap<u64, FlowTraffic>,
    dropped: u64,
    fault_dropped: u64,
    partition_dropped: u64,
    duplicated: u64,
    total_msgs: u64,
    total_bytes: u64,
}

impl NetStats {
    /// Creates counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            nodes: vec![NodeTraffic::default(); n],
            flows: FxHashMap::default(),
            dropped: 0,
            fault_dropped: 0,
            partition_dropped: 0,
            duplicated: 0,
            total_msgs: 0,
            total_bytes: 0,
        }
    }

    /// Charges an outgoing message at `src`, optionally tagged with a flow.
    pub fn record_out(&mut self, src: usize, bytes: usize, flow: Option<u64>) {
        let t = &mut self.nodes[src];
        t.bytes_out += bytes as u64;
        t.msgs_out += 1;
        self.total_msgs += 1;
        self.total_bytes += bytes as u64;
        if let Some(f) = flow {
            let ft = self.flows.entry(f).or_default();
            ft.bytes += bytes as u64;
            ft.msgs += 1;
        }
    }

    /// Charges an incoming message at `dst`.
    pub fn record_in(&mut self, dst: usize, bytes: usize) {
        let t = &mut self.nodes[dst];
        t.bytes_in += bytes as u64;
        t.msgs_in += 1;
    }

    /// Records a message dropped because its destination was down.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Records a message silently lost by probabilistic fault injection.
    pub fn record_fault_drop(&mut self) {
        self.fault_dropped += 1;
    }

    /// Records a message dropped by an active network partition.
    pub fn record_partition_drop(&mut self) {
        self.partition_dropped += 1;
    }

    /// Records an extra copy injected by fault duplication.
    pub fn record_duplicate(&mut self) {
        self.duplicated += 1;
    }

    /// Counters for one node.
    pub fn node(&self, i: usize) -> NodeTraffic {
        self.nodes[i]
    }

    /// Counters for every node.
    pub fn nodes(&self) -> &[NodeTraffic] {
        &self.nodes
    }

    /// Counters for one flow (zero if the flow never sent anything).
    pub fn flow(&self, id: u64) -> FlowTraffic {
        self.flows.get(&id).copied().unwrap_or_default()
    }

    /// All flows seen.
    pub fn flows(&self) -> &FxHashMap<u64, FlowTraffic> {
        &self.flows
    }

    /// Messages dropped at dead destinations.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages silently lost by probabilistic fault injection.
    pub fn fault_dropped(&self) -> u64 {
        self.fault_dropped
    }

    /// Messages dropped by active network partitions.
    pub fn partition_dropped(&self) -> u64 {
        self.partition_dropped
    }

    /// Extra message copies injected by fault duplication.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Total messages sent.
    pub fn total_msgs(&self) -> u64 {
        self.total_msgs
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

impl Encode for NodeTraffic {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.bytes_in);
        w.put_u64(self.bytes_out);
        w.put_u64(self.msgs_in);
        w.put_u64(self.msgs_out);
    }
}

impl Decode for NodeTraffic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(NodeTraffic {
            bytes_in: r.take_u64()?,
            bytes_out: r.take_u64()?,
            msgs_in: r.take_u64()?,
            msgs_out: r.take_u64()?,
        })
    }
}

impl Encode for FlowTraffic {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.bytes);
        w.put_u64(self.msgs);
    }
}

impl Decode for FlowTraffic {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(FlowTraffic {
            bytes: r.take_u64()?,
            msgs: r.take_u64()?,
        })
    }
}

// The flow map is encoded in sorted key order: FxHashMap iteration order
// depends on insertion history, and the golden byte-stability test pins
// exact snapshot bytes.
impl Encode for NetStats {
    fn encode(&self, w: &mut Writer) {
        self.nodes.encode(w);
        let mut flows: Vec<(u64, FlowTraffic)> = self.flows.iter().map(|(&k, &v)| (k, v)).collect();
        flows.sort_unstable_by_key(|&(k, _)| k);
        flows.encode(w);
        w.put_u64(self.dropped);
        w.put_u64(self.fault_dropped);
        w.put_u64(self.partition_dropped);
        w.put_u64(self.duplicated);
        w.put_u64(self.total_msgs);
        w.put_u64(self.total_bytes);
    }
}

impl Decode for NetStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let nodes = Vec::<NodeTraffic>::decode(r)?;
        let flows = Vec::<(u64, FlowTraffic)>::decode(r)?
            .into_iter()
            .collect::<FxHashMap<_, _>>();
        Ok(NetStats {
            nodes,
            flows,
            dropped: r.take_u64()?,
            fault_dropped: r.take_u64()?,
            partition_dropped: r.take_u64()?,
            duplicated: r.take_u64()?,
            total_msgs: r.take_u64()?,
            total_bytes: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut s = NetStats::new(3);
        s.record_out(0, 100, Some(7));
        s.record_in(1, 100);
        s.record_out(1, 50, Some(3));
        s.record_drop();
        s.record_fault_drop();
        s.record_duplicate();
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let back = NetStats::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn records_in_out_and_flows() {
        let mut s = NetStats::new(3);
        s.record_out(0, 100, Some(7));
        s.record_in(1, 100);
        s.record_out(1, 50, Some(7));
        s.record_out(1, 20, None);
        assert_eq!(s.node(0).bytes_out, 100);
        assert_eq!(s.node(1).bytes_in, 100);
        assert_eq!(s.node(1).bytes_out, 70);
        assert_eq!(s.node(1).msgs_out, 2);
        assert_eq!(s.flow(7).bytes, 150);
        assert_eq!(s.flow(7).msgs, 2);
        assert_eq!(s.flow(99).bytes, 0);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.total_bytes(), 170);
    }

    #[test]
    fn drops_counted() {
        let mut s = NetStats::new(1);
        s.record_drop();
        s.record_drop();
        assert_eq!(s.dropped(), 2);
    }
}
