//! Simulation time: a monotone microsecond counter.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
///
/// Microsecond granularity comfortably resolves the paper's latency scale
/// (network hops of tens of milliseconds) while keeping arithmetic integral
/// and therefore exactly reproducible.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Constructs from fractional milliseconds, rounding to microseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "invalid duration: {ms} ms");
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - other`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl hypersub_snapshot::Encode for SimTime {
    fn encode(&self, w: &mut hypersub_snapshot::Writer) {
        w.put_u64(self.0);
    }
}

impl hypersub_snapshot::Decode for SimTime {
    fn decode(r: &mut hypersub_snapshot::Reader<'_>) -> Result<Self, hypersub_snapshot::Error> {
        Ok(SimTime(r.take_u64()?))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimTime::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_micros(), 14_000);
        assert_eq!((a - b).as_micros(), 6_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(SimTime::ZERO, SimTime::from_micros(0));
    }
}
