//! Network latency models.
//!
//! The paper's network model "is derived from the King dataset, which
//! includes the pairwise latencies of 1740 DNS servers in the Internet
//! measured by the King method" with an average RTT of about 180 ms (§5.1).
//! That dataset is not redistributable here, so [`KingLikeTopology`]
//! synthesizes an equivalent: nodes are embedded in a 5-dimensional
//! Euclidean space (network coordinate studies show King embeds well in a
//! handful of dimensions) with deterministic per-pair multiplicative jitter
//! and a heavy right tail, then globally scaled so the mean RTT matches a
//! target. This preserves what the protocol layer cares about: realistic
//! spread, rough triangle inequality (so proximity neighbor selection has
//! something to exploit), and symmetric pairwise delays.

use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A pairwise one-way latency model over `len()` nodes.
pub trait Topology: Send + Sync {
    /// Number of nodes in the topology.
    fn len(&self) -> usize;

    /// One-way latency from `src` to `dst`. Must be 0 for `src == dst`.
    fn latency(&self, src: usize, dst: usize) -> SimTime;

    /// True if the topology has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean round-trip time, estimated over at most `samples` random pairs
    /// (exact over all pairs for small topologies).
    fn avg_rtt_sampled(&self, samples: usize, seed: u64) -> SimTime {
        let n = self.len();
        if n < 2 {
            return SimTime::ZERO;
        }
        let mut total_us: u128 = 0;
        let mut count: u128 = 0;
        if n * (n - 1) <= 2 * samples {
            for a in 0..n {
                for b in (a + 1)..n {
                    total_us +=
                        (self.latency(a, b).as_micros() + self.latency(b, a).as_micros()) as u128;
                    count += 1;
                }
            }
        } else {
            let mut rng = SmallRng::seed_from_u64(seed);
            while count < samples as u128 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                total_us +=
                    (self.latency(a, b).as_micros() + self.latency(b, a).as_micros()) as u128;
                count += 1;
            }
        }
        SimTime::from_micros((total_us / count.max(1)) as u64)
    }
}

/// Constant one-way latency between every pair of distinct nodes.
///
/// Useful for unit tests where hop counts, not latencies, are under test.
#[derive(Debug, Clone)]
pub struct UniformTopology {
    n: usize,
    one_way: SimTime,
}

impl UniformTopology {
    /// `n` nodes, each pair `one_way` apart.
    pub fn new(n: usize, one_way: SimTime) -> Self {
        Self { n, one_way }
    }
}

impl Topology for UniformTopology {
    fn len(&self) -> usize {
        self.n
    }

    fn latency(&self, src: usize, dst: usize) -> SimTime {
        if src == dst {
            SimTime::ZERO
        } else {
            self.one_way
        }
    }
}

/// An explicit `n x n` one-way latency matrix.
#[derive(Debug, Clone)]
pub struct MatrixTopology {
    n: usize,
    lat: Vec<SimTime>,
}

impl MatrixTopology {
    /// Builds from a row-major `n x n` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square or has nonzero diagonal.
    pub fn new(n: usize, lat: Vec<SimTime>) -> Self {
        assert_eq!(lat.len(), n * n, "latency matrix must be n x n");
        for i in 0..n {
            assert_eq!(lat[i * n + i], SimTime::ZERO, "diagonal must be zero");
        }
        Self { n, lat }
    }
}

impl Topology for MatrixTopology {
    fn len(&self) -> usize {
        self.n
    }

    fn latency(&self, src: usize, dst: usize) -> SimTime {
        self.lat[src * self.n + dst]
    }
}

/// Synthetic King-dataset-like topology (see module docs).
#[derive(Debug, Clone)]
pub struct KingLikeTopology {
    coords: Vec<[f64; 5]>,
    /// Microseconds of one-way latency per unit of Euclidean distance.
    scale: f64,
    /// Per-pair jitter seed.
    seed: u64,
    /// Precomputed row-major one-way latency matrix, populated for
    /// topologies up to [`Self::MATRIX_MAX_NODES`] nodes. Every message
    /// send does a latency lookup, so for paper-scale networks (the King
    /// dataset's 1740 nodes ≈ 24 MB of matrix) a table load replaces a
    /// 5-d distance + jitter-hash computation. Larger topologies fall
    /// back to computing on the fly.
    matrix: Option<Vec<SimTime>>,
}

impl KingLikeTopology {
    /// Dimensionality of the synthetic embedding.
    const DIMS: usize = 5;

    /// Largest node count for which the full latency matrix is cached
    /// (2048² × 8 B ≈ 34 MB; the paper's 1740-node network fits).
    pub const MATRIX_MAX_NODES: usize = 2048;

    /// Generates `n` nodes whose mean pairwise RTT is calibrated to
    /// `target_mean_rtt`. Deterministic in `(n, seed, target)`.
    pub fn generate(n: usize, target_mean_rtt: SimTime, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let coords: Vec<[f64; 5]> = (0..n)
            .map(|_| {
                let mut c = [0.0; Self::DIMS];
                for v in &mut c {
                    *v = rng.gen::<f64>();
                }
                c
            })
            .collect();
        let mut topo = Self {
            coords,
            scale: 1.0,
            seed,
            matrix: None,
        };
        if n >= 2 {
            // Calibrate: measure the mean jittered distance, then choose the
            // scale so mean one-way latency = target RTT / 2.
            let mut sum = 0.0;
            let mut count = 0u64;
            let sample_pairs = 50_000usize;
            if n * (n - 1) / 2 <= sample_pairs {
                for a in 0..n {
                    for b in (a + 1)..n {
                        sum += topo.jittered_distance(a, b);
                        count += 1;
                    }
                }
            } else {
                let mut prng = SmallRng::seed_from_u64(seed ^ 0x1234_5678);
                while count < sample_pairs as u64 {
                    let a = prng.gen_range(0..n);
                    let b = prng.gen_range(0..n);
                    if a == b {
                        continue;
                    }
                    sum += topo.jittered_distance(a, b);
                    count += 1;
                }
            }
            let mean = sum / count as f64;
            let target_one_way_us = target_mean_rtt.as_micros() as f64 / 2.0;
            topo.scale = target_one_way_us / mean.max(1e-9);
        }
        if (2..=Self::MATRIX_MAX_NODES).contains(&n) {
            // Jitter is symmetric, so one computation fills both triangles
            // with exactly the value the on-the-fly path would produce.
            let mut m = vec![SimTime::ZERO; n * n];
            for a in 0..n {
                for b in (a + 1)..n {
                    let l = topo.compute_latency(a, b);
                    m[a * n + b] = l;
                    m[b * n + a] = l;
                }
            }
            topo.matrix = Some(m);
        }
        topo
    }

    fn compute_latency(&self, src: usize, dst: usize) -> SimTime {
        let us = self.jittered_distance(src, dst) * self.scale;
        SimTime::from_micros(us.round().max(1.0) as u64)
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        let (ca, cb) = (&self.coords[a], &self.coords[b]);
        ca.iter()
            .zip(cb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// Deterministic symmetric per-pair jitter factor with a heavy right
    /// tail: most pairs land in `[0.55, 1.45)`, ~10% stretch up to ~3.5x
    /// (long transcontinental/satellite-ish paths in King).
    fn jitter_factor(&self, a: usize, b: usize) -> f64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut h = self.seed ^ 0xdead_beef_cafe_f00d;
        for v in [lo as u64, hi as u64] {
            h ^= v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = h.rotate_left(27).wrapping_mul(0x2545_f491_4f6c_dd1d);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < 0.9 {
            0.55 + u
        } else {
            1.45 + (u - 0.9) * 20.0
        }
    }

    fn jittered_distance(&self, a: usize, b: usize) -> f64 {
        // Floor keeps even co-located pairs at a realistic LAN-scale delay.
        self.distance(a, b) * self.jitter_factor(a, b) + 0.01
    }
}

impl Topology for KingLikeTopology {
    fn len(&self) -> usize {
        self.coords.len()
    }

    fn latency(&self, src: usize, dst: usize) -> SimTime {
        if src == dst {
            return SimTime::ZERO;
        }
        match &self.matrix {
            Some(m) => m[src * self.coords.len() + dst],
            None => self.compute_latency(src, dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_uniform() {
        let t = UniformTopology::new(4, SimTime::from_millis(10));
        assert_eq!(t.latency(0, 0), SimTime::ZERO);
        assert_eq!(t.latency(0, 3), SimTime::from_millis(10));
        assert_eq!(t.avg_rtt_sampled(1000, 1), SimTime::from_millis(20));
    }

    #[test]
    fn matrix_lookup() {
        let z = SimTime::ZERO;
        let m = MatrixTopology::new(
            2,
            vec![z, SimTime::from_millis(3), SimTime::from_millis(5), z],
        );
        assert_eq!(m.latency(0, 1), SimTime::from_millis(3));
        assert_eq!(m.latency(1, 0), SimTime::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "n x n")]
    fn matrix_shape_checked() {
        MatrixTopology::new(2, vec![SimTime::ZERO; 3]);
    }

    #[test]
    fn kinglike_calibrates_to_target_rtt() {
        let target = SimTime::from_millis(180);
        let t = KingLikeTopology::generate(500, target, 42);
        let avg = t.avg_rtt_sampled(20_000, 7);
        let err =
            (avg.as_micros() as f64 - target.as_micros() as f64).abs() / target.as_micros() as f64;
        assert!(err < 0.05, "avg RTT {avg} too far from target {target}");
    }

    #[test]
    fn kinglike_symmetric_and_deterministic() {
        let t1 = KingLikeTopology::generate(100, SimTime::from_millis(180), 1);
        let t2 = KingLikeTopology::generate(100, SimTime::from_millis(180), 1);
        for (a, b) in [(0, 1), (5, 99), (42, 43)] {
            assert_eq!(t1.latency(a, b), t1.latency(b, a), "symmetric");
            assert_eq!(t1.latency(a, b), t2.latency(a, b), "deterministic");
        }
    }

    #[test]
    fn kinglike_has_latency_spread() {
        let t = KingLikeTopology::generate(200, SimTime::from_millis(180), 3);
        let mut lats: Vec<u64> = (1..200).map(|i| t.latency(0, i).as_micros()).collect();
        lats.sort_unstable();
        let min = lats[0] as f64;
        let max = *lats.last().unwrap() as f64;
        assert!(max / min.max(1.0) > 3.0, "expected wide latency spread");
    }

    #[test]
    fn kinglike_matrix_matches_on_the_fly() {
        let t = KingLikeTopology::generate(64, SimTime::from_millis(180), 5);
        assert!(t.matrix.is_some(), "small topology caches its matrix");
        for a in 0..64 {
            for b in 0..64 {
                let expect = if a == b {
                    SimTime::ZERO
                } else {
                    t.compute_latency(a, b)
                };
                assert_eq!(t.latency(a, b), expect, "pair ({a}, {b})");
            }
        }
    }

    #[test]
    fn kinglike_self_latency_zero() {
        let t = KingLikeTopology::generate(10, SimTime::from_millis(180), 9);
        for i in 0..10 {
            assert_eq!(t.latency(i, i), SimTime::ZERO);
        }
    }
}
