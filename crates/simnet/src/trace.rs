//! The flight recorder: a bounded ring buffer of structured trace events.
//!
//! Recording is **off by default** and must stay observably free when
//! disabled: the engine guards every hook behind one `Option` check and
//! builds the event lazily, so a run with no recorder installed executes
//! the exact same instruction stream it did before this module existed.
//! Recording is also **digest-neutral** when enabled — the recorder only
//! observes; it never touches the RNG, the event queue, or message
//! contents (the property tests in the workspace assert run digests are
//! identical with recording on and off).
//!
//! Two event families share the buffer:
//!
//! * **network events** emitted by the engine itself (send, deliver, the
//!   three drop flavors, duplication, fail-stop notification, node
//!   fail/revive), and
//! * **protocol events** emitted by `Node` implementations through
//!   [`crate::Ctx::trace`] as [`ProtoEvent`]s — a flat
//!   `(kind, flow, a, b)` record so the engine stays protocol-agnostic
//!   while protocols keep typed constructors on their side.
//!
//! Every record is stamped with simulation time and the acting node. When
//! the buffer is full the *oldest* record is evicted (flight-recorder
//! semantics: the most recent window survives), and the eviction count is
//! kept so consumers can tell a truncated trace from a complete one.

use crate::time::SimTime;
use hypersub_snapshot::{Decode, Encode, Error, Reader, Writer};
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Interns a decoded event tag so it can live behind the `&'static str`
/// that [`ProtoEvent::kind`] requires. Kinds form a small, closed set
/// (a few dozen dot-namespaced tags), so a linear scan of the registry
/// is cheaper than a hash lookup and each distinct tag leaks at most
/// once per process.
fn intern_kind(s: &str) -> &'static str {
    static KINDS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut table = KINDS.get_or_init(Mutex::default).lock().unwrap();
    if let Some(k) = table.iter().find(|k| **k == s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

/// A protocol-defined trace event: a flat record the engine can store
/// without knowing the protocol's message types. `kind` is a static,
/// dot-namespaced tag (e.g. `"retry.ack"`); `a` and `b` carry two
/// kind-specific operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoEvent {
    /// Dot-namespaced event tag, e.g. `"sub.register"`.
    pub kind: &'static str,
    /// Application flow this event belongs to (e.g. an event id), if any.
    pub flow: Option<u64>,
    /// First kind-specific operand.
    pub a: u64,
    /// Second kind-specific operand.
    pub b: u64,
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The stamped node sent a message to `dst`.
    MsgSend {
        /// Destination node.
        dst: usize,
        /// Wire size in bytes.
        bytes: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// The stamped node received a message from `src`.
    MsgDeliver {
        /// Source node.
        src: usize,
        /// Wire size in bytes.
        bytes: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// A message from `src` arrived at the stamped node while it was
    /// failed and was dropped (fail-stop model).
    MsgDropDead {
        /// Source node.
        src: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// The fault plane lost the stamped node's message to `dst`.
    MsgDropLoss {
        /// Intended destination.
        dst: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// An active partition cut the stamped node's message to `dst`.
    MsgDropPartition {
        /// Intended destination.
        dst: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// The fault plane injected a duplicate of the stamped node's message
    /// to `dst`.
    MsgDuplicate {
        /// Destination node.
        dst: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// The stamped node was notified that its earlier send to the failed
    /// node `dst` could not be delivered.
    SendFailed {
        /// The dead destination.
        dst: usize,
        /// Flow id, if the payload is attributed.
        flow: Option<u64>,
    },
    /// The stamped node was failed.
    NodeFail,
    /// The stamped node was revived.
    NodeRevive,
    /// A protocol-emitted event (see [`ProtoEvent`]).
    Proto(ProtoEvent),
}

impl TraceEvent {
    /// Stable, dot-namespaced tag for summaries and reports. Protocol
    /// events report their own `kind`.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "net.send",
            TraceEvent::MsgDeliver { .. } => "net.deliver",
            TraceEvent::MsgDropDead { .. } => "net.drop_dead",
            TraceEvent::MsgDropLoss { .. } => "net.drop_loss",
            TraceEvent::MsgDropPartition { .. } => "net.drop_partition",
            TraceEvent::MsgDuplicate { .. } => "net.duplicate",
            TraceEvent::SendFailed { .. } => "net.send_failed",
            TraceEvent::NodeFail => "net.node_fail",
            TraceEvent::NodeRevive => "net.node_revive",
            TraceEvent::Proto(p) => p.kind,
        }
    }

    /// The flow id carried by the event, if any.
    pub fn flow(&self) -> Option<u64> {
        match self {
            TraceEvent::MsgSend { flow, .. }
            | TraceEvent::MsgDeliver { flow, .. }
            | TraceEvent::MsgDropDead { flow, .. }
            | TraceEvent::MsgDropLoss { flow, .. }
            | TraceEvent::MsgDropPartition { flow, .. }
            | TraceEvent::MsgDuplicate { flow, .. }
            | TraceEvent::SendFailed { flow, .. } => *flow,
            TraceEvent::NodeFail | TraceEvent::NodeRevive => None,
            TraceEvent::Proto(p) => p.flow,
        }
    }
}

/// One recorded trace entry: what happened, where, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub time: SimTime,
    /// The node the event is attributed to (sender for sends and
    /// send-side drops, receiver for deliveries and dead-drops).
    pub node: usize,
    /// The event itself.
    pub event: TraceEvent,
}

/// Bounded ring buffer of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    recorded: u64,
    evicted: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            recorded: 0,
            evicted: 0,
        }
    }

    /// Appends a record, evicting the oldest one when full.
    #[inline]
    pub fn record(&mut self, time: SimTime, node: usize, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(TraceRecord { time, node, event });
        self.recorded += 1;
    }

    /// Records currently held (at most `capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records evicted to make room (`recorded - len`, saturating).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Drops all retained records (counters keep accumulating).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Counts retained records per [`TraceEvent::kind`], sorted by kind.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for r in &self.buf {
            let kind = r.event.kind();
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, c)) => *c += 1,
                None => counts.push((kind, 1)),
            }
        }
        counts.sort_unstable_by_key(|&(k, _)| k);
        counts
    }
}

impl Encode for ProtoEvent {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.kind.len() as u64);
        w.put_bytes(self.kind.as_bytes());
        self.flow.encode(w);
        w.put_u64(self.a);
        w.put_u64(self.b);
    }
}

impl Decode for ProtoEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let kind = String::decode(r)?;
        Ok(ProtoEvent {
            kind: intern_kind(&kind),
            flow: Option::<u64>::decode(r)?,
            a: r.take_u64()?,
            b: r.take_u64()?,
        })
    }
}

impl Encode for TraceEvent {
    fn encode(&self, w: &mut Writer) {
        match self {
            TraceEvent::MsgSend { dst, bytes, flow } => {
                w.put_u8(0);
                dst.encode(w);
                bytes.encode(w);
                flow.encode(w);
            }
            TraceEvent::MsgDeliver { src, bytes, flow } => {
                w.put_u8(1);
                src.encode(w);
                bytes.encode(w);
                flow.encode(w);
            }
            TraceEvent::MsgDropDead { src, flow } => {
                w.put_u8(2);
                src.encode(w);
                flow.encode(w);
            }
            TraceEvent::MsgDropLoss { dst, flow } => {
                w.put_u8(3);
                dst.encode(w);
                flow.encode(w);
            }
            TraceEvent::MsgDropPartition { dst, flow } => {
                w.put_u8(4);
                dst.encode(w);
                flow.encode(w);
            }
            TraceEvent::MsgDuplicate { dst, flow } => {
                w.put_u8(5);
                dst.encode(w);
                flow.encode(w);
            }
            TraceEvent::SendFailed { dst, flow } => {
                w.put_u8(6);
                dst.encode(w);
                flow.encode(w);
            }
            TraceEvent::NodeFail => w.put_u8(7),
            TraceEvent::NodeRevive => w.put_u8(8),
            TraceEvent::Proto(p) => {
                w.put_u8(9);
                p.encode(w);
            }
        }
    }
}

impl Decode for TraceEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(match r.take_u8()? {
            0 => TraceEvent::MsgSend {
                dst: usize::decode(r)?,
                bytes: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            1 => TraceEvent::MsgDeliver {
                src: usize::decode(r)?,
                bytes: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            2 => TraceEvent::MsgDropDead {
                src: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            3 => TraceEvent::MsgDropLoss {
                dst: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            4 => TraceEvent::MsgDropPartition {
                dst: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            5 => TraceEvent::MsgDuplicate {
                dst: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            6 => TraceEvent::SendFailed {
                dst: usize::decode(r)?,
                flow: Option::decode(r)?,
            },
            7 => TraceEvent::NodeFail,
            8 => TraceEvent::NodeRevive,
            9 => TraceEvent::Proto(ProtoEvent::decode(r)?),
            _ => return Err(Error::InvalidValue("trace event tag")),
        })
    }
}

impl Encode for TraceRecord {
    fn encode(&self, w: &mut Writer) {
        self.time.encode(w);
        self.node.encode(w);
        self.event.encode(w);
    }
}

impl Decode for TraceRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(TraceRecord {
            time: SimTime::decode(r)?,
            node: usize::decode(r)?,
            event: TraceEvent::decode(r)?,
        })
    }
}

// The ring buffer is captured verbatim — retained window, capacity, and
// both lifetime counters — so a restored run's report (which embeds the
// trace summary) is byte-identical to the uninterrupted run's.
impl Encode for FlightRecorder {
    fn encode(&self, w: &mut Writer) {
        self.capacity.encode(w);
        w.put_u64(self.recorded);
        w.put_u64(self.evicted);
        w.put_u64(self.buf.len() as u64);
        for rec in &self.buf {
            rec.encode(w);
        }
    }
}

impl Decode for FlightRecorder {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let capacity = usize::decode(r)?;
        if capacity == 0 {
            return Err(Error::InvalidValue("flight recorder capacity"));
        }
        let recorded = r.take_u64()?;
        let evicted = r.take_u64()?;
        let n = usize::decode(r)?;
        if n > capacity {
            return Err(Error::InvalidValue("flight recorder overfull"));
        }
        let mut buf = VecDeque::with_capacity(capacity.min(1 << 20));
        for _ in 0..n {
            buf.push_back(TraceRecord::decode(r)?);
        }
        Ok(FlightRecorder {
            buf,
            capacity,
            recorded,
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Proto(ProtoEvent {
            kind: "test.ev",
            flow: Some(n),
            a: n,
            b: 0,
        })
    }

    #[test]
    fn records_are_kept_in_order() {
        let mut r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(SimTime::from_millis(i), i as usize, ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.evicted(), 0);
        let times: Vec<u64> = r.iter().map(|t| t.time.0).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.iter().next().unwrap().node, 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10 {
            r.record(SimTime::from_millis(i), 0, ev(i));
        }
        assert_eq!(r.len(), 3, "bounded at capacity");
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.evicted(), 7);
        // The survivors are the most recent window.
        let flows: Vec<Option<u64>> = r.iter().map(|t| t.event.flow()).collect();
        assert_eq!(flows, vec![Some(7), Some(8), Some(9)]);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut r = FlightRecorder::new(4);
        for i in 0..6 {
            r.record(SimTime::ZERO, 0, ev(i));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 6);
        assert_eq!(r.evicted(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn kind_counts_aggregate_retained_records() {
        let mut r = FlightRecorder::new(16);
        r.record(SimTime::ZERO, 0, TraceEvent::NodeFail);
        r.record(SimTime::ZERO, 0, TraceEvent::NodeRevive);
        r.record(SimTime::ZERO, 1, TraceEvent::NodeFail);
        r.record(SimTime::ZERO, 2, ev(1));
        let counts = r.kind_counts();
        assert_eq!(
            counts,
            vec![("net.node_fail", 2), ("net.node_revive", 1), ("test.ev", 1)]
        );
    }

    #[test]
    fn recorder_snapshot_round_trip_preserves_window_and_counters() {
        let mut rec = FlightRecorder::new(3);
        rec.record(SimTime::from_millis(1), 0, TraceEvent::NodeFail);
        for i in 0..5 {
            rec.record(SimTime::from_millis(2 + i), i as usize, ev(i));
        }
        rec.record(
            SimTime::from_millis(9),
            2,
            TraceEvent::MsgSend {
                dst: 4,
                bytes: 77,
                flow: Some(12),
            },
        );
        let mut w = Writer::new();
        rec.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let back = FlightRecorder::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.capacity(), rec.capacity());
        assert_eq!(back.recorded(), rec.recorded());
        assert_eq!(back.evicted(), rec.evicted());
        let a: Vec<&TraceRecord> = rec.iter().collect();
        let b: Vec<&TraceRecord> = back.iter().collect();
        assert_eq!(a, b);
        assert_eq!(back.kind_counts(), rec.kind_counts());
    }

    #[test]
    fn event_kind_and_flow_accessors() {
        let e = TraceEvent::MsgSend {
            dst: 3,
            bytes: 120,
            flow: Some(9),
        };
        assert_eq!(e.kind(), "net.send");
        assert_eq!(e.flow(), Some(9));
        assert_eq!(TraceEvent::NodeFail.flow(), None);
    }
}
