//! Versioned hand-rolled binary codec for deterministic simulation
//! checkpoints.
//!
//! This crate is the serialization substrate for HyperSub's
//! checkpoint/restore plane. It deliberately avoids serde (matching the
//! report crate's serde-free style): every byte written is explicit, so
//! the on-disk format is pinned by code review plus the golden
//! byte-stability test (`tests/golden/snapshot_v1.bin`), not by a
//! derive's implementation details.
//!
//! Format rules:
//!
//! * All integers are little-endian fixed width. Lengths are `u64`.
//! * `f64` is encoded as its IEEE-754 bit pattern (`to_bits`), so the
//!   round-trip is exact for every value including NaNs.
//! * `Option<T>` is a strict `0u8`/`1u8` tag followed by the payload.
//! * Hash maps/sets MUST be encoded in sorted key order by callers —
//!   std's per-process random SipHash seed makes iteration order
//!   unstable across processes, and the golden test pins exact bytes.
//! * A snapshot file is a self-checking [envelope]: magic `HSNP`, a
//!   `u32` format version, a length-prefixed payload, and an FNV-1a
//!   checksum of the payload. Decoders reject bad magic, unknown
//!   versions, corrupt payloads, and trailing garbage.
//!
//! Versioning policy: any change to the byte layout of any encoded type
//! bumps [`VERSION`]. There is no in-place migration — a snapshot is a
//! short-lived artifact tied to the binary that wrote it, so old
//! versions are rejected with [`Error::UnsupportedVersion`] rather than
//! upgraded.

/// File magic for snapshot envelopes.
pub const MAGIC: [u8; 4] = *b"HSNP";

/// Current snapshot format version. Bump on ANY byte-layout change.
pub const VERSION: u32 = 1;

/// Decode-side failure. Encoding is infallible by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// The envelope does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The envelope's format version is not [`VERSION`].
    UnsupportedVersion(u32),
    /// The payload checksum does not match the stored one.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A value was syntactically readable but semantically invalid
    /// (bad bool/option tag, invalid UTF-8, out-of-range enum tag, ...).
    InvalidValue(&'static str),
    /// Bytes remained after the top-level value was fully decoded.
    TrailingBytes(usize),
    /// The state contains something the codec cannot capture (e.g. a
    /// custom topology with no descriptor).
    Unsupported(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: need {needed} bytes, {remaining} remain")
            }
            Error::BadMagic(m) => write!(f, "bad snapshot magic {m:02x?}"),
            Error::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            Error::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Error::InvalidValue(what) => write!(f, "invalid value: {what}"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot payload"),
            Error::Unsupported(what) => write!(f, "cannot snapshot: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Cursor over encoded bytes for decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes one byte.
    pub fn take_u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, Error> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consumes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), Error> {
        if self.remaining() != 0 {
            return Err(Error::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// A type with a pinned binary encoding.
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

/// A type decodable from its pinned binary encoding.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error>;
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        r.take_u8()
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
}
impl Decode for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        r.take_u16()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}
impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        r.take_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}
impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        r.take_u64()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
}
impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        usize::try_from(r.take_u64()?).map_err(|_| Error::InvalidValue("usize overflow"))
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Error::InvalidValue("bool tag")),
        }
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.to_bits());
    }
}
impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(f64::from_bits(r.take_u64()?))
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = usize::decode(r)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::InvalidValue("utf-8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(Error::InvalidValue("option tag")),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let n = usize::decode(r)?;
        // Defend against corrupt lengths: cap the pre-allocation, let
        // EOF errors surface naturally while pushing.
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
}
impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode(&self, w: &mut Writer) {
        for v in self {
            v.encode(w);
        }
    }
}
impl<T: Decode + Copy + Default, const N: usize> Decode for [T; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, Error> {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
}

/// FNV-1a 64-bit hash — same function the run digests use, so the
/// envelope checksum needs no extra dependency.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps an encoded payload in the self-checking file envelope:
/// `MAGIC | VERSION | len(payload) | payload | fnv1a(payload)`.
pub fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let sum = fnv1a(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates an envelope and returns the payload slice.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], Error> {
    let mut r = Reader::new(bytes);
    let magic: [u8; 4] = r.take(4)?.try_into().unwrap();
    if magic != MAGIC {
        return Err(Error::BadMagic(magic));
    }
    let version = r.take_u32()?;
    if version != VERSION {
        return Err(Error::UnsupportedVersion(version));
    }
    let len = usize::decode(&mut r)?;
    let payload = r.take(len)?;
    let stored = r.take_u64()?;
    r.finish()?;
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(Error::ChecksumMismatch { stored, computed });
    }
    Ok(payload)
}

/// Encodes a value and seals it into an envelope in one step.
pub fn to_sealed_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    seal(w.into_vec())
}

/// Unseals an envelope and decodes a single value spanning the whole
/// payload (trailing payload bytes are an error).
pub fn from_sealed_bytes<T: Decode>(bytes: &[u8]) -> Result<T, Error> {
    let payload = unseal(bytes)?;
    let mut r = Reader::new(payload);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        r.finish().expect("consumed exactly");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xbeefu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(0.0f64);
        round_trip(-0.0f64);
        round_trip(std::f64::consts::PI);
        round_trip(f64::INFINITY);
        round_trip(String::from("héllo"));
        round_trip(String::new());
    }

    #[test]
    fn nan_round_trips_bit_exact() {
        let v = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_vec();
        let back = f64::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn composites_round_trip() {
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip((7u8, 9u64));
        round_trip((1u32, String::from("x"), false));
        round_trip([1u64, 2, 3, 4]);
        round_trip(vec![(0usize, Some(3.5f64)), (1, None)]);
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(
            bool::decode(&mut Reader::new(&[2])),
            Err(Error::InvalidValue("bool tag"))
        );
        assert_eq!(
            Option::<u8>::decode(&mut Reader::new(&[9])),
            Err(Error::InvalidValue("option tag"))
        );
    }

    #[test]
    fn eof_reported() {
        let err = u64::decode(&mut Reader::new(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, Error::UnexpectedEof { .. }));
    }

    #[test]
    fn envelope_round_trips_and_self_checks() {
        let bytes = to_sealed_bytes(&vec![10u64, 20, 30]);
        assert_eq!(&bytes[..4], b"HSNP");
        let back: Vec<u64> = from_sealed_bytes(&bytes).unwrap();
        assert_eq!(back, vec![10, 20, 30]);

        // Corrupt a payload byte: checksum catches it.
        let mut corrupt = bytes.clone();
        corrupt[20] ^= 0xff;
        assert!(matches!(
            from_sealed_bytes::<Vec<u64>>(&corrupt),
            Err(Error::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            from_sealed_bytes::<Vec<u64>>(&bad_magic),
            Err(Error::BadMagic(_))
        ));

        // Future version.
        let mut bad_ver = bytes.clone();
        bad_ver[4] = 0xff;
        assert!(matches!(
            from_sealed_bytes::<Vec<u64>>(&bad_ver),
            Err(Error::UnsupportedVersion(_))
        ));

        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            from_sealed_bytes::<Vec<u64>>(&trailing),
            Err(Error::TrailingBytes(1))
        ));
    }

    #[test]
    fn envelope_layout_is_pinned() {
        // 4 magic + 4 version + 8 len + payload + 8 checksum.
        let bytes = to_sealed_bytes(&7u8);
        assert_eq!(bytes.len(), 4 + 4 + 8 + 1 + 8);
        assert_eq!(bytes[4], 1); // version 1, little-endian low byte
        assert_eq!(bytes[8], 1); // payload length 1
        assert_eq!(bytes[16], 7); // payload itself
    }
}
