//! Empirical cumulative distribution functions.
//!
//! Figures 2 and 3 of the paper plot CDFs of per-event metrics (fraction of
//! matched subscriptions, max hops, max latency, bandwidth cost) and
//! per-node metrics (in/out bandwidth). [`Cdf`] collects raw samples and can
//! be queried for `F(x)`, quantiles, and evenly spaced plot points.

/// An empirical CDF over `f64` samples.
///
/// Samples are accumulated with [`Cdf::push`]; queries sort lazily (the sort
/// is cached and invalidated on insert).
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a CDF from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = Self::new();
        for s in iter {
            c.push(s);
        }
        c
    }

    /// Adds one sample. Non-finite samples are rejected with a panic, since
    /// they would poison every quantile query downstream.
    pub fn push(&mut self, sample: f64) {
        assert!(
            sample.is_finite(),
            "CDF sample must be finite, got {sample}"
        );
        self.samples.push(sample);
        self.sorted = false;
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// `F(x)`: the fraction of samples `<= x`. Empty CDFs return 0.
    pub fn fraction_le(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (`0.0 <= q <= 1.0`), by the nearest-rank method.
    ///
    /// # Panics
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.samples.is_empty(), "quantile of empty CDF");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// Smallest sample. Panics if empty.
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0).min(self.samples[0])
    }

    /// Largest sample. Panics if empty.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        *self.samples.last().expect("max of empty CDF")
    }

    /// Arithmetic mean. Panics if empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty(), "mean of empty CDF");
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Returns `(x, F(x))` pairs at every distinct sample value — the exact
    /// staircase of the empirical CDF, suitable for plotting or diffing.
    pub fn staircase(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.samples[i];
            let mut j = i + 1;
            while j < n && self.samples[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Returns `points` evenly spaced `(x, F(x))` pairs spanning
    /// `[min, max]`, the form the figure binaries print. Empty CDFs return
    /// an empty vector.
    pub fn plot_points(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let lo = self.samples[0];
        let hi = *self.samples.last().expect("nonempty");
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                let f = {
                    let idx = self.samples.partition_point(|&s| s <= x);
                    idx as f64 / self.samples.len() as f64
                };
                (x, f)
            })
            .collect()
    }

    /// Consumes the CDF and returns the sorted samples.
    pub fn into_sorted(mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.samples
    }
}

impl Extend<f64> for Cdf {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            self.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_le_basic() {
        let mut c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(0.5), 0.0);
        assert_eq!(c.fraction_le(1.0), 0.25);
        assert_eq!(c.fraction_le(2.5), 0.5);
        assert_eq!(c.fraction_le(4.0), 1.0);
        assert_eq!(c.fraction_le(100.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut c = Cdf::from_samples([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.2), 10.0);
        assert_eq!(c.quantile(0.5), 30.0);
        assert_eq!(c.quantile(1.0), 50.0);
        assert_eq!(c.max(), 50.0);
    }

    #[test]
    fn mean_is_arithmetic() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0]);
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn staircase_collapses_duplicates() {
        let mut c = Cdf::from_samples([1.0, 1.0, 2.0, 2.0, 2.0, 5.0]);
        let st = c.staircase();
        assert_eq!(st, vec![(1.0, 2.0 / 6.0), (2.0, 5.0 / 6.0), (5.0, 1.0)]);
    }

    #[test]
    fn plot_points_spans_range_and_ends_at_one() {
        let mut c = Cdf::from_samples((0..100).map(|i| i as f64));
        let pts = c.plot_points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 99.0);
        assert_eq!(pts[10].1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
    }

    #[test]
    fn empty_cdf_behaviour() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.fraction_le(1.0), 0.0);
        assert!(c.plot_points(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Cdf::new().push(f64::NAN);
    }

    #[test]
    fn unsorted_then_sorted_queries_interleave() {
        let mut c = Cdf::from_samples([3.0, 1.0]);
        assert_eq!(c.quantile(1.0), 3.0);
        c.push(0.5);
        assert_eq!(c.quantile(0.0), 0.5);
        assert_eq!(c.max(), 3.0);
    }
}
