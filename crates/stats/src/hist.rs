//! Fixed-width histograms, used for load-distribution reporting.

/// A histogram over `[lo, hi)` with `bins` equal-width buckets plus
/// overflow/underflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty: [{lo}, {hi})");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total number of recorded samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_lo, bin_hi, count)` triples for rendering.
    pub fn bins(&self) -> Vec<(f64, f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.5);
        h.record(9.99);
        h.record(-1.0);
        h.record(10.0);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bins_cover_range() {
        let h = Histogram::new(0.0, 100.0, 4);
        let bins = h.bins();
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0].0, 0.0);
        assert_eq!(bins[3].1, 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
