//! Statistics utilities shared by the HyperSub experiment harness.
//!
//! The paper's evaluation (§5) reports cumulative distribution functions of
//! per-event and per-node quantities (Figures 2–3), rank-ordered load plots
//! (Figure 4) and scalar summaries versus network size (Figure 5, Tables
//! 1–2). This crate provides the small, dependency-free building blocks for
//! all of those: [`Cdf`], [`Summary`], [`Histogram`] and an ASCII
//! [`table::Table`] renderer used by the `hypersub-bench` binaries.

pub mod cdf;
pub mod hist;
pub mod load;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use hist::Histogram;
pub use load::{gini, LoadDist};
pub use summary::Summary;
pub use table::Table;
