//! Per-node load distribution summaries for cross-system comparison.
//!
//! The shoot-out harness compares how rival pub/sub systems spread stored
//! subscriptions across the ring. A full CDF is overkill for a table row,
//! so [`LoadDist`] compresses a per-node load vector into the four numbers
//! the comparison actually turns on: the median (typical node), the p99
//! (tail node), the max (hottest node — the paper's §2 criticism of
//! rendezvous designs in one number), and the Gini coefficient (overall
//! concentration: 0 = perfectly even, → 1 = one node carries everything).

use crate::cdf::Cdf;

/// Gini coefficient of a sample set: mean absolute difference between all
/// pairs, normalized by twice the mean. 0.0 for empty input, an all-zero
/// vector, or perfectly uniform load; approaches 1.0 as a single sample
/// dominates. Computed from the sorted samples in O(n log n) via the
/// rank formula `G = (2·Σᵢ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n` (i is 1-based).
pub fn gini(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("load samples must not be NaN"));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Four-number summary of a per-node load vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDist {
    /// Median per-node load.
    pub p50: f64,
    /// 99th-percentile per-node load.
    pub p99: f64,
    /// Hottest node's load.
    pub max: f64,
    /// Gini coefficient over all nodes (see [`gini`]).
    pub gini: f64,
}

impl LoadDist {
    /// Summarizes per-node loads (one entry per node, zeros included —
    /// an idle node is part of the distribution).
    pub fn from_loads(loads: &[u64]) -> Self {
        let samples: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
        if samples.is_empty() {
            return Self {
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
                gini: 0.0,
            };
        }
        let mut cdf = Cdf::from_samples(samples.iter().copied());
        Self {
            p50: cdf.quantile(0.50),
            p99: cdf.quantile(0.99),
            max: cdf.max(),
            gini: gini(&samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0, 0.0]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12, "uniform → 0");
    }

    #[test]
    fn gini_concentration_ranks_correctly() {
        let even = gini(&[1.0, 1.0, 1.0, 1.0]);
        let skewed = gini(&[0.0, 0.0, 1.0, 3.0]);
        let one_node = gini(&[0.0, 0.0, 0.0, 4.0]);
        assert!(even < skewed && skewed < one_node);
        // n samples, one nonzero: G = (n-1)/n.
        assert!((one_node - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0, 4.0]);
        let b = gini(&[10.0, 20.0, 30.0, 40.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn load_dist_summary() {
        let loads: Vec<u64> = (0..100).collect();
        let d = LoadDist::from_loads(&loads);
        assert_eq!(d.max, 99.0);
        assert!((d.p50 - 49.0).abs() <= 1.0);
        assert!(d.p99 >= 97.0);
        assert!(d.gini > 0.0 && d.gini < 1.0);
    }

    #[test]
    fn load_dist_empty() {
        let d = LoadDist::from_loads(&[]);
        assert_eq!(d.max, 0.0);
        assert_eq!(d.gini, 0.0);
    }
}
