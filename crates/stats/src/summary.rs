//! Scalar summaries (count / mean / min / max / percentiles) of a metric.

use serde::{Deserialize, Serialize};

/// Incremental summary of a stream of `f64` samples.
///
/// Keeps the raw samples so exact percentiles can be reported (the sample
/// counts in these simulations — at most a few hundred thousand — make this
/// cheap and exact, which matters when diffing runs for reproducibility).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }

    /// Records a sample. Non-finite values panic: they indicate a metric
    /// bug upstream and would silently corrupt mean/percentiles.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "summary sample must be finite, got {x}");
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples (0 when empty).
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean (0 when empty, so tables render gracefully).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_finite()
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Exact `q`-percentile by nearest rank (`q` in `[0,1]`; 0 when empty).
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    /// Population standard deviation (0 when fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    /// Maps the +/-inf sentinels produced by folds over empty slices to 0.
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::from_samples([2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 20.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 8.0);
    }

    #[test]
    fn empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn percentiles() {
        let s = Summary::from_samples((1..=100).map(|i| i as f64));
        assert_eq!(s.percentile(0.5), 50.0);
        assert_eq!(s.percentile(0.99), 99.0);
        assert_eq!(s.percentile(1.0), 100.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s = Summary::from_samples([3.0, 3.0, 3.0]);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        let s = Summary::from_samples([1.0, 3.0]);
        assert!((s.stddev() - 1.0).abs() < 1e-12);
    }
}
