//! Minimal ASCII table renderer for experiment output.
//!
//! Every `hypersub-bench` binary prints its table/figure data through this
//! renderer so runs are diffable and EXPERIMENTS.md can quote them directly.

use std::fmt::Write as _;

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have the same arity as the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_disp<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<w$}", h, w = widths[i] + 2);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        let _ = writeln!(out, "{}", "-".repeat(total.max(4)));
        for row in &self.rows {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, "{:<w$}", row[i], w = widths[i] + 2);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `d` decimals, trimming needless trailing zeros for
/// integers ("3" instead of "3.00").
pub fn fmt_f64(x: f64, d: usize) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{:.*}", d, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_f64_trims() {
        assert_eq!(fmt_f64(3.0, 2), "3");
        assert_eq!(fmt_f64(std::f64::consts::E, 2), "2.72");
    }

    #[test]
    fn row_disp_accepts_numbers() {
        let mut t = Table::new("n", &["a", "b"]);
        t.row_disp(&[1, 2]);
        assert_eq!(t.len(), 1);
    }
}
