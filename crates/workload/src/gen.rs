//! Deterministic workload streams from a [`WorkloadSpec`].

use crate::spec::WorkloadSpec;
use crate::zipf::ZipfSampler;
use hypersub_core::model::Subscription;
use hypersub_lph::{Point, Rect};
use hypersub_simnet::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};

/// Generates event points, subscriptions and inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    value_zipf: Vec<ZipfSampler>,
    size_zipf: Vec<ZipfSampler>,
    exp: Exp<f64>,
    rng: SmallRng,
}

impl WorkloadGen {
    /// Creates a generator; everything downstream is a pure function of
    /// `(spec, seed)`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let value_zipf = spec
            .attrs
            .iter()
            .map(|a| ZipfSampler::new(spec.value_ranks, a.data_skew))
            .collect();
        let size_zipf = spec
            .attrs
            .iter()
            .map(|a| ZipfSampler::new(spec.size_ranks, a.size_skew))
            .collect();
        let mean_s = spec.mean_interarrival.as_secs_f64().max(1e-9);
        Self {
            spec,
            value_zipf,
            size_zipf,
            exp: Exp::new(1.0 / mean_s).expect("positive rate"),
            rng: SmallRng::seed_from_u64(seed ^ 0x3141_5926_5358_9793),
        }
    }

    /// The spec this generator draws from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws one attribute value: Zipf rank `k` "scaled and shifted" onto
    /// the domain (§5.1) — rank 0 sits at the hotspot, higher ranks wrap
    /// around the domain, so values cluster near the hotspot.
    fn value(&mut self, dim: usize) -> f64 {
        let a = &self.spec.attrs[dim];
        let k = self.value_zipf[dim].sample(&mut self.rng);
        let n = self.value_zipf[dim].n();
        // Jitter within the rank's cell keeps values continuous.
        let jitter: f64 = self.rng.gen();
        let frac = (a.data_hotspot + (k as f64 + jitter) / n as f64) % 1.0;
        a.min + frac * (a.max - a.min)
    }

    /// Draws an event point.
    pub fn event_point(&mut self) -> Point {
        Point((0..self.spec.dims()).map(|d| self.value(d)).collect())
    }

    /// Draws a subscription from the template: per-dimension range size
    /// from the size Zipf (rank 0 = smallest), centered on a value drawn
    /// from the data distribution, clamped to the domain.
    pub fn subscription(&mut self) -> Subscription {
        let d = self.spec.dims();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for dim in 0..d {
            let (min, max, size_hotspot) = {
                let a = &self.spec.attrs[dim];
                (a.min, a.max, a.size_hotspot)
            };
            let width = max - min;
            let k = self.size_zipf[dim].sample(&mut self.rng);
            let n = self.size_zipf[dim].n();
            let size = size_hotspot * width * (k as f64 + 1.0) / n as f64;
            let center = self.value(dim);
            lo.push((center - size / 2.0).max(min));
            hi.push((center + size / 2.0).min(max));
        }
        Subscription::new(Rect::new(lo, hi))
    }

    /// Like [`WorkloadGen::subscription`], but only the listed attributes
    /// get predicates — the rest span their whole domain (§3.5's
    /// motivating case: "subscriptions which do not specify predicates on
    /// all attributes are mapped to some larger content zones").
    pub fn subscription_on(&mut self, dims: &[usize]) -> Subscription {
        let full = self.subscription();
        let d = self.spec.dims();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for dim in 0..d {
            let a = &self.spec.attrs[dim];
            if dims.contains(&dim) {
                lo.push(full.rect.lo[dim]);
                hi.push(full.rect.hi[dim]);
            } else {
                lo.push(a.min);
                hi.push(a.max);
            }
        }
        Subscription::new(Rect::new(lo, hi))
    }

    /// Shifts every attribute's data hotspot by `delta` (a fraction of
    /// the domain, wrapping around) — the "viral topic" jump of a flash
    /// crowd: the popular region of the content space moves, and every
    /// value drawn afterwards clusters around the new hotspot. Draws no
    /// randomness, so two generators shifted at the same point in their
    /// streams stay in lockstep.
    pub fn shift_hotspot(&mut self, delta: f64) {
        for a in &mut self.spec.attrs {
            a.data_hotspot = (a.data_hotspot + delta).rem_euclid(1.0);
        }
    }

    /// Draws an exponential inter-arrival gap.
    pub fn interarrival(&mut self) -> SimTime {
        let secs = self.exp.sample(&mut self.rng);
        SimTime::from_micros((secs * 1e6).round().max(1.0) as u64)
    }

    /// Draws an inter-arrival gap stretched by `scale` (`1.0` = the
    /// spec's native rate; larger is slower). Feed it a
    /// [`crate::waves::DiurnalRate`] multiplier to shape a diurnal
    /// stream; the underlying exponential draw is the same as
    /// [`WorkloadGen::interarrival`]'s, so the scaled and unscaled
    /// streams consume identical randomness.
    pub fn scaled_interarrival(&mut self, scale: f64) -> SimTime {
        assert!(scale > 0.0, "interarrival scale must be positive");
        let base = self.interarrival();
        SimTime::from_micros(((base.0 as f64) * scale).round().max(1.0) as u64)
    }

    /// Draws a uniformly random node index (the paper publishes each event
    /// from a randomly chosen node).
    pub fn random_node(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use hypersub_core::model::Event;

    fn gen() -> WorkloadGen {
        WorkloadGen::new(WorkloadSpec::paper_table1(), 42)
    }

    #[test]
    fn events_stay_in_domain() {
        let mut g = gen();
        for _ in 0..1000 {
            let p = g.event_point();
            assert_eq!(p.dims(), 4);
            for (d, &v) in p.0.iter().enumerate() {
                let a = &g.spec.attrs[d];
                assert!(v >= a.min && v <= a.max, "dim {d} value {v}");
            }
        }
    }

    #[test]
    fn subscriptions_stay_in_domain_and_are_valid() {
        let mut g = gen();
        for _ in 0..1000 {
            let s = g.subscription();
            for d in 0..4 {
                assert!(s.rect.lo[d] <= s.rect.hi[d]);
                assert!(s.rect.lo[d] >= 0.0 && s.rect.hi[d] <= 10_000.0);
            }
        }
    }

    #[test]
    fn values_cluster_near_hotspot() {
        let mut g = gen();
        let a0 = g.spec.attrs[0].clone();
        let hotspot = a0.min + a0.data_hotspot * (a0.max - a0.min);
        let near = (0..20_000)
            .filter(|_| {
                let v = g.event_point().0[0];
                // Within 10% of the domain after the hotspot.
                let frac = (v - hotspot).rem_euclid(a0.max - a0.min) / (a0.max - a0.min);
                frac < 0.1
            })
            .count();
        // Zipf(0.95, 1000 ranks): the first 10% of ranks carry far more
        // than 10% of the mass.
        assert!(
            near > 20_000 / 5,
            "expected hotspot concentration, got {near}/20000"
        );
    }

    #[test]
    fn interarrival_mean_close_to_spec() {
        let mut g = gen();
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.interarrival().as_micros()).sum();
        let mean_ms = total as f64 / n as f64 / 1000.0;
        assert!((90.0..110.0).contains(&mean_ms), "mean {mean_ms} ms");
    }

    #[test]
    fn partial_subscriptions_default_unlisted_dims() {
        let mut g = gen();
        for _ in 0..100 {
            let s = g.subscription_on(&[1, 3]);
            assert_eq!(s.rect.lo[0], 0.0);
            assert_eq!(s.rect.hi[0], 10_000.0);
            assert_eq!(s.rect.lo[2], 0.0);
            assert_eq!(s.rect.hi[2], 10_000.0);
            assert!(s.rect.hi[1] - s.rect.lo[1] < 10_000.0);
        }
    }

    #[test]
    fn shifted_hotspot_moves_the_cluster() {
        let mut g = gen();
        g.shift_hotspot(0.4);
        let a0 = g.spec.attrs[0].clone();
        assert!((a0.data_hotspot - 0.5).abs() < 1e-12, "0.10 + 0.4");
        let hotspot = a0.min + a0.data_hotspot * (a0.max - a0.min);
        let near = (0..10_000)
            .filter(|_| {
                let v = g.event_point().0[0];
                let frac = (v - hotspot).rem_euclid(a0.max - a0.min) / (a0.max - a0.min);
                frac < 0.1
            })
            .count();
        assert!(
            near > 10_000 / 5,
            "values must cluster at the shifted hotspot, got {near}/10000"
        );
    }

    #[test]
    fn hotspot_shift_wraps_and_draws_no_randomness() {
        let mut a = gen();
        let mut b = gen();
        // Identical shifts keep the two random streams in lockstep: the
        // shift itself consumes no randomness.
        a.shift_hotspot(0.3);
        b.shift_hotspot(0.3);
        for _ in 0..50 {
            assert_eq!(a.event_point(), b.event_point());
            assert_eq!(a.subscription().rect, b.subscription().rect);
        }
        // Negative shifts wrap instead of going out of range.
        a.shift_hotspot(-0.55);
        for at in &a.spec.attrs {
            assert!((0.0..1.0).contains(&at.data_hotspot));
        }
        assert!(
            (a.spec.attrs[0].data_hotspot - 0.85).abs() < 1e-12,
            "0.10+0.3-0.55 wraps"
        );
    }

    #[test]
    fn scaled_interarrival_stretches_the_mean() {
        let mut g = gen();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.scaled_interarrival(3.0).as_micros()).sum();
        let mean_ms = total as f64 / n as f64 / 1000.0;
        assert!((270.0..330.0).contains(&mean_ms), "mean {mean_ms} ms");
    }

    #[test]
    fn deterministic() {
        let mut a = gen();
        let mut b = gen();
        for _ in 0..100 {
            assert_eq!(a.event_point(), b.event_point());
            assert_eq!(a.subscription().rect, b.subscription().rect);
        }
    }

    #[test]
    fn matched_fraction_in_paper_ballpark() {
        // Calibration guard: the average fraction of subscriptions matched
        // by an event should sit in the sub-percent range the paper
        // reports (Fig 2a avg 0.834%). Allow a generous band — the guard
        // exists to catch order-of-magnitude drift when the template
        // changes.
        let mut g = gen();
        let subs: Vec<Subscription> = (0..2000).map(|_| g.subscription()).collect();
        let mut total = 0usize;
        let events = 500;
        for _ in 0..events {
            let e = Event {
                id: 0,
                point: g.event_point(),
            };
            total += subs.iter().filter(|s| s.matches(&e)).count();
        }
        let avg_frac = total as f64 / events as f64 / subs.len() as f64;
        assert!(
            (0.001..0.05).contains(&avg_frac),
            "avg matched fraction {avg_frac} outside calibration band"
        );
    }
}
