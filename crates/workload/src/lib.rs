//! Synthetic workload generation for HyperSub experiments.
//!
//! §5.1 of the paper: "We use synthetic datasets in our simulations.
//! Events are generated based on Zipfian distribution, which is a common
//! distribution of real world datasets. [...] Data points are modeled by
//! scaling and shifting the domain of k. Subscriptions are generated from
//! a template with the following properties: (1) the size of the range on
//! each dimension is based on zipfian distribution; (2) the center of the
//! range is based on the data distribution (same distribution as event
//! points)."
//!
//! [`spec::WorkloadSpec`] captures the Table 1 parameters (per-attribute
//! domain, data skew & hotspot, size skew & hotspot); [`gen::WorkloadGen`]
//! turns a spec into deterministic event and subscription streams with
//! exponentially distributed inter-arrival times.

pub mod gen;
pub mod spec;
pub mod waves;
pub mod zipf;

pub use gen::WorkloadGen;
pub use spec::{AttributeSpec, WorkloadSpec};
pub use waves::{join_leave_waves, ChurnPlan, DiurnalRate, WaveAction, WaveKind};
pub use zipf::ZipfSampler;
