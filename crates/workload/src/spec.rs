//! Workload specifications — the reproduction of Table 1.
//!
//! The OCR of the paper garbles Table 1's numeric cells ("Publish/
//! subscribe scheme and properties": per-dimension size, min, max, data
//! skew factor, data hotspot, size skew factor, size hotspot). The
//! structure is unambiguous — four attributes, Zipf-skewed data with a
//! hotspot, Zipf-skewed subscription range sizes — so
//! [`WorkloadSpec::paper_table1`] fixes concrete values with the same
//! shape, calibrated so that the average percentage of matched
//! subscriptions per event is ≈ 0.8 % (the paper's Figure 2a reports an
//! average of 0.834 %). The chosen values are documented in
//! EXPERIMENTS.md and printed by the `table1` bench binary.

use hypersub_core::model::SchemeDef;
use hypersub_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// One attribute of the pub/sub scheme (one row of Table 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeSpec {
    /// Attribute name.
    pub name: String,
    /// Domain lower bound.
    pub min: f64,
    /// Domain upper bound.
    pub max: f64,
    /// Zipf skew factor of event values on this attribute.
    pub data_skew: f64,
    /// Hotspot position as a fraction of the domain (where the most
    /// popular values cluster).
    pub data_hotspot: f64,
    /// Zipf skew factor of subscription range sizes.
    pub size_skew: f64,
    /// Largest subscription range as a fraction of the domain.
    pub size_hotspot: f64,
}

/// A complete workload description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Scheme name (drives the zone-mapping rotation offset).
    pub scheme_name: String,
    /// Attribute rows (Table 1).
    pub attrs: Vec<AttributeSpec>,
    /// Subscriptions installed per node.
    pub subs_per_node: usize,
    /// Number of events published (the paper schedules 20,000).
    pub events: usize,
    /// Mean of the exponential event inter-arrival time (the paper uses
    /// 100 ms).
    pub mean_interarrival: SimTime,
    /// Ranks used by the Zipf value generator (resolution of the data
    /// distribution).
    pub value_ranks: usize,
    /// Ranks used by the Zipf size generator.
    pub size_ranks: usize,
}

impl WorkloadSpec {
    /// The Table 1 workload: a 4-attribute scheme. See module docs for the
    /// calibration rationale.
    pub fn paper_table1() -> Self {
        let attr = |name: &str, data_skew: f64, data_hotspot: f64| AttributeSpec {
            name: name.to_string(),
            min: 0.0,
            max: 10_000.0,
            data_skew,
            data_hotspot,
            size_skew: 0.6,
            // Calibrated so the average matched fraction ≈ 0.834 % (the
            // figure the paper's Fig 2a legend reports) — see the `calib`
            // sweep in EXPERIMENTS.md.
            size_hotspot: 0.41,
        };
        Self {
            scheme_name: "table1".to_string(),
            attrs: vec![
                attr("a0", 0.95, 0.10),
                attr("a1", 0.80, 0.30),
                attr("a2", 0.95, 0.50),
                attr("a3", 0.70, 0.70),
            ],
            subs_per_node: 10,
            events: 20_000,
            mean_interarrival: SimTime::from_millis(100),
            value_ranks: 1_000,
            size_ranks: 100,
        }
    }

    /// A scaled-down variant for tests and smoke runs.
    pub fn small() -> Self {
        Self {
            subs_per_node: 4,
            events: 200,
            ..Self::paper_table1()
        }
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }

    /// Builds the corresponding scheme definition.
    pub fn scheme_def(&self, id: u32) -> SchemeDef {
        let mut b = SchemeDef::builder(&self.scheme_name);
        for a in &self.attrs {
            b = b.attribute(&a.name, a.min, a.max);
        }
        b.build(id)
    }

    /// Builds the scheme definition with §3.5 subschemes (each covering
    /// the listed attribute indices).
    pub fn scheme_def_with_subschemes(&self, id: u32, subschemes: &[&[usize]]) -> SchemeDef {
        let mut b = SchemeDef::builder(&self.scheme_name);
        for a in &self.attrs {
            b = b.attribute(&a.name, a.min, a.max);
        }
        for ss in subschemes {
            b = b.subscheme(ss);
        }
        b.build(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let s = WorkloadSpec::paper_table1();
        assert_eq!(s.dims(), 4);
        assert_eq!(s.events, 20_000);
        assert_eq!(s.subs_per_node, 10);
        assert_eq!(s.mean_interarrival, SimTime::from_millis(100));
    }

    #[test]
    fn scheme_def_matches_spec() {
        let s = WorkloadSpec::paper_table1();
        let def = s.scheme_def(0);
        assert_eq!(def.dims(), 4);
        assert_eq!(def.space.domain(0).lo, 0.0);
        assert_eq!(def.space.domain(3).hi, 10_000.0);
        assert_eq!(def.subschemes.len(), 1);
    }

    #[test]
    fn subscheme_variant() {
        let s = WorkloadSpec::paper_table1();
        let def = s.scheme_def_with_subschemes(0, &[&[0, 1], &[2, 3]]);
        assert_eq!(def.subschemes.len(), 2);
        assert_eq!(def.subschemes[0].attrs, vec![0, 1]);
    }
}
