//! Time-varying workload modulation: diurnal rate curves, mass
//! join/leave waves, and sustained-churn plans.
//!
//! Everything here is a *plan*, not an executor: plans are pure
//! functions of their construction parameters (plus a seed), and emit
//! [`WaveAction`]s the caller applies to a network (`fail`/`revive`).
//! That keeps them deterministic, snapshot-friendly (a plan can be
//! rebuilt and fast-forwarded to any point in time), and independent of
//! the simulator's random stream.

use hypersub_simnet::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A deterministic diurnal load curve: a triangle wave over `period`
/// with the peak at mid-period. (A triangle instead of a sinusoid keeps
/// the curve exactly reproducible across platforms — no `libm` calls.)
#[derive(Debug, Clone, Copy)]
pub struct DiurnalRate {
    /// Length of one day.
    pub period: SimTime,
    /// Interarrival stretch factor at the trough (`>= 1`); the peak is
    /// always `1.0` (the generator's native rate).
    pub trough_scale: f64,
}

impl DiurnalRate {
    /// The interarrival multiplier at `now`: `1.0` at the peak
    /// (mid-period), `trough_scale` at the trough (period boundaries),
    /// linear in between. Multiply generator gaps by this.
    pub fn scale_at(&self, now: SimTime) -> f64 {
        assert!(
            self.period > SimTime::ZERO,
            "diurnal period must be positive"
        );
        assert!(
            self.trough_scale >= 1.0,
            "trough must not be faster than peak"
        );
        let phase = (now.0 % self.period.0) as f64 / self.period.0 as f64;
        // 0 at the boundaries, 1 at mid-period.
        let tri = 1.0 - (2.0 * phase - 1.0).abs();
        self.trough_scale + (1.0 - self.trough_scale) * tri
    }
}

/// Whether a node leaves (fail-stop) or rejoins (revive) the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveKind {
    /// The node fails at the stamped time.
    Leave,
    /// The node revives at the stamped time.
    Join,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveAction {
    /// When the change happens.
    pub at: SimTime,
    /// The node affected.
    pub node: usize,
    /// Leave or join.
    pub kind: WaveKind,
}

/// Plans `waves` mass join/leave waves over `eligible` nodes: every
/// `period` starting at `first`, `wave_size` distinct nodes (drawn
/// without replacement from a stream seeded by `seed`) leave together
/// and rejoin `downtime` later. Waves must not overlap
/// (`downtime <= period`) so each wave draws from a fully rejoined
/// pool. The returned actions are sorted by time.
pub fn join_leave_waves(
    eligible: &[usize],
    waves: usize,
    wave_size: usize,
    first: SimTime,
    period: SimTime,
    downtime: SimTime,
    seed: u64,
) -> Vec<WaveAction> {
    assert!(wave_size <= eligible.len(), "wave larger than the pool");
    assert!(downtime <= period, "waves must not overlap");
    assert!(downtime > SimTime::ZERO, "a wave must have downtime");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57a7_e50f_0ae5_1d3a);
    let mut actions = Vec::with_capacity(waves * wave_size * 2);
    let mut pool: Vec<usize> = eligible.to_vec();
    for w in 0..waves {
        let start = SimTime(first.0 + period.0 * w as u64);
        // Partial Fisher-Yates: the first `wave_size` entries after the
        // loop are this wave's members.
        for i in 0..wave_size {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        for &node in &pool[..wave_size] {
            actions.push(WaveAction {
                at: start,
                node,
                kind: WaveKind::Leave,
            });
            actions.push(WaveAction {
                at: start + downtime,
                node,
                kind: WaveKind::Join,
            });
        }
    }
    actions.sort_by_key(|a| (a.at, a.node, a.kind == WaveKind::Join));
    actions
}

/// A sustained-churn plan: after `start`, one membership step every
/// `step`. Each step first ramps the failed set up to `target_down`
/// nodes, then rotates it — reviving the longest-dead node and failing
/// a fresh one — so roughly `target_down / eligible.len()` of the pool
/// is down at any instant, and every node keeps cycling through
/// failure.
///
/// The plan is a pure function of `(eligible, target_down, step, start,
/// seed)` and the *amount of time consumed*: chunking
/// [`ChurnPlan::actions_until`] calls differently yields the identical
/// action stream, so a checkpointed run can rebuild the plan and
/// fast-forward it to the resume point.
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    eligible: Vec<usize>,
    target_down: usize,
    step: SimTime,
    next: SimTime,
    rng: SmallRng,
    down: VecDeque<usize>,
}

impl ChurnPlan {
    /// Creates a plan. `target_down` must leave at least one eligible
    /// node up.
    pub fn new(
        eligible: Vec<usize>,
        target_down: usize,
        step: SimTime,
        start: SimTime,
        seed: u64,
    ) -> Self {
        assert!(step > SimTime::ZERO, "churn step must be positive");
        assert!(
            target_down < eligible.len(),
            "churn must leave eligible nodes up"
        );
        Self {
            eligible,
            target_down,
            step,
            next: start,
            rng: SmallRng::seed_from_u64(seed ^ 0xc42b_0411_5042_11fe),
            down: VecDeque::new(),
        }
    }

    /// Nodes currently failed under this plan.
    pub fn down(&self) -> impl Iterator<Item = usize> + '_ {
        self.down.iter().copied()
    }

    /// Advances the plan to `until` (exclusive) and returns the actions
    /// in between, in order. Apply each as `fail` (Leave) or `revive`
    /// (Join) at its stamped time.
    pub fn actions_until(&mut self, until: SimTime) -> Vec<WaveAction> {
        let mut actions = Vec::new();
        while self.next < until {
            let at = self.next;
            self.next += self.step;
            if self.down.len() >= self.target_down {
                let node = self.down.pop_front().expect("nonempty at target");
                actions.push(WaveAction {
                    at,
                    node,
                    kind: WaveKind::Join,
                });
            }
            let ups: Vec<usize> = self
                .eligible
                .iter()
                .copied()
                .filter(|n| !self.down.contains(n))
                .collect();
            let victim = ups[self.rng.gen_range(0..ups.len())];
            self.down.push_back(victim);
            actions.push(WaveAction {
                at,
                node: victim,
                kind: WaveKind::Leave,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_scale_peaks_at_mid_period_and_wraps() {
        let d = DiurnalRate {
            period: SimTime::from_secs(100),
            trough_scale: 4.0,
        };
        assert_eq!(d.scale_at(SimTime::ZERO), 4.0);
        assert_eq!(d.scale_at(SimTime::from_secs(50)), 1.0);
        assert_eq!(d.scale_at(SimTime::from_secs(100)), 4.0, "wraps");
        let q = d.scale_at(SimTime::from_secs(25));
        assert!((q - 2.5).abs() < 1e-9, "linear ramp, got {q}");
        // Monotone down on the second half-day.
        let a = d.scale_at(SimTime::from_secs(60));
        let b = d.scale_at(SimTime::from_secs(80));
        assert!(a < b);
    }

    #[test]
    fn waves_pair_each_leave_with_a_later_join() {
        let eligible: Vec<usize> = (8..32).collect();
        let acts = join_leave_waves(
            &eligible,
            3,
            6,
            SimTime::from_secs(10),
            SimTime::from_secs(50),
            SimTime::from_secs(20),
            99,
        );
        assert_eq!(acts.len(), 3 * 6 * 2);
        assert!(acts.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        for w in 0..3 {
            let start = SimTime::from_secs(10 + 50 * w);
            let leaves: Vec<usize> = acts
                .iter()
                .filter(|a| a.at == start && a.kind == WaveKind::Leave)
                .map(|a| a.node)
                .collect();
            assert_eq!(leaves.len(), 6, "wave {w} size");
            for n in &leaves {
                assert!(eligible.contains(n));
                assert!(acts.iter().any(|a| a.kind == WaveKind::Join
                    && a.node == *n
                    && a.at == start + SimTime::from_secs(20)));
            }
            // Distinct members within a wave.
            let mut sorted = leaves.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 6);
        }
    }

    #[test]
    fn waves_are_seed_deterministic() {
        let eligible: Vec<usize> = (0..20).collect();
        let run = |seed| {
            join_leave_waves(
                &eligible,
                4,
                5,
                SimTime::from_secs(5),
                SimTime::from_secs(30),
                SimTime::from_secs(30),
                seed,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn churn_plan_ramps_to_target_then_rotates() {
        let mut plan = ChurnPlan::new(
            (8..24).collect(),
            5,
            SimTime::from_secs(2),
            SimTime::from_secs(10),
            3,
        );
        // Ramp: the first 5 steps only fail.
        let ramp = plan.actions_until(SimTime::from_secs(20));
        assert_eq!(ramp.len(), 5);
        assert!(ramp.iter().all(|a| a.kind == WaveKind::Leave));
        assert_eq!(plan.down().count(), 5);
        // Steady state: every step revives the oldest and fails a fresh
        // node, holding the failed set at the target.
        let steady = plan.actions_until(SimTime::from_secs(40));
        assert_eq!(steady.len(), 20, "10 steps x (join + leave)");
        assert_eq!(plan.down().count(), 5);
        let joins = steady.iter().filter(|a| a.kind == WaveKind::Join).count();
        assert_eq!(joins, 10);
        // The rotation revives strictly in failure order.
        assert_eq!(steady[0].kind, WaveKind::Join);
        assert_eq!(steady[0].node, ramp[0].node);
    }

    #[test]
    fn churn_plan_is_chunking_independent() {
        let make = || {
            ChurnPlan::new(
                (0..16).collect(),
                5,
                SimTime::from_secs(1),
                SimTime::ZERO,
                42,
            )
        };
        let mut one = make();
        let whole = one.actions_until(SimTime::from_secs(60));
        let mut two = make();
        let mut chunked = Vec::new();
        for t in [7u64, 13, 13, 41, 60] {
            chunked.extend(two.actions_until(SimTime::from_secs(t)));
        }
        assert_eq!(whole, chunked);
        assert_eq!(
            one.down().collect::<Vec<_>>(),
            two.down().collect::<Vec<_>>()
        );
    }

    #[test]
    fn churn_plan_never_fails_a_dead_node_or_empties_the_pool() {
        let eligible: Vec<usize> = (0..10).collect();
        let mut plan = ChurnPlan::new(eligible.clone(), 3, SimTime::from_secs(1), SimTime::ZERO, 5);
        let mut down = std::collections::HashSet::new();
        for a in plan.actions_until(SimTime::from_secs(200)) {
            match a.kind {
                WaveKind::Leave => assert!(down.insert(a.node), "double fail of {}", a.node),
                WaveKind::Join => assert!(down.remove(&a.node), "revive of live {}", a.node),
            }
            assert!(down.len() <= 3);
        }
    }
}
