//! Zipfian rank sampling.
//!
//! The paper defines the distribution by its CDF `H_{k,s} / H_{N,s}`
//! (generalized harmonic numbers with skew factor `s`). We precompute that
//! CDF once and sample ranks by binary search — exact, O(log N) per
//! sample, and independent of external distribution crates for the core
//! definition (rand_distr is still used for the exponential arrivals).

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(k+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `s >= 0` (s = 0 is
    /// uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "invalid skew {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let z = ZipfSampler::new(100, 0.95);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        for w in z.cdf.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn skew_concentrates_low_ranks() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut low = 0;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With s=1 and N=1000, P(rank < 10) = H_10 / H_1000 ≈ 0.39.
        let frac = low as f64 / n as f64;
        assert!((0.35..0.45).contains(&frac), "got {frac}");
    }

    #[test]
    fn zero_skew_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(50, 0.7);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
