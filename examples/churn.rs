//! Churn: Chord maintenance plus the self-healing subscription plane
//! keeping delivery alive through node failures.
//!
//! The paper leaves high-churn evaluation as future work but relies on
//! "the underlying DHT to deal with nodes join/departure/failure" (§6).
//! This example enables the maintenance protocol (stabilize, fix-fingers,
//! failure eviction) and self-healing (successor replication, soft-state
//! leases, ownership handoff), kills 5% of nodes mid-stream, and shows
//! that events keep reaching subscribers on surviving nodes once the ring
//! heals — with no global refresh of any kind.
//!
//! Run with: `cargo run --release -p hypersub-examples --bin churn`

use hypersub_core::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scheme = SchemeDef::builder("feed")
        .attribute("topic", 0.0, 100.0)
        .attribute("score", 0.0, 1.0)
        .build(0);
    let registry = Registry::new(vec![scheme.clone()]);
    let nodes = 128;
    let mut net = Network::builder(nodes)
        .registry(registry)
        .config(SystemConfig::default().with_self_healing())
        .seed(77)
        .build()
        .expect("valid configuration");
    net.enable_maintenance();
    let mut rng = SmallRng::seed_from_u64(13);

    // Survivor subscribers only (so ground truth stays checkable after
    // the failures): nodes 0..64 subscribe, nodes 64..128 may die.
    for node in 0..64 {
        let topic = rng.gen_range(0.0..90.0);
        let sub = Subscription::from_predicates(&scheme.space, &[(0, topic, topic + 10.0)]);
        net.subscribe(node, 0, sub);
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    // Phase 1: healthy network.
    let mut t = net.time();
    for _ in 0..200 {
        let node = rng.gen_range(0..64);
        let point = Point(vec![rng.gen_range(0.0..100.0), rng.gen()]);
        net.schedule_publish(t, node, 0, point)
            .expect("publisher index in range");
        t += SimTime::from_millis(50);
    }
    net.run_until(t + SimTime::from_secs(5));
    let healthy = net.event_stats();
    let healthy_ok = healthy.iter().filter(|s| s.delivered == s.expected).count();
    println!(
        "phase 1 (healthy): {}/{} events fully delivered",
        healthy_ok,
        healthy.len()
    );

    // Kill 6 of the non-subscriber nodes.
    let mut dead = Vec::new();
    while dead.len() < 6 {
        let victim = rng.gen_range(64..nodes);
        if !dead.contains(&victim) {
            net.fail(victim).expect("victim in range and alive");
            dead.push(victim);
        }
    }
    println!("killed nodes: {dead:?}");
    // Let stabilization evict them and heal the ring. The successors of
    // the dead nodes promote the replicated rendezvous state, and the
    // soft-state leases re-push anything still missing — the window below
    // covers several lease periods.
    net.run_until(net.time() + SimTime::from_secs(40));

    // Phase 2: publish again from surviving nodes.
    let before = net.event_stats().len();
    let mut t = net.time();
    for _ in 0..200 {
        let node = rng.gen_range(0..64);
        let point = Point(vec![rng.gen_range(0.0..100.0), rng.gen()]);
        net.schedule_publish(t, node, 0, point)
            .expect("publisher index in range");
        t += SimTime::from_millis(50);
    }
    net.run_until(t + SimTime::from_secs(10));
    let all = net.event_stats();
    let after: Vec<_> = all.iter().skip(before).collect();
    let after_ok = after.iter().filter(|s| s.delivered == s.expected).count();
    println!(
        "phase 2 (after 6 failures + self-healing): {}/{} events fully delivered",
        after_ok,
        after.len()
    );
    // With the ring healed and the soft state self-repaired, delivery
    // should be essentially fully restored (a stray finger may still be
    // stale).
    assert!(
        after_ok as f64 >= 0.98 * after.len() as f64,
        "healed + self-repaired ring must keep delivering ({after_ok}/{})",
        after.len()
    );
    println!("churn OK");
}
