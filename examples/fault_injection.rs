//! Fault-injection demo: a 64-node network under 1% uniform message
//! loss, a 0.5% duplication rate, 20 ms jitter and a 30-second ring
//! bisection — with the retry/ack layer and the self-healing plane
//! keeping delivery complete and duplicate-free once the partition heals.
//!
//! Run with: `cargo run -p hypersub-examples --release --bin fault_injection`

use hypersub_core::prelude::*;
use hypersub_simnet::{FaultPlane, LinkPolicy};

fn main() {
    let scheme = SchemeDef::builder("quotes")
        .attribute("price", 0.0, 100.0)
        .attribute("volume", 0.0, 100.0)
        .build(0);
    let mut net = Network::builder(64)
        .registry(Registry::new(vec![scheme]))
        .config(SystemConfig::default().with_retries().with_self_healing())
        .seed(7)
        .build()
        .expect("valid configuration");

    // Every node subscribes to a staggered price band.
    for i in 0..64 {
        let lo = ((i * 7) % 75) as f64;
        net.subscribe(
            i,
            0,
            Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 25.0, 100.0])),
        );
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    // Faults have their own seed, independent of the workload's.
    let mut faults = FaultPlane::new(99);
    faults.set_global_policy(
        LinkPolicy::loss(0.01)
            .with_duplication(0.005)
            .with_jitter(SimTime::from_millis(20)),
    );
    let t0 = net.time();
    faults.add_partition(0..32, t0, t0 + SimTime::from_secs(30));
    net.install_fault_plane(faults);

    // Publish while the ring is bisected: cross-cut pairs are lost.
    for p in 0..10 {
        net.schedule_publish(
            t0 + SimTime::from_secs(2),
            (p * 5) % 64,
            0,
            Point(vec![((p * 17) % 100) as f64, 50.0]),
        )
        .expect("publisher index in range");
    }
    net.run_until(t0 + SimTime::from_secs(30));
    let (del, exp): (usize, usize) = net
        .event_stats()
        .iter()
        .map(|s| (s.delivered, s.expected))
        .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    println!("during the partition: {del}/{exp} (event, subscriber) pairs delivered");

    // Heal: the soft-state leases re-install whatever the cut ate (no
    // global refresh), then publish again under loss alone.
    net.run_until(net.time() + SimTime::from_secs(15));
    let healed: Vec<u64> = (0..10)
        .map(|p| {
            net.publish(
                (p * 11 + 3) % 64,
                0,
                Point(vec![((p * 13 + 7) % 100) as f64, 50.0]),
            )
            .unwrap()
        })
        .collect();
    net.run_until(net.time() + SimTime::from_secs(15));

    let stats = net.event_stats();
    let (del, exp, dup) = stats
        .iter()
        .filter(|s| healed.contains(&s.event))
        .map(|s| (s.delivered, s.expected, s.duplicates))
        .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    println!("after it healed:      {del}/{exp} pairs delivered, {dup} duplicates");
    println!(
        "network totals:       {} lost to the loss policy, {} cut by the partition, \
         {} duplicated by the fault plane",
        net.net().fault_dropped(),
        net.net().partition_dropped(),
        net.net().duplicated()
    );
}
