//! Quickstart: build a HyperSub network, subscribe, publish, observe.
//!
//! Run with: `cargo run --release -p hypersub-examples --bin quickstart`

use hypersub_core::prelude::*;

fn main() {
    // 1. Define a pub/sub scheme: two attributes with numeric domains.
    //    (String prefix/suffix predicates are converted to numeric ranges
    //    per the paper's model.)
    let scheme = SchemeDef::builder("quotes")
        .attribute("price", 0.0, 1_000.0)
        .attribute("volume", 0.0, 100_000.0)
        .build(0);
    let registry = Registry::new(vec![scheme]);

    // 2. Build a 32-node network: Chord ring with PNS fingers over a
    //    King-like Internet latency model.
    let mut net = Network::builder(32)
        .registry(registry)
        .config(SystemConfig::default())
        .seed(42)
        .build()
        .expect("valid configuration");

    // 3. Subscribe: node 7 wants price in [100, 200] with volume >= 50k.
    let subid = net.subscribe(
        7,
        0,
        Subscription::new(Rect::new(vec![100.0, 50_000.0], vec![200.0, 100_000.0])),
    );
    // Node 12 wants any trade priced in [150, 160].
    net.subscribe(
        12,
        0,
        Subscription::new(Rect::new(vec![150.0, 0.0], vec![160.0, 100_000.0])),
    );
    net.run_to_quiescence(); // let installation traffic settle
    println!("installed subscriptions; first subid = {subid:?}");

    // 4. Publish: node 3 publishes a trade at (price 155, volume 60k) —
    //    it matches both subscriptions.
    let ev = net.publish(3, 0, Point(vec![155.0, 60_000.0])).unwrap();
    net.run_to_quiescence();

    // 5. Inspect per-event statistics.
    let stats = net.event_stats();
    let s = stats.iter().find(|s| s.event == ev).expect("published");
    println!(
        "event {}: matched {} subscription(s), delivered {}, max hops {}, \
         max latency {}, bandwidth {} bytes",
        s.event, s.expected, s.delivered, s.max_hops, s.max_latency, s.bandwidth_bytes
    );
    assert_eq!(s.delivered, 2);
    println!("quickstart OK");
}
