//! Sensor fleet: multiple pub/sub schemes sharing one infrastructure,
//! §3.5 subschemes, and dynamic load balancing under a skewed workload.
//!
//! HyperSub's selling point is supporting "any numbers of pub/sub schemes
//! with different numbers of attributes" simultaneously. Here an
//! environmental-telemetry scheme (5 attributes, split into subschemes
//! {region} and {temperature, humidity, pressure, battery}) coexists with
//! a 2-attribute alerting scheme, on one 512-node network with the §4
//! migration mechanism enabled. Sensors cluster in one hot region, so the
//! load balancer has real work to do.
//!
//! Run with: `cargo run --release -p hypersub-examples --bin sensor_fleet`

use hypersub_core::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let telemetry = SchemeDef::builder("telemetry")
        .attribute("region", 0.0, 100.0)
        .attribute("temp_c", -40.0, 60.0)
        .attribute("humidity", 0.0, 100.0)
        .attribute("pressure", 900.0, 1100.0)
        .attribute("battery", 0.0, 100.0)
        .subscheme(&[0])
        .subscheme(&[1, 2, 3, 4])
        .build(0);
    let alerts = SchemeDef::builder("alerts")
        .attribute("severity", 0.0, 10.0)
        .attribute("region", 0.0, 100.0)
        .build(1);
    let registry = Registry::new(vec![telemetry.clone(), alerts.clone()]);

    let nodes = 512;
    let mut net = Network::builder(nodes)
        .registry(registry)
        .config(SystemConfig::default().with_lb())
        .seed(2024)
        .build()
        .expect("valid configuration");
    let mut rng = SmallRng::seed_from_u64(5);

    // Operators watch their region's telemetry; most watch region ~20
    // (the hot region), which skews storage load.
    for _ in 0..800 {
        let node = rng.gen_range(0..nodes);
        let region = if rng.gen_bool(0.7) {
            rng.gen_range(15.0..25.0)
        } else {
            rng.gen_range(0.0..100.0)
        };
        let sub = Subscription::from_predicates(
            &telemetry.space,
            &[(0, region - 2.0, region + 2.0), (1, 30.0, 60.0)],
        );
        net.subscribe(node, 0, sub);
        // Every 4th operator also wants severe alerts anywhere.
        if rng.gen_bool(0.25) {
            let sub = Subscription::from_predicates(&alerts.space, &[(0, 7.0, 10.0)]);
            net.subscribe(node, 1, sub);
        }
    }
    // Let installation finish and several LB rounds run.
    net.run_until(net.time() + SimTime::from_secs(240));

    // Telemetry stream: readings clustered in the hot region, hot summer.
    let mut t = net.time();
    for _ in 0..3000 {
        let node = rng.gen_range(0..nodes);
        let region = if rng.gen_bool(0.7) {
            rng.gen_range(15.0..25.0)
        } else {
            rng.gen_range(0.0..100.0)
        };
        let point = Point(vec![
            region,
            rng.gen_range(20.0..55.0),
            rng.gen_range(10.0..90.0),
            rng.gen_range(950.0..1050.0),
            rng.gen_range(5.0..100.0),
        ]);
        net.schedule_publish(t, node, 0, point)
            .expect("publisher index in range");
        // Occasional alert.
        if rng.gen_bool(0.05) {
            let alert = Point(vec![rng.gen_range(0.0..10.0), region]);
            net.schedule_publish(t, node, 1, alert)
                .expect("publisher index in range");
        }
        t += SimTime::from_millis(rng.gen_range(20..120));
    }
    net.run_until(t + SimTime::from_secs(120));

    let stats = net.event_stats();
    let incomplete = stats.iter().filter(|s| s.delivered != s.expected).count();
    let loads = {
        let mut v = net.node_loads();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    };
    let migrated: u64 = net.nodes().iter().map(|n| n.lb.migrated_out).sum();
    let mean = loads.iter().sum::<u64>() as f64 / nodes as f64;
    println!("events: {} ({} telemetry+alerts)", stats.len(), stats.len());
    println!(
        "deliveries complete: {}/{} events",
        stats.len() - incomplete,
        stats.len()
    );
    println!(
        "load after balancing: max {} mean {:.1} (max/mean {:.1}); {} subscriptions migrated",
        loads[0],
        mean,
        loads[0] as f64 / mean.max(1e-9),
        migrated
    );
    assert!(incomplete == 0, "all matched operators must be notified");
    assert!(migrated > 0, "the skewed workload should trigger migration");
    println!("sensor_fleet OK");
}
