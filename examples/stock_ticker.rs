//! Stock ticker: the workload the paper's introduction motivates —
//! content-based dissemination of market events to subscribers with
//! range predicates.
//!
//! A 4-attribute scheme (symbol id, price, change %, volume) runs on a
//! 256-node network; 60 traders install range subscriptions ("tech
//! stocks with price 50–100 and change below −2 %"), then a tape of
//! 2,000 trades streams through and every delivery is checked against
//! ground truth.
//!
//! Run with: `cargo run --release -p hypersub-examples --bin stock_ticker`

use hypersub_core::prelude::*;
use hypersub_stats::Summary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scheme = SchemeDef::builder("market")
        .attribute("symbol", 0.0, 500.0) // symbol ids 0..500
        .attribute("price", 0.0, 1_000.0)
        .attribute("change_pct", -20.0, 20.0)
        .attribute("volume", 0.0, 1_000_000.0)
        .build(0);
    let registry = Registry::new(vec![scheme.clone()]);
    let nodes = 256;
    let mut net = Network::builder(nodes)
        .registry(registry)
        .config(SystemConfig::default())
        .seed(7)
        .build()
        .expect("valid configuration");
    let mut rng = SmallRng::seed_from_u64(99);

    // Traders: sector watchers, bargain hunters, crash alarms.
    for t in 0..60 {
        let node = rng.gen_range(0..nodes);
        let sub = match t % 3 {
            // A sector: 50 consecutive symbol ids, any price/volume.
            0 => {
                let s0 = rng.gen_range(0..450) as f64;
                Subscription::from_predicates(&scheme.space, &[(0, s0, s0 + 50.0)])
            }
            // Bargain hunter: one symbol, price band.
            1 => {
                let sym = rng.gen_range(0..500) as f64;
                let p0 = rng.gen_range(0..800) as f64;
                Subscription::from_predicates(&scheme.space, &[(0, sym, sym), (1, p0, p0 + 200.0)])
            }
            // Crash alarm: any symbol dropping more than 5% on volume.
            _ => Subscription::from_predicates(
                &scheme.space,
                &[(2, -20.0, -5.0), (3, 500_000.0, 1_000_000.0)],
            ),
        };
        net.subscribe(node, 0, sub);
    }
    net.run_to_quiescence();

    // The tape: trades clustered on popular symbols.
    let mut t = net.time() + SimTime::from_millis(100);
    let mut published = Vec::new();
    for _ in 0..2000 {
        let sym = (rng.gen_range(0..500) as f64 * rng.gen::<f64>()).floor();
        let point = Point(vec![
            sym,
            rng.gen_range(0.0..1000.0),
            rng.gen_range(-20.0..20.0),
            rng.gen_range(0.0..1_000_000.0),
        ]);
        let node = rng.gen_range(0..nodes);
        published.push(
            net.schedule_publish(t, node, 0, point)
                .expect("publisher index in range"),
        );
        t += SimTime::from_millis(rng.gen_range(10..100));
    }
    net.run_to_quiescence();

    let stats = net.event_stats();
    let mut hops = Summary::new();
    let mut latency = Summary::new();
    let mut matched = Summary::new();
    let mut incomplete = 0;
    for s in &stats {
        hops.push(s.max_hops as f64);
        latency.push(s.max_latency.as_millis_f64());
        matched.push(s.expected as f64);
        if s.delivered != s.expected {
            incomplete += 1;
        }
    }
    println!("trades published: {}", stats.len());
    println!(
        "matched subscriptions/trade: mean {:.2}, max {}",
        matched.mean(),
        matched.max()
    );
    println!(
        "delivery: max-hops mean {:.1} p99 {}, max-latency mean {:.0} ms p99 {:.0} ms",
        hops.mean(),
        hops.percentile(0.99),
        latency.mean(),
        latency.percentile(0.99)
    );
    assert_eq!(incomplete, 0, "every matched trader must get every trade");
    println!(
        "stock_ticker OK: all {} trades fully delivered",
        stats.len()
    );
}
