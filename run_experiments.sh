#!/bin/bash
# Regenerates every table and figure of the paper at full scale.
# Exits nonzero (with a FAILED summary block) if any binary fails.
set -u
cd /root/repo
BIN=target/release
FAILED=()
for b in table1 table2 fig2 fig4 fig3 baseline_compare ablation_subscheme ablation_rotation ablation_base fig5; do
  echo "=== $b start $(date +%T) ==="
  if ! { time $BIN/$b > results/$b.txt ; } 2> results/$b.time ; then
    echo "$b FAILED (see results/$b.time)"
    FAILED+=("$b")
  fi
  echo "=== $b done $(date +%T) ==="
done
if [ ${#FAILED[@]} -gt 0 ]; then
  echo "=== FAILED ==="
  printf '%s\n' "${FAILED[@]}"
  echo "${#FAILED[@]} of 10 binaries failed"
  exit 1
fi
echo ALL_DONE
