#!/bin/bash
# Regenerates every table and figure of the paper at full scale.
set -u
cd /root/repo
BIN=target/release
for b in table1 table2 fig2 fig4 fig3 baseline_compare ablation_subscheme ablation_rotation ablation_base fig5; do
  echo "=== $b start $(date +%T) ==="
  { time $BIN/$b > results/$b.txt ; } 2> results/$b.time || echo "$b FAILED"
  echo "=== $b done $(date +%T) ==="
done
echo ALL_DONE
