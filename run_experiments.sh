#!/bin/bash
# Regenerates every table and figure of the paper at full scale.
#
# Resumable: each binary that completes drops a stamp in
# results/.checkpoints/, and a rerun skips stamped steps, so a failed or
# interrupted sweep picks up from the last completed step instead of
# redoing hours of work. A failed step's partial output is archived to
# results/archive/ (timestamped) rather than silently clobbered on the
# next attempt. Use --fresh to clear the stamps and rerun everything.
#
# Exits nonzero (with a FAILED summary block) if any binary fails.
set -u
cd /root/repo
BIN=target/release
STAMPS=results/.checkpoints
ARCHIVE=results/archive
mkdir -p results "$STAMPS"

if [ "${1:-}" = "--fresh" ]; then
  echo "fresh run requested: clearing $STAMPS"
  rm -f "$STAMPS"/*.done
fi

FAILED=()
SKIPPED=0
for b in table1 table2 fig2 fig4 fig3 baseline_compare ablation_subscheme ablation_rotation ablation_base fig5; do
  if [ -f "$STAMPS/$b.done" ]; then
    echo "=== $b already done ($(cat "$STAMPS/$b.done")), skipping ==="
    SKIPPED=$((SKIPPED + 1))
    continue
  fi
  echo "=== $b start $(date +%T) ==="
  if { time $BIN/$b > results/$b.txt ; } 2> results/$b.time ; then
    date -u +%Y-%m-%dT%H:%M:%SZ > "$STAMPS/$b.done"
  else
    echo "$b FAILED (see results/$b.time)"
    mkdir -p "$ARCHIVE"
    ts=$(date -u +%Y%m%dT%H%M%SZ)
    for f in results/$b.txt results/$b.time; do
      [ -s "$f" ] && cp "$f" "$ARCHIVE/$(basename "$f").$ts"
    done
    FAILED+=("$b")
  fi
  echo "=== $b done $(date +%T) ==="
done
if [ ${#FAILED[@]} -gt 0 ]; then
  echo "=== FAILED ==="
  printf '%s\n' "${FAILED[@]}"
  echo "${#FAILED[@]} of 10 binaries failed ($SKIPPED skipped as already done)"
  echo "rerun ./run_experiments.sh to resume from the last completed step"
  exit 1
fi
echo "ALL_DONE ($SKIPPED skipped as already done)"
