#!/bin/bash
# Regenerates every table and figure of the paper at full scale, runs
# the adversity scenario pack (full tier) with invariant verdicts, and
# finishes with the five-system baseline shoot-out (full ladder).
#
# Resumable: each binary that completes drops a stamp in
# results/.checkpoints/, and a rerun skips stamped steps, so a failed or
# interrupted sweep picks up from the last completed step instead of
# redoing hours of work. A failed step's partial output is archived to
# results/archive/ (timestamped) rather than silently clobbered on the
# next attempt. Use --fresh to clear the stamps and rerun everything.
#
# Exits nonzero (with a FAILED summary block) if any binary fails.
set -u
cd /root/repo
BIN=target/release
STAMPS=results/.checkpoints
ARCHIVE=results/archive
mkdir -p results "$STAMPS"

if [ "${1:-}" = "--fresh" ]; then
  echo "fresh run requested: clearing $STAMPS"
  rm -f "$STAMPS"/*.done "$STAMPS"/soak/*.bin
fi

FAILED=()
SKIPPED=0
for b in table1 table2 fig2 fig4 fig3 baseline_compare ablation_subscheme ablation_rotation ablation_base fig5; do
  if [ -f "$STAMPS/$b.done" ]; then
    echo "=== $b already done ($(cat "$STAMPS/$b.done")), skipping ==="
    SKIPPED=$((SKIPPED + 1))
    continue
  fi
  echo "=== $b start $(date +%T) ==="
  if { time $BIN/$b > results/$b.txt ; } 2> results/$b.time ; then
    date -u +%Y-%m-%dT%H:%M:%SZ > "$STAMPS/$b.done"
  else
    echo "$b FAILED (see results/$b.time)"
    mkdir -p "$ARCHIVE"
    ts=$(date -u +%Y%m%dT%H%M%SZ)
    for f in results/$b.txt results/$b.time; do
      [ -s "$f" ] && cp "$f" "$ARCHIVE/$(basename "$f").$ts"
    done
    FAILED+=("$b")
  fi
  echo "=== $b done $(date +%T) ==="
done
# Adversity scenario pack (full tier, fixed seed 7). Each scenario's
# verdict JSON lands in results/SCENARIO_<name>.json; a failed invariant
# exits nonzero and fails the sweep like any other binary.
for s in flash_crowd diurnal_waves asymmetric_partition slow_link; do
  b="scenario_$s"
  if [ -f "$STAMPS/$b.done" ]; then
    echo "=== $b already done ($(cat "$STAMPS/$b.done")), skipping ==="
    SKIPPED=$((SKIPPED + 1))
    continue
  fi
  echo "=== $b start $(date +%T) ==="
  if { time $BIN/scenario run --scenario "$s" --seed 7 > results/$b.txt ; } 2> results/$b.time ; then
    date -u +%Y-%m-%dT%H:%M:%SZ > "$STAMPS/$b.done"
  else
    echo "$b FAILED (see results/$b.txt)"
    mkdir -p "$ARCHIVE"
    ts=$(date -u +%Y%m%dT%H%M%SZ)
    for f in results/$b.txt results/$b.time; do
      [ -s "$f" ] && cp "$f" "$ARCHIVE/$(basename "$f").$ts"
    done
    FAILED+=("$b")
  fi
  echo "=== $b done $(date +%T) ==="
done

# churn_soak advances one checkpointed segment per invocation through
# $STAMPS/soak, so an interrupted sweep resumes mid-soak instead of
# restarting the whole soak; the digest is identical either way.
b=scenario_churn_soak
if [ -f "$STAMPS/$b.done" ]; then
  echo "=== $b already done ($(cat "$STAMPS/$b.done")), skipping ==="
  SKIPPED=$((SKIPPED + 1))
else
  echo "=== $b start $(date +%T) ==="
  : > results/$b.txt
  SOAK_OK=1
  while true; do
    if ! $BIN/scenario run --scenario churn_soak --seed 7 --stamp-dir "$STAMPS/soak" >> results/$b.txt 2>&1; then
      SOAK_OK=0
      break
    fi
    tail -n 1 results/$b.txt | grep -q 'checkpointed (resumable)' || break
  done
  if [ $SOAK_OK -eq 1 ]; then
    date -u +%Y-%m-%dT%H:%M:%SZ > "$STAMPS/$b.done"
  else
    echo "$b FAILED (see results/$b.txt)"
    mkdir -p "$ARCHIVE"
    ts=$(date -u +%Y%m%dT%H%M%SZ)
    [ -s results/$b.txt ] && cp results/$b.txt "$ARCHIVE/$b.txt.$ts"
    FAILED+=("$b")
  fi
  echo "=== $b done $(date +%T) ==="
fi

# Baseline shoot-out, full ladder (8k and 32k rungs, seed 7): five
# systems over one substrate, delivery-equivalence oracle enforced.
# Emits the table to results/shootout.txt and the unified document to
# results/SHOOTOUT.json; a failed oracle exits nonzero like any binary.
b=shootout
if [ -f "$STAMPS/$b.done" ]; then
  echo "=== $b already done ($(cat "$STAMPS/$b.done")), skipping ==="
  SKIPPED=$((SKIPPED + 1))
else
  echo "=== $b start $(date +%T) ==="
  if { time $BIN/shootout run --all --seed 7 --out results/SHOOTOUT.json > results/$b.txt ; } 2> results/$b.time ; then
    date -u +%Y-%m-%dT%H:%M:%SZ > "$STAMPS/$b.done"
  else
    echo "$b FAILED (see results/$b.txt)"
    mkdir -p "$ARCHIVE"
    ts=$(date -u +%Y%m%dT%H%M%SZ)
    for f in results/$b.txt results/$b.time; do
      [ -s "$f" ] && cp "$f" "$ARCHIVE/$(basename "$f").$ts"
    done
    FAILED+=("$b")
  fi
  echo "=== $b done $(date +%T) ==="
fi

if [ ${#FAILED[@]} -gt 0 ]; then
  echo "=== FAILED ==="
  printf '%s\n' "${FAILED[@]}"
  echo "${#FAILED[@]} of 16 steps failed ($SKIPPED skipped as already done)"
  echo "rerun ./run_experiments.sh to resume from the last completed step"
  exit 1
fi
echo "ALL_DONE ($SKIPPED skipped as already done)"
