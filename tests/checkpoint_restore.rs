//! Split-run equivalence suite for the checkpoint/restore plane.
//!
//! Each test runs one fully seeded scenario twice: straight through, and
//! split — run to a mid-simulation checkpoint, snapshot, *drop the
//! network*, restore the snapshot bytes in a fresh `Network`, and finish.
//! The two runs must agree bit-for-bit on the run digest, the delivery
//! trace, and the network counters, including with retries, fault
//! injection, load balancing, and self-healing enabled. A property test
//! extends the check to random checkpoint times and random feature
//! combinations.

use hypersub_core::prelude::*;
use hypersub_simnet::{FaultPlane, LinkPolicy};
use hypersub_workload::{WorkloadGen, WorkloadSpec};
use proptest::prelude::*;

/// A deterministic scenario: a snapshot-enabled network with `subs`
/// subscriptions installed and quiesced, `events` publishes scheduled
/// into the future event queue, and (optionally) a fault plane, node
/// failure, and maintenance timers. Because every publish is scheduled
/// up front, the whole remaining run lives in the event queue and a
/// snapshot at any point carries it.
struct Scenario {
    nodes: usize,
    seed: u64,
    config: SystemConfig,
    subs: usize,
    events: usize,
    loss: Option<f64>,
    fail_node: Option<usize>,
    maintenance: bool,
}

impl Scenario {
    fn has_periodic_timers(&self) -> bool {
        self.maintenance || self.config.lb.enabled || self.config.heal.enabled
    }

    fn build(&self) -> Network {
        let scheme = SchemeDef::builder("ckpt")
            .attribute("x", 0.0, 100.0)
            .attribute("y", 0.0, 100.0)
            .build(0);
        let mut net = Network::builder(self.nodes)
            .registry(Registry::new(vec![scheme]))
            .config(self.config.clone())
            .latency(SimTime::from_millis(10))
            .seed(self.seed)
            .snapshots(SnapshotConfig::enabled())
            .build()
            .expect("valid scenario network");
        if let Some(p) = self.loss {
            let mut fp = FaultPlane::new(self.seed ^ 0xfa);
            fp.set_global_policy(LinkPolicy::loss(p));
            net.install_fault_plane(fp);
        }
        let mut gen = WorkloadGen::new(WorkloadSpec::paper_table1(), self.seed ^ 0x60_1d);
        for i in 0..self.subs {
            let r4 = gen.subscription().rect;
            let rect = Rect::new(
                vec![r4.lo[0] / 100.0, r4.lo[1] / 100.0],
                vec![r4.hi[0] / 100.0, r4.hi[1] / 100.0],
            );
            net.subscribe(i % self.nodes, 0, Subscription::new(rect));
        }
        if self.maintenance {
            net.enable_maintenance();
        }
        // Periodic timers (LB/maintenance/leases) never drain the queue,
        // so maintenance scenarios settle on a fixed horizon instead.
        if self.has_periodic_timers() {
            net.run_until(SimTime::from_secs(5));
        } else {
            net.run_to_quiescence();
        }
        if let Some(n) = self.fail_node {
            net.fail(n).expect("scenario fails a live node");
        }
        let mut t = net.time() + SimTime::from_secs(1);
        for i in 0..self.events {
            let p4 = gen.event_point();
            let p = Point(vec![p4.0[0] / 100.0, p4.0[1] / 100.0]);
            net.schedule_publish(t, (i * 13) % self.nodes, 0, p)
                .expect("publisher index in range");
            t += SimTime::from_millis(750);
        }
        net
    }

    /// Runs straight through; returns the finished network.
    fn straight_through(&self) -> Network {
        let mut net = self.build();
        net.run_to_quiescence();
        net
    }

    /// Runs to `at`, snapshots, drops the network, restores from bytes,
    /// and finishes the restored network.
    fn split_at(&self, at: SimTime) -> Network {
        let mut net = self.build();
        net.run_until(at);
        let bytes = net.snapshot().expect("snapshot-enabled network");
        drop(net);
        let mut resumed = Network::restore(&bytes).expect("restore snapshot bytes");
        resumed.run_to_quiescence();
        resumed
    }

    /// Asserts split-run equivalence at checkpoint time `at`.
    fn assert_split_equivalent(&self, at: SimTime) {
        let reference = self.straight_through();
        let resumed = self.split_at(at);
        assert_eq!(
            resumed.run_digest(),
            reference.run_digest(),
            "split run digest diverged (checkpoint at {at})"
        );
        assert_eq!(resumed.deliveries(), reference.deliveries());
        assert_eq!(resumed.net(), reference.net());
        // `time()` is intentionally not compared: a checkpoint past the
        // last event leaves the restored clock at the checkpoint time,
        // while the straight-through clock stops at the last event.
        assert_eq!(resumed.steps(), reference.steps());
    }
}

fn basic() -> Scenario {
    Scenario {
        nodes: 24,
        seed: 0xc4e0,
        config: SystemConfig::default(),
        subs: 48,
        events: 20,
        loss: None,
        fail_node: None,
        maintenance: false,
    }
}

#[test]
fn split_run_matches_straight_through() {
    basic().assert_split_equivalent(SimTime::from_secs(8));
}

#[test]
fn split_run_equivalent_at_many_checkpoints() {
    // Early (mid-setup tail), mid-publish, and late (drained) checkpoints.
    let s = basic();
    for secs in [1, 5, 12, 60] {
        s.assert_split_equivalent(SimTime::from_secs(secs));
    }
}

#[test]
fn split_run_with_faults_and_retries() {
    let s = Scenario {
        config: SystemConfig::default().with_retries(),
        loss: Some(0.03),
        seed: 0xfa5757,
        ..basic()
    };
    s.assert_split_equivalent(SimTime::from_secs(9));
}

#[test]
fn split_run_with_lb_healing_and_node_failure() {
    let s = Scenario {
        nodes: 32,
        seed: 0x4ea1,
        config: SystemConfig::default().with_lb().with_self_healing(),
        subs: 96,
        events: 16,
        loss: None,
        fail_node: Some(7),
        maintenance: true,
    };
    // Self-healing runs on lease timers, so the run never fully drains;
    // compare the two runs at a common horizon instead of quiescence.
    let horizon = SimTime::from_secs(120);
    let reference = {
        let mut net = s.build();
        net.run_until(horizon);
        net
    };
    let resumed = {
        let mut net = s.build();
        net.run_until(SimTime::from_secs(30));
        let bytes = net.snapshot().expect("snapshot-enabled network");
        drop(net);
        let mut resumed = Network::restore(&bytes).expect("restore snapshot bytes");
        resumed.run_until(horizon);
        resumed
    };
    assert_eq!(resumed.run_digest(), reference.run_digest());
    assert_eq!(resumed.deliveries(), reference.deliveries());
    assert_eq!(resumed.net(), reference.net());
    assert_eq!(resumed.steps(), reference.steps());
}

#[test]
fn snapshot_of_restored_network_round_trips_again() {
    // restore → run → snapshot → restore: the plane is re-entrant, not a
    // one-shot.
    let s = basic();
    let reference = s.straight_through();
    let mut net = s.build();
    net.run_until(SimTime::from_secs(4));
    let first = net.snapshot().expect("first snapshot");
    drop(net);
    let mut mid = Network::restore(&first).expect("restore first");
    mid.run_until(SimTime::from_secs(10));
    let second = mid.snapshot().expect("second snapshot");
    drop(mid);
    let mut fin = Network::restore(&second).expect("restore second");
    fin.run_to_quiescence();
    assert_eq!(fin.run_digest(), reference.run_digest());
    assert_eq!(fin.deliveries(), reference.deliveries());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case runs two full network simulations
        .. ProptestConfig::default()
    })]

    /// Snapshots taken at *random* simulation times, under *random*
    /// feature combinations (retries, LB, self-healing, link loss),
    /// restore to digest-identical tails.
    #[test]
    fn prop_random_checkpoint_restores_identically(
        seed in 0u64..10_000,
        at_secs in 1u64..40,
        retries in any::<bool>(),
        lb in any::<bool>(),
        heal in any::<bool>(),
        lossy in any::<bool>(),
    ) {
        let mut config = SystemConfig::default();
        if retries || lossy {
            config = config.with_retries();
        }
        if lb {
            config = config.with_lb();
        }
        if heal {
            config = config.with_self_healing();
        }
        let s = Scenario {
            nodes: 16,
            seed,
            config,
            subs: 24,
            events: 10,
            loss: lossy.then_some(0.02),
            fail_node: None,
            maintenance: lb || heal,
        };
        // Maintenance timers keep the queue alive forever; bound both
        // runs by a common horizon past the publish schedule instead.
        let horizon = SimTime::from_secs(90);
        let mut reference = s.build();
        reference.run_until(horizon);

        let mut net = s.build();
        net.run_until(SimTime::from_secs(at_secs));
        let bytes = net.snapshot().expect("snapshot-enabled network");
        drop(net);
        let mut resumed = Network::restore(&bytes).expect("restore snapshot bytes");
        resumed.run_until(horizon);

        prop_assert_eq!(resumed.run_digest(), reference.run_digest());
        prop_assert_eq!(resumed.deliveries(), reference.deliveries());
        prop_assert_eq!(resumed.net(), reference.net());
        prop_assert_eq!(resumed.steps(), reference.steps());
    }
}
