//! Churn integration tests: failures, ring healing, and delivery
//! correctness on the healed network — repaired entirely by the
//! decentralized self-healing plane (successor replication + soft-state
//! leases + ownership handoff), with no global refresh crutch.

use hypersub_core::prelude::*;
use hypersub_tests::test_network;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn delivery_recovers_after_failures_with_self_healing() {
    let mut net = test_network(64, 61, SystemConfig::default().with_self_healing());
    net.enable_maintenance();
    let mut rng = SmallRng::seed_from_u64(2);
    // Subscribers on the first half only; victims from the second half.
    for node in 0..32 {
        let c = rng.gen_range(0.0..90.0);
        net.subscribe(
            node,
            0,
            Subscription::new(Rect::new(vec![c, 0.0], vec![c + 10.0, 100.0])),
        );
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    for victim in [40, 47, 55] {
        net.fail(victim).unwrap();
    }
    // Stabilization evicts the victims and hands their arcs to their
    // successors, which promote the replicated rendezvous state; the
    // window covers several lease periods so surrogate chains reconverge.
    net.run_until(net.time() + SimTime::from_secs(40));

    let before = net.event_stats().len();
    let mut t = net.time();
    for _ in 0..80 {
        let node = rng.gen_range(0..32);
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.schedule_publish(t, node, 0, p).unwrap();
        t += SimTime::from_millis(80);
    }
    net.run_until(t + SimTime::from_secs(20));
    let all = net.event_stats();
    let after = &all[before..];
    for s in after {
        assert_eq!(
            s.delivered, s.expected,
            "post-churn event {}: {} != {}",
            s.event, s.delivered, s.expected
        );
        assert_eq!(s.duplicates, 0);
    }
}

#[test]
fn failed_rendezvous_successor_takes_over() {
    // Kill a node, then publish an event whose rendezvous key the dead
    // node owned: its successor must handle it after promotion of the
    // replicated state — no global refresh involved.
    let mut net = test_network(32, 67, SystemConfig::default().with_self_healing());
    net.enable_maintenance();
    for node in 0..8 {
        net.subscribe(
            node,
            0,
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        );
    }
    net.run_until(net.time() + SimTime::from_secs(5));
    // Fail a third of the network (not the subscribers).
    for victim in [10, 14, 18, 22, 26, 30] {
        net.fail(victim).unwrap();
    }
    net.run_until(net.time() + SimTime::from_secs(50));
    let mut rng = SmallRng::seed_from_u64(5);
    let before = net.event_stats().len();
    for _ in 0..40 {
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.publish(rng.gen_range(0..8), 0, p).unwrap();
        net.run_until(net.time() + SimTime::from_secs(30));
    }
    let all = net.event_stats();
    for s in &all[before..] {
        assert_eq!(s.delivered, 8, "every live subscriber gets every event");
    }
}

#[test]
fn messages_to_dead_nodes_are_counted_and_retried() {
    let mut net = test_network(32, 71, SystemConfig::default().with_self_healing());
    net.enable_maintenance();
    net.subscribe(
        0,
        0,
        Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
    );
    net.run_until(net.time() + SimTime::from_secs(5));
    net.fail(20).unwrap();
    // Publish immediately — stale fingers may still route via node 20.
    // Fail-stop retry repairs *routing* on the fly; only events whose
    // matching *state* (rendezvous chain segment) lived on node 20 can
    // miss until replication promotes it on the successor.
    let before = net.event_stats().len();
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..30 {
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.publish(rng.gen_range(1..32), 0, p).unwrap();
    }
    net.run_until(net.time() + SimTime::from_secs(60));
    let all = net.event_stats();
    let delivered_pre = all[before..].iter().filter(|s| s.delivered == 1).count();
    assert!(
        delivered_pre >= 24,
        "retry-around-failure must deliver the vast majority immediately: {delivered_pre}/30"
    );

    // The 60-second window above spans many lease periods, so by now
    // promotion + lease re-push have rebuilt everything node 20 owned:
    // delivery is complete again.
    let before2 = net.event_stats().len();
    for _ in 0..30 {
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.publish(rng.gen_range(1..32), 0, p).unwrap();
    }
    net.run_until(net.time() + SimTime::from_secs(60));
    let all = net.event_stats();
    let delivered_post = all[before2..].iter().filter(|s| s.delivered == 1).count();
    assert_eq!(delivered_post, 30, "post-repair delivery must be complete");
    assert!(
        net.net().dropped() > 0,
        "messages to the dead node must be counted"
    );
}
