//! End-to-end integration tests: subscribe → publish → deliver across the
//! full stack (simnet + chord + lph + core), checked against the
//! brute-force oracle on every event.

use hypersub_core::prelude::*;
use hypersub_tests::test_network;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Publishes `n_events` random events and asserts exact delivery (set
/// equality with the oracle, no duplicates).
fn assert_exact_delivery(net: &mut Network, n_events: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = net.len();
    for _ in 0..n_events {
        let point = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.publish(rng.gen_range(0..nodes), 0, point).unwrap();
    }
    net.run_to_quiescence();
    for s in net.event_stats() {
        assert_eq!(
            s.delivered, s.expected,
            "event {}: delivered {} != expected {}",
            s.event, s.delivered, s.expected
        );
        assert_eq!(s.duplicates, 0, "event {} duplicated", s.event);
    }
}

#[test]
fn random_workload_exact_delivery() {
    let mut net = test_network(64, 11, SystemConfig::default());
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..200 {
        let node = rng.gen_range(0..64);
        let cx: f64 = rng.gen_range(0.0..100.0);
        let cy: f64 = rng.gen_range(0.0..100.0);
        let wx: f64 = rng.gen_range(0.0..30.0);
        let wy: f64 = rng.gen_range(0.0..30.0);
        let sub = Subscription::new(Rect::new(
            vec![(cx - wx).max(0.0), (cy - wy).max(0.0)],
            vec![(cx + wx).min(100.0), (cy + wy).min(100.0)],
        ));
        net.subscribe(node, 0, sub);
    }
    net.run_to_quiescence();
    assert_exact_delivery(&mut net, 60, 1);
}

#[test]
fn base4_zone_geometry_exact_delivery() {
    let mut net = test_network(48, 13, SystemConfig::base4());
    let mut rng = SmallRng::seed_from_u64(5);
    for i in 0..120 {
        let node = i % 48;
        let c = rng.gen_range(0.0..95.0);
        let sub = Subscription::new(Rect::new(vec![c, 0.0], vec![c + 5.0, 100.0]));
        net.subscribe(node, 0, sub);
    }
    net.run_to_quiescence();
    assert_exact_delivery(&mut net, 50, 2);
}

#[test]
fn boundary_events_and_degenerate_subscriptions() {
    let mut net = test_network(32, 17, SystemConfig::default());
    // Degenerate (equality) subscriptions and boundary-straddling ranges.
    net.subscribe(
        0,
        0,
        Subscription::new(Rect::new(vec![50.0, 0.0], vec![50.0, 100.0])),
    );
    net.subscribe(
        1,
        0,
        Subscription::new(Rect::new(vec![49.9, 49.9], vec![50.1, 50.1])),
    );
    net.subscribe(
        2,
        0,
        Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
    );
    net.subscribe(
        3,
        0,
        Subscription::new(Rect::new(vec![100.0, 100.0], vec![100.0, 100.0])),
    );
    net.run_to_quiescence();
    // Events exactly on zone boundaries, domain corners, and the
    // degenerate plane.
    for point in [
        Point(vec![50.0, 50.0]),
        Point(vec![50.0, 0.0]),
        Point(vec![0.0, 0.0]),
        Point(vec![100.0, 100.0]),
        Point(vec![25.0, 75.0]),
        Point(vec![50.0, 100.0]),
    ] {
        let ev = net.publish(5, 0, point.clone()).unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        let s = stats.iter().find(|s| s.event == ev).unwrap();
        let expected = net.expected_matches(0, &point);
        assert_eq!(s.delivered, expected.len(), "boundary point {:?}", point);
        assert_eq!(s.duplicates, 0);
    }
}

#[test]
fn multi_scheme_isolation() {
    let a = SchemeDef::builder("alpha")
        .attribute("x", 0.0, 10.0)
        .build(0);
    let b = SchemeDef::builder("beta")
        .attribute("x", 0.0, 10.0)
        .attribute("y", 0.0, 10.0)
        .attribute("z", 0.0, 10.0)
        .build(1);
    let mut net = Network::builder(24)
        .registry(Registry::new(vec![a, b]))
        .config(SystemConfig::default())
        .seed(23)
        .build()
        .expect("valid test network");
    // Identical numeric interests in both schemes.
    net.subscribe(1, 0, Subscription::new(Rect::new(vec![2.0], vec![4.0])));
    net.subscribe(
        2,
        1,
        Subscription::new(Rect::new(vec![2.0, 0.0, 0.0], vec![4.0, 10.0, 10.0])),
    );
    net.run_to_quiescence();
    // Publish into scheme 0 only: scheme 1's subscriber must not fire.
    let ev = net.publish(3, 0, Point(vec![3.0])).unwrap();
    net.run_to_quiescence();
    let stats = net.event_stats();
    let s = stats.iter().find(|s| s.event == ev).unwrap();
    assert_eq!(s.expected, 1);
    assert_eq!(s.delivered, 1);
    // And scheme 1 delivery works with 3 attributes (different dims).
    let ev = net.publish(4, 1, Point(vec![3.0, 5.0, 5.0])).unwrap();
    net.run_to_quiescence();
    let stats = net.event_stats();
    let s = stats.iter().find(|s| s.event == ev).unwrap();
    assert_eq!(s.expected, 1);
    assert_eq!(s.delivered, 1);
}

#[test]
fn subschemes_deliver_exactly() {
    let scheme = SchemeDef::builder("split")
        .attribute("a", 0.0, 100.0)
        .attribute("b", 0.0, 100.0)
        .attribute("c", 0.0, 100.0)
        .attribute("d", 0.0, 100.0)
        .subscheme(&[0, 1])
        .subscheme(&[2, 3])
        .build(0);
    let space = scheme.space.clone();
    let mut net = Network::builder(40)
        .registry(Registry::new(vec![scheme]))
        .config(SystemConfig::default())
        .seed(29)
        .build()
        .expect("valid test network");
    let mut rng = SmallRng::seed_from_u64(3);
    for i in 0..100 {
        let node = i % 40;
        // Half constrain {a,b}, half {c,d}.
        let dims: [usize; 2] = if i % 2 == 0 { [0, 1] } else { [2, 3] };
        let c0 = rng.gen_range(0.0..90.0);
        let c1 = rng.gen_range(0.0..90.0);
        let sub = Subscription::from_predicates(
            &space,
            &[(dims[0], c0, c0 + 10.0), (dims[1], c1, c1 + 10.0)],
        );
        net.subscribe(node, 0, sub);
    }
    net.run_to_quiescence();
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..40 {
        let point = Point((0..4).map(|_| rng.gen_range(0.0..=100.0)).collect());
        net.publish(rng.gen_range(0..40), 0, point).unwrap();
    }
    net.run_to_quiescence();
    for s in net.event_stats() {
        assert_eq!(s.delivered, s.expected, "event {}", s.event);
        assert_eq!(s.duplicates, 0, "event {}", s.event);
    }
}

#[test]
fn king_topology_latencies_accumulate() {
    let scheme = SchemeDef::builder("t").attribute("x", 0.0, 100.0).build(0);
    let mut net = Network::builder(64)
        .registry(Registry::new(vec![scheme]))
        .config(SystemConfig::default())
        .topology(hypersub_core::sim::TopologyKind::KingLike(
            SimTime::from_millis(180),
        ))
        .seed(31)
        .build()
        .expect("valid test network");
    net.subscribe(7, 0, Subscription::new(Rect::new(vec![0.0], vec![100.0])));
    net.run_to_quiescence();
    let ev = net.publish(50, 0, Point(vec![42.0])).unwrap();
    net.run_to_quiescence();
    let stats = net.event_stats();
    let s = stats.iter().find(|s| s.event == ev).unwrap();
    assert_eq!(s.delivered, 1);
    assert!(
        s.max_latency > SimTime::ZERO,
        "delivery over a real topology takes time"
    );
    assert!(s.max_hops >= 1);
}
