//! Golden-digest regression tests for the simulate/deliver hot path.
//!
//! Each scenario runs a fully seeded quick-mode simulation and asserts
//! the FNV-1a digest of its complete delivery trace + network counters
//! against a constant captured from the pre-optimization tree. A
//! hot-path change (zero-copy payloads, scratch buffers, queue/stats
//! internals, latency caching) must keep every digest bit-identical —
//! these tests are the proof that an optimization preserved semantics.
//!
//! If a digest ever changes on purpose (a *semantic* change to delivery
//! or accounting), re-capture with:
//! `cargo test -p hypersub-tests --test golden -- --nocapture`
//! (each failure prints the observed digest) and update the constant in
//! the same commit that explains why.

use hypersub_core::prelude::*;
use hypersub_simnet::{FaultPlane, LinkPolicy};
use hypersub_tests::test_network;
use hypersub_workload::{WorkloadGen, WorkloadSpec};

/// Deterministic quick workload over a [`test_network`]: `subs`
/// subscriptions and `events` publications from a seeded generator.
fn run_quick(
    nodes: usize,
    seed: u64,
    config: SystemConfig,
    subs: usize,
    events: usize,
    fault: Option<FaultPlane>,
) -> u64 {
    let mut net = test_network(nodes, seed, config);
    if let Some(fp) = fault {
        net.install_fault_plane(fp);
    }
    // The workload generator targets paper_table1's 4-d space; project its
    // rects/points onto the test network's 2-d [0,100]^2 scheme.
    let mut gen = WorkloadGen::new(WorkloadSpec::paper_table1(), seed ^ 0x60_1d);
    for i in 0..subs {
        let r4 = gen.subscription().rect;
        let rect = Rect::new(
            vec![r4.lo[0] / 100.0, r4.lo[1] / 100.0],
            vec![r4.hi[0] / 100.0, r4.hi[1] / 100.0],
        );
        net.subscribe(i % nodes, 0, Subscription::new(rect));
    }
    net.run_to_quiescence();
    for i in 0..events {
        let p4 = gen.event_point();
        let p = Point(vec![p4.0[0] / 100.0, p4.0[1] / 100.0]);
        net.publish((i * 13) % nodes, 0, p).unwrap();
        net.run_to_quiescence();
    }
    let d = net.run_digest();
    println!("digest: {d:#018x}");
    d
}

#[test]
fn golden_basic_delivery() {
    let d = run_quick(48, 11, SystemConfig::default(), 96, 40, None);
    assert_eq!(d, GOLDEN_BASIC, "observed {d:#018x}");
}

#[test]
fn golden_base4_delivery() {
    let d = run_quick(32, 12, SystemConfig::base4(), 64, 30, None);
    assert_eq!(d, GOLDEN_BASE4, "observed {d:#018x}");
}

#[test]
fn golden_retries_under_loss() {
    let mut fp = FaultPlane::new(0xfa57);
    fp.set_global_policy(LinkPolicy::loss(0.02));
    let d = run_quick(
        24,
        13,
        SystemConfig::default().with_retries(),
        48,
        25,
        Some(fp),
    );
    assert_eq!(d, GOLDEN_LOSSY, "observed {d:#018x}");
}

/// Same scenario twice must agree with itself (guards the harness: if
/// this fails, the scenario is nondeterministic and the constants above
/// prove nothing).
#[test]
fn golden_scenarios_are_deterministic() {
    let run = || run_quick(16, 14, SystemConfig::default(), 32, 10, None);
    assert_eq!(run(), run());
}

// Captured from the pre-optimization tree (PR 2, commit introducing this
// file); see module docs for the re-capture procedure.
const GOLDEN_BASIC: u64 = 0x7453_5f99_5236_44ab;
const GOLDEN_BASE4: u64 = 0x6d3b_4ca9_1077_5379;
const GOLDEN_LOSSY: u64 = 0xc63c_4ebc_40e8_3ab6;
